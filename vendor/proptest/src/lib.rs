//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest that MNSIM's property tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over floats and integers,
//! * [`collection::vec`].
//!
//! Cases are generated from a deterministic per-test seed (an FNV hash of
//! the test name), so failures reproduce exactly on re-run. There is no
//! shrinking: the failing case's inputs are reported as-is via the assert
//! message, which is enough to paste into a focused unit test.

use std::ops::Range;

/// Runner configuration — only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (xoshiro256**, SplitMix64-seeded).
pub mod test_runner {
    /// The RNG handed to strategies by the [`crate::proptest!`] macro.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Builds a generator from a 64-bit seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A float in `[0, 1)` from the top 53 bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// FNV-1a hash of the test name — the per-test seed.
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with element strategy `S` and a uniform
    /// length in `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: elements from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 1usize..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::seed_from_u64(
                $crate::__seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 3usize..17) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
        }

        #[test]
        fn vec_strategy_length(v in collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in 0i64..100) {
            prop_assert_eq!(x, x);
            prop_assert!((0..100).contains(&x));
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::__seed_for("abc"), crate::__seed_for("abc"));
        assert_ne!(crate::__seed_for("abc"), crate::__seed_for("abd"));
    }
}
