//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API shape the `mnsim-bench` targets use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! with a trivial runner: each benchmark body executes a small fixed number
//! of iterations and the mean wall-clock time is printed. There are no
//! statistics, no warm-up, and no reports; the numbers are indicative only.
//!
//! Under `cargo test` (which passes `--test` to `harness = false` bench
//! binaries) all benchmarks are skipped so the test suite stays fast.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Iterations per benchmark body (kept small: this is a smoke runner).
const ITERATIONS: u32 = 3;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    enabled: bool,
    label: String,
}

impl Bencher {
    /// Runs `routine` `ITERATIONS` times and prints the mean duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.enabled {
            return;
        }
        let start = Instant::now();
        for _ in 0..ITERATIONS {
            black_box(routine());
        }
        let mean = start.elapsed() / ITERATIONS;
        println!("bench {:<40} {:>12.3?}/iter", self.label, mean);
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // benchmarks are skipped there so tests stay fast.
        let enabled = !std::env::args().any(|a| a == "--test");
        Criterion { enabled }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            enabled: self.enabled,
            label: id.into().label,
        };
        f(&mut bencher);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            enabled: self.criterion.enabled,
            label: format!("{}/{}", self.name, id.into().label),
        };
        f(&mut bencher);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            enabled: self.criterion.enabled,
            label: format!("{}/{}", self.name, id.into().label),
        };
        f(&mut bencher, input);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_invokes_closure() {
        let mut c = Criterion { enabled: true };
        let mut runs = 0;
        c.bench_function("demo", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert_eq!(runs, ITERATIONS);
    }

    #[test]
    fn disabled_bencher_skips_work() {
        let mut c = Criterion { enabled: false };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &5, |b, _| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.finish();
        assert_eq!(runs, 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("cg", 16).label, "cg/16");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
