//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the small slice of `rand` that MNSIM actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`Rng::gen_range`] over float and integer ranges,
//! * [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms, which is exactly what the seeded Monte-Carlo paths
//! (device variation, fault injection) rely on. The stream differs from the
//! real `rand::rngs::StdRng` (ChaCha12), but every consumer in this
//! workspace only requires *a* fixed, high-quality stream per seed, not a
//! specific one.

/// A source of random 32/64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce uniform samples.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits to a float in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
            let w = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_range_covers_endpoints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(-2i64..=2);
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of -2..=2 must appear: {seen:?}");
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(0i64..=0), 0);
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn unit_f64_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0..1.0);
            buckets[(v * 10.0) as usize] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!((700..1300).contains(&count), "bucket {i}: {count}");
        }
    }
}
