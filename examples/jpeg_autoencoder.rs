//! End-to-end application accuracy: train the 64-16-64 autoencoder on
//! smooth 8×8 patches (the paper's JPEG-encoding stand-in, §VII.A), then
//! compare the accuracy model's prediction against noisy quantized
//! inference.
//!
//! ```text
//! cargo run --release --example jpeg_autoencoder
//! ```

use mnsim::core::accuracy::{propagate, AccuracyModel, Case};
use mnsim::core::config::Config;
use mnsim::nn::data::smooth_patches;
use mnsim::nn::layers::Activation;
use mnsim::nn::noise::{inject_digital_deviation, relative_accuracy};
use mnsim::nn::quantize::Quantizer;
use mnsim::nn::tensor::Tensor;
use mnsim::nn::train::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // Train the autoencoder.
    let mut mlp = Mlp::random(
        &[64, 16, 64],
        Activation::Sigmoid,
        Activation::Sigmoid,
        &mut rng,
    )?;
    let patches = smooth_patches(64, &mut rng);
    let train: Vec<(Tensor, Tensor)> = patches[..48]
        .iter()
        .map(|p| (p.clone(), p.clone()))
        .collect();
    let history = mlp.train(&train, 400, 0.8)?;
    println!(
        "trained 64-16-64 autoencoder: MSE {:.5} -> {:.5}",
        history[0],
        history.last().unwrap()
    );

    // Predict the per-layer deviation with the accuracy model.
    let mut config = Config::fully_connected_mlp(&[64, 16, 64])?;
    config.crossbar_size = 64;
    let model = AccuracyModel::from_config(&config);
    let epsilons = vec![
        model.error_rate(64, 16, config.interconnect, &config.device, Case::Average),
        model.error_rate(16, 64, config.interconnect, &config.device, Case::Average),
    ];
    let layers = propagate(&epsilons, config.output_levels());
    println!("\nper-layer accuracy prediction:");
    for (i, l) in layers.iter().enumerate() {
        println!(
            "  layer {i}: ε {:.3} %, avg deviation {:.3} levels, avg error {:.3} %",
            l.crossbar_epsilon * 100.0,
            l.avg_deviation,
            l.avg_error_rate * 100.0
        );
    }

    // Inject exactly the predicted deviations into quantized inference.
    let quantizer = Quantizer::unsigned_unit(config.precision.output_bits)?;
    let network = mlp.to_network();
    let mut accuracy_sum = 0.0;
    let test = &patches[48..];
    for patch in test {
        let clean = network.forward(&quantizer.quantize_tensor(patch))?;
        let mut noisy = quantizer.quantize_tensor(patch);
        for (layer_index, pair) in network.layers().chunks(2).enumerate() {
            for layer in pair {
                noisy = layer.forward(&noisy)?;
            }
            noisy = inject_digital_deviation(
                &quantizer.quantize_tensor(&noisy),
                &quantizer,
                layers[layer_index].avg_deviation,
                &mut rng,
            );
        }
        accuracy_sum += relative_accuracy(&quantizer.quantize_tensor(&clean), &noisy);
    }
    let measured = accuracy_sum / test.len() as f64;
    let predicted = 1.0 - layers.last().unwrap().avg_error_rate;
    println!(
        "\npredicted accuracy {:.2} %, measured accuracy {:.2} % (gap {:.2} points)",
        predicted * 100.0,
        measured * 100.0,
        (predicted - measured).abs() * 100.0
    );
    Ok(())
}
