//! Design-space exploration of a large fully-connected layer
//! (the paper's §VII.C case study): sweep crossbar size, parallelism
//! degree and interconnect node, then print the per-metric optimal designs
//! and the Pareto front.
//!
//! ```text
//! cargo run --release --example design_space_exploration \
//!     [-- --emit <metrics|trace|live>=<path>]... [--progress]
//! ```
//!
//! With `--live <path>` the sweep streams NDJSON progress events
//! ([`mnsim::obs::live`]) — `campaign_started` / `wave_completed` (ETA,
//! items/s) / `campaign_finished` — to `path` while it runs; `--progress`
//! prints a human one-liner per wave to stderr.

use mnsim::core::config::Precision;
use mnsim::core::dse::Objective;
use mnsim::nn::models;
use mnsim::obs;
use mnsim::prelude::*;
use mnsim::tech::cmos::CmosNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (metrics_path, trace_path, live_path, progress) = paths_from_args()?;
    // The live sampler reads the metric registry, so `--live`/`--progress`
    // imply a metrics session even without `--metrics`.
    let live_wanted = live_path.is_some() || progress;
    let session = (metrics_path.is_some() || live_wanted).then(obs::session);
    let trace_session = trace_path.as_ref().map(|_| obs::trace::session());
    let live_session = if live_wanted {
        let mut live_config = obs::live::LiveConfig::default().with_progress(progress);
        if let Some(path) = &live_path {
            live_config = live_config.to_path(path);
        }
        Some(obs::live::session(live_config)?)
    } else {
        None
    };

    // One 2048×1024 layer, 45 nm CMOS, 4-bit signed weights, 8-bit signals.
    let mut base = Config::for_network(models::large_bank_layer());
    base.cmos = CmosNode::N45;
    base.precision = Precision {
        input_bits: 8,
        weight_bits: 4,
        output_bits: 8,
    };
    base.device.bits_per_cell = 7;

    let space = DesignSpace::paper_large_bank();
    let constraints = Constraints::crossbar_error(0.25); // ε ≤ 25 %

    // One session drives the whole sweep; `threads(0)` = all cores.
    let simulator = Simulator::new(base).threads(0);

    let start = std::time::Instant::now();
    let result = simulator.explore(&space, &constraints)?;
    println!(
        "evaluated {} designs in {:.2?} ({} feasible under the 25 % error bound)\n",
        result.evaluated,
        start.elapsed(),
        result.feasible.len()
    );

    for objective in Objective::TABLE_COLUMNS {
        let best = result.best(objective).expect("feasible set is non-empty");
        println!(
            "best {objective:<9} -> crossbar {:>4}, p {:>3}, {}: \
             {:>8.2} mm², {:>8.3} µJ, {:>8.3} µs, ε_out {:>5.2} %",
            best.crossbar_size,
            best.parallelism,
            best.interconnect,
            best.report.total_area.square_millimeters(),
            best.report.energy_per_sample.microjoules(),
            best.report.sample_latency.microseconds(),
            best.report.output_max_error_rate * 100.0,
        );
    }

    let front = result.pareto(&[Objective::Area, Objective::Latency, Objective::Accuracy]);
    println!(
        "\nPareto front (area × latency × accuracy): {} designs",
        front.len()
    );
    for p in front.iter().take(10) {
        println!(
            "  crossbar {:>4}, p {:>3}, {:>10}: {:>8.2} mm², {:>8.3} µs, ε_out {:>5.2} %",
            p.crossbar_size,
            p.parallelism,
            p.interconnect.to_string(),
            p.report.total_area.square_millimeters(),
            p.report.sample_latency.microseconds(),
            p.report.output_max_error_rate * 100.0,
        );
    }

    if let Some(live) = live_session {
        let live_report = live.finish();
        if let Some(path) = &live_path {
            eprintln!(
                "live telemetry written to {path} ({} lines, {} samples)",
                live_report.events,
                live_report.samples.len()
            );
        }
    }
    if let (Some(path), Some(trace_session)) = (trace_path, trace_session) {
        let trace = trace_session.finish();
        std::fs::write(&path, trace.to_chrome_json())?;
        eprint!("{}", trace.summary().to_table());
        eprintln!("trace written to {path}");
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, obs::snapshot().to_json())?;
        drop(session);
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// `(metrics, trace, live, progress)` flag tuple.
type SweepFlags = (Option<String>, Option<String>, Option<String>, bool);

/// Parses the `--emit <kind>=<path>` artifact spec and `--progress`.
/// The pre-unification `--metrics` / `--trace` / `--live` spellings
/// remain as deprecated aliases.
fn paths_from_args() -> Result<SweepFlags, Box<dyn std::error::Error>> {
    let mut metrics = None;
    let mut trace = None;
    let mut live = None;
    let mut progress = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => {
                let spec = args.next().ok_or("--emit requires <kind>=<path>")?;
                let (kind, path) = spec.split_once('=').ok_or("--emit expects <kind>=<path>")?;
                match kind {
                    "metrics" => metrics = Some(path.to_string()),
                    "trace" => trace = Some(path.to_string()),
                    "live" => live = Some(path.to_string()),
                    _ => return Err("--emit: unknown kind (metrics, trace, live)".into()),
                }
            }
            "--metrics" => {
                eprintln!("note: `--metrics <path>` is deprecated; use `--emit metrics=<path>`");
                metrics = Some(args.next().ok_or("--metrics requires a file path")?);
            }
            "--trace" => {
                eprintln!("note: `--trace <path>` is deprecated; use `--emit trace=<path>`");
                trace = Some(args.next().ok_or("--trace requires a file path")?);
            }
            "--live" => {
                eprintln!("note: `--live <path>` is deprecated; use `--emit live=<path>`");
                live = Some(args.next().ok_or("--live requires a file path")?);
            }
            "--progress" => progress = true,
            _ => {}
        }
    }
    Ok((metrics, trace, live, progress))
}
