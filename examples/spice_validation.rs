//! Validate the behavior-level models against the circuit-level simulator
//! and export a generated netlist (the paper's §VII.A/B flow).
//!
//! ```text
//! cargo run --release --example spice_validation
//! ```

use mnsim::core::accuracy::fit_wire_coefficient;
use mnsim::core::config::Config;
use mnsim::core::netlist_gen::generate_netlist;
use mnsim::core::validate::{measure_speedup, validate_against_circuit};
use mnsim::nn::data::random_weight_matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = Config::fully_connected_mlp(&[64, 64])?;
    config.crossbar_size = 64;

    // --- Fig.-5-style calibration -------------------------------------------
    let fit = fit_wire_coefficient(
        &config.device,
        config.interconnect,
        config.sense_resistance,
        &[8, 16, 32, 64],
    )?;
    println!(
        "calibration: wire coefficient {:.4}, non-linearity coefficient {:.4}, RMSE {:.5}",
        fit.coefficient, fit.nonlinearity_coefficient, fit.rmse
    );
    for p in &fit.points {
        println!(
            "  size {:>3}: circuit {:>7.2} %  model {:>7.2} %",
            p.size,
            p.measured * 100.0,
            p.modeled * 100.0
        );
    }

    // --- Table-II-style validation ------------------------------------------
    println!("\nmodel vs circuit (2 weight samples x 3 inputs):");
    for row in validate_against_circuit(&config, 2, 3, 42)? {
        println!(
            "  {:<40} MNSIM {:>10.4} {unit}  circuit {:>10.4} {unit}  ({:+.2} %)",
            row.metric,
            row.mnsim,
            row.circuit,
            row.relative_error() * 100.0,
            unit = row.unit,
        );
    }

    // --- Table-III-style speed-up ------------------------------------------
    println!("\nspeed-up over the circuit solver:");
    for row in measure_speedup(&config, &[16, 32, 64])? {
        println!(
            "  size {:>3}: circuit {:>9.4} s   MNSIM {:>12.7} s   {:>8.0}x",
            row.size,
            row.circuit_seconds,
            row.mnsim_seconds,
            row.speedup()
        );
    }

    // --- netlist export -------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(1);
    let weights = random_weight_matrix(8, 8, &mut rng);
    let inputs = vec![0.5; 8];
    let netlist = generate_netlist(&config, &weights, &inputs, "example 8x8 block")?;
    let lines = netlist.lines().count();
    println!("\ngenerated SPICE netlist for an 8x8 block: {lines} lines");
    println!("{}", netlist.lines().take(6).collect::<Vec<_>>().join("\n"));
    println!("...");
    Ok(())
}
