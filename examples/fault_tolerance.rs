//! Fault tolerance: sweep the stuck-at defect rate and watch accuracy,
//! yield, and solver-fallback behavior degrade gracefully.
//!
//! ```text
//! cargo run --release --example fault_tolerance [-- --metrics <path>] [--trace <path>]
//! ```
//!
//! Each sweep point runs a seeded Monte-Carlo fault campaign on top of the
//! clean behavior-level simulation: defect maps are drawn per trial,
//! spare-row repair and bank retirement are applied, and the surviving
//! arrays are re-solved at circuit level through the recovery ladder.

use mnsim::core::report::{report_csv_row, CSV_HEADER};
use mnsim::obs;
use mnsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (metrics_path, trace_path) = paths_from_args()?;
    let session = metrics_path.as_ref().map(|_| obs::session());
    let trace_session = trace_path.as_ref().map(|_| obs::trace::session());

    let config = Config::fully_connected_mlp(&[128, 128])?;
    // One session, re-tuned per sweep point; trials fan out on all cores.
    let simulator = Simulator::new(config).threads(0);

    println!("stuck-at rate sweep — {} trials per point\n", 8);
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "rate", "yield", "fallbacks", "dev mean", "dev p95", "weight dmg"
    );

    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');

    for &rate in &[0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let fault_config = FaultConfig {
            rates: FaultRates {
                broken_bitline: rate / 10.0,
                ..FaultRates::stuck_at(rate)
            },
            trials: 8,
            seed: 0xDEFEC7,
            ..FaultConfig::default()
        };
        let report = simulator.clone().faults(fault_config).run()?;
        let faults = report.faults.as_ref().expect("campaign ran");
        println!(
            "{:>10.3} {:>7.1}% {:>9.1}% {:>12.4} {:>12.4} {:>12.4}",
            rate,
            faults.yield_fraction * 100.0,
            faults.fallback_rate() * 100.0,
            faults.mean_deviation_levels,
            faults.p95_deviation_levels,
            faults.mean_weight_damage_levels,
        );
        csv.push_str(&report_csv_row(&report));
        csv.push('\n');
    }

    println!("\nCSV (fault columns are the last four):");
    println!("{csv}");

    if let (Some(path), Some(trace_session)) = (trace_path, trace_session) {
        let trace = trace_session.finish();
        std::fs::write(&path, trace.to_chrome_json())?;
        eprint!("{}", trace.summary().to_table());
        eprintln!("trace written to {path}");
    }
    if let Some(path) = metrics_path {
        std::fs::write(&path, obs::snapshot().to_json())?;
        drop(session);
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// Parses the optional `--metrics <path>` and `--trace <path>` arguments.
fn paths_from_args() -> Result<(Option<String>, Option<String>), Box<dyn std::error::Error>> {
    let mut metrics = None;
    let mut trace = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => {
                metrics = Some(args.next().ok_or("--metrics requires a file path")?);
            }
            "--trace" => {
                trace = Some(args.next().ok_or("--trace requires a file path")?);
            }
            _ => {}
        }
    }
    Ok((metrics, trace))
}
