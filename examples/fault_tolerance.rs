//! Fault tolerance: sweep the stuck-at defect rate and watch accuracy,
//! yield, and solver-fallback behavior degrade gracefully.
//!
//! ```text
//! cargo run --release --example fault_tolerance \
//!     [-- --emit <metrics|trace|live>=<path>]... \
//!     [--checkpoint <dir>] [--deadline-ms <ms>] [--progress]
//! ```
//!
//! Each sweep point runs a seeded Monte-Carlo fault campaign on top of the
//! clean behavior-level simulation: defect maps are drawn per trial,
//! spare-row repair and bank retirement are applied, and the surviving
//! arrays are re-solved at circuit level through the recovery ladder.
//!
//! With `--checkpoint <dir>` every sweep point persists completed trials
//! to its own file under `dir` (one file per rate — each campaign has its
//! own fingerprint), so an interrupted sweep resumes bit-identically on
//! the next invocation. With `--deadline-ms <ms>` the whole sweep shares
//! one wall-clock deadline; a point that hits it stops cooperatively and
//! the example exits with a `deadline exceeded` error after checkpointing.
//!
//! With `--live <path>` the sweep streams NDJSON progress events
//! ([`mnsim::obs::live`]) for every per-rate campaign to `path`, and
//! `--progress` prints a human one-liner per wave to stderr — useful when
//! the sweep runs long enough to want `tail -f`-style visibility.

use mnsim::core::report::{report_csv_row, CSV_HEADER};
use mnsim::obs;
use mnsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = sweep_args()?;
    // A live session samples the metric registry, so `--live`/`--progress`
    // imply a metrics session even without `--metrics`.
    let live_wanted = args.live.is_some() || args.progress;
    let session = (args.metrics.is_some() || live_wanted).then(obs::session);
    let trace_session = args.trace.as_ref().map(|_| obs::trace::session());
    let live_session = if live_wanted {
        let mut live_config = obs::live::LiveConfig::default().with_progress(args.progress);
        if let Some(path) = &args.live {
            live_config = live_config.to_path(path);
        }
        Some(obs::live::session(live_config)?)
    } else {
        None
    };

    let config = Config::fully_connected_mlp(&[128, 128])?;
    // One session, re-tuned per sweep point; trials fan out on all cores.
    let mut simulator = Simulator::new(config).threads(0);
    if let Some(millis) = args.deadline_ms {
        // The deadline clock starts here and is shared by every sweep
        // point — it bounds the whole example, not each campaign.
        simulator = simulator.deadline(Deadline::after_millis(millis));
    }
    if let Some(dir) = &args.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }

    println!("stuck-at rate sweep — {} trials per point\n", 8);
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>12}",
        "rate", "yield", "fallbacks", "dev mean", "dev p95", "weight dmg"
    );

    let mut csv = String::from(CSV_HEADER);
    csv.push('\n');

    for &rate in &[0.0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let fault_config = FaultConfig {
            rates: FaultRates {
                broken_bitline: rate / 10.0,
                ..FaultRates::stuck_at(rate)
            },
            trials: 8,
            seed: 0xDEFEC7,
            ..FaultConfig::default()
        };
        let mut point = simulator.clone().faults(fault_config);
        if let Some(dir) = &args.checkpoint_dir {
            // One file per sweep point: the campaign fingerprint covers the
            // fault rates, so points must not share a checkpoint.
            let path = format!("{dir}/rate_{}.json", (rate * 1000.0).round() as u64);
            point = point.checkpoint(CheckpointPolicy::new(path));
        }
        let report = point.run()?;
        let faults = report.faults.as_ref().expect("campaign ran");
        println!(
            "{:>10.3} {:>7.1}% {:>9.1}% {:>12.4} {:>12.4} {:>12.4}",
            rate,
            faults.yield_fraction * 100.0,
            faults.fallback_rate() * 100.0,
            faults.mean_deviation_levels,
            faults.p95_deviation_levels,
            faults.mean_weight_damage_levels,
        );
        csv.push_str(&report_csv_row(&report));
        csv.push('\n');
    }

    println!("\nCSV (fault columns are the last four):");
    println!("{csv}");

    if let Some(live) = live_session {
        let live_report = live.finish();
        if let Some(path) = &args.live {
            eprintln!(
                "live telemetry written to {path} ({} lines, {} samples)",
                live_report.events,
                live_report.samples.len()
            );
        }
    }
    if let (Some(path), Some(trace_session)) = (&args.trace, trace_session) {
        let trace = trace_session.finish();
        std::fs::write(path, trace.to_chrome_json())?;
        eprint!("{}", trace.summary().to_table());
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &args.metrics {
        std::fs::write(path, obs::snapshot().to_json())?;
        drop(session);
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// Parsed command-line arguments of the sweep.
struct SweepArgs {
    metrics: Option<String>,
    trace: Option<String>,
    checkpoint_dir: Option<String>,
    deadline_ms: Option<u64>,
    live: Option<String>,
    progress: bool,
}

/// Parses the `--emit <kind>=<path>` artifact spec plus `--checkpoint`,
/// `--deadline-ms`, and `--progress`. The pre-unification `--metrics` /
/// `--trace` / `--live` spellings remain as deprecated aliases.
fn sweep_args() -> Result<SweepArgs, Box<dyn std::error::Error>> {
    let mut parsed = SweepArgs {
        metrics: None,
        trace: None,
        checkpoint_dir: None,
        deadline_ms: None,
        live: None,
        progress: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => {
                let spec = args.next().ok_or("--emit requires <kind>=<path>")?;
                let (kind, path) = spec.split_once('=').ok_or("--emit expects <kind>=<path>")?;
                match kind {
                    "metrics" => parsed.metrics = Some(path.to_string()),
                    "trace" => parsed.trace = Some(path.to_string()),
                    "live" => parsed.live = Some(path.to_string()),
                    _ => return Err("--emit: unknown kind (metrics, trace, live)".into()),
                }
            }
            "--metrics" => {
                eprintln!("note: `--metrics <path>` is deprecated; use `--emit metrics=<path>`");
                parsed.metrics = Some(args.next().ok_or("--metrics requires a file path")?);
            }
            "--trace" => {
                eprintln!("note: `--trace <path>` is deprecated; use `--emit trace=<path>`");
                parsed.trace = Some(args.next().ok_or("--trace requires a file path")?);
            }
            "--checkpoint" => {
                parsed.checkpoint_dir =
                    Some(args.next().ok_or("--checkpoint requires a directory")?);
            }
            "--deadline-ms" => {
                let value = args.next().ok_or("--deadline-ms requires milliseconds")?;
                parsed.deadline_ms = Some(value.parse().map_err(|_| "--deadline-ms: bad value")?);
            }
            "--live" => {
                eprintln!("note: `--live <path>` is deprecated; use `--emit live=<path>`");
                parsed.live = Some(args.next().ok_or("--live requires a file path")?);
            }
            "--progress" => parsed.progress = true,
            _ => {}
        }
    }
    Ok(parsed)
}
