//! Spiking neural network on memristor crossbars (paper §II.B-2): train a
//! small classifier, convert it to a rate-coded integrate-and-fire
//! network, compare spiking accuracy against the analog network, and
//! estimate the SNN accelerator's hardware cost.
//!
//! ```text
//! cargo run --release --example snn_inference
//! ```

use mnsim::core::config::{Config, NetworkType};
use mnsim::core::simulate::simulate;
use mnsim::nn::data::gaussian_clusters;
use mnsim::nn::layers::{Activation, FullyConnected};
use mnsim::nn::snn::SpikingNetwork;
use mnsim::nn::tensor::Tensor;
use mnsim::nn::train::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2016);

    // --- train a 16-d, 3-class classifier -----------------------------------
    let data = gaussian_clusters(3, 60, 16, 0.06, &mut rng);
    let mut mlp = Mlp::random(&[16, 24, 3], Activation::Relu, Activation::Sigmoid, &mut rng)?;
    let train: Vec<(Tensor, Tensor)> = data
        .iter()
        .map(|(x, label)| {
            let mut t = vec![0.0; 3];
            t[*label] = 1.0;
            (x.clone(), Tensor::vector(&t))
        })
        .collect();
    mlp.train(&train, 200, 0.3)?;

    let analog_accuracy = data
        .iter()
        .filter(|(x, label)| mlp.forward(x).unwrap().argmax() == *label)
        .count() as f64
        / data.len() as f64;
    println!("analog (ANN) accuracy: {:.1} %", analog_accuracy * 100.0);

    // --- convert to a rate-coded spiking network -----------------------------
    let synapses: Vec<FullyConnected> = mlp
        .to_network()
        .layers()
        .iter()
        .filter_map(|layer| match layer {
            mnsim::nn::layers::Layer::FullyConnected(fc) => Some(fc.clone()),
            _ => None,
        })
        .collect();
    let mut snn = SpikingNetwork::new(synapses, 1.0)?;

    for steps in [50usize, 200, 1000] {
        let correct = data
            .iter()
            .filter(|(x, label)| {
                snn.run(x, steps, &mut rng).unwrap().argmax() == *label
            })
            .count();
        println!(
            "spiking accuracy over {steps:>4} time steps: {:.1} %",
            correct as f64 / data.len() as f64 * 100.0
        );
    }

    // --- hardware cost of the SNN accelerator -------------------------------
    let mut config = Config::fully_connected_mlp(&[16, 24, 3])?;
    config.network_type = NetworkType::Snn; // integrate-and-fire neurons
    config.crossbar_size = 32;
    let report = simulate(&config)?;
    println!(
        "\nSNN accelerator: {:.4} mm², {:.4} µJ per time step, {:.4} µs per step",
        report.total_area.square_millimeters(),
        report.energy_per_sample.microjoules(),
        report.sample_latency.microseconds()
    );
    println!(
        "rate coding over 200 steps: {:.3} µJ, {:.2} µs per classification",
        report.energy_per_sample.microjoules() * 200.0,
        report.sample_latency.microseconds() * 200.0
    );
    Ok(())
}
