//! Circuit-fidelity fault campaign on a crossbar size that was CG-only
//! before the sparse direct solver landed.
//!
//! ```text
//! cargo run --release --example sparse_fault_sweep \
//!     [-- --size <edge>] [--trials <n>] [--rate <fraction>] [--threads <n>]
//! ```
//!
//! A 256×256 crossbar reduces to ~131k nodal unknowns — far past the
//! dense cutoff, and until now solved iteratively on every trial. The
//! KLU-style engine (`mnsim::circuit::klu`, `DESIGN.md` §16) analyzes
//! and factors that structure once per worker thread; each trial's fault
//! map is a value-only change, so the cached factorization is refreshed
//! in place (`solver.klu.refactor`) instead of re-analyzed. The example
//! runs one campaign and prints the engine counters that prove it.

use mnsim::core::config::Config;
use mnsim::core::exec::ExecOptions;
use mnsim::core::fault_sim::{simulate_with_faults_with, FaultConfig};
use mnsim::obs;
use mnsim::tech::fault::FaultRates;
use mnsim::tech::memristor::IvModel;

struct Args {
    size: usize,
    trials: usize,
    rate: f64,
    threads: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        size: 256,
        trials: 16,
        rate: 0.01,
        threads: 0, // available parallelism
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next().ok_or_else(|| format!("{what} requires a value"))
        };
        match flag.as_str() {
            "--size" => args.size = value("--size")?.parse().map_err(|e| format!("--size: {e}"))?,
            "--trials" => {
                args.trials = value("--trials")?.parse().map_err(|e| format!("--trials: {e}"))?;
            }
            "--rate" => args.rate = value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;
    let session = obs::session();

    let mut config = Config::fully_connected_mlp(&[args.size, args.size])?;
    config.crossbar_size = args.size;
    // Ohmic cells keep the trial circuits linear; nonlinear devices route
    // through the Newton loop, which never refreshes a cached factorization.
    config.device.iv = IvModel::Linear;
    let faults = FaultConfig {
        rates: FaultRates::stuck_at(args.rate),
        trials: args.trials,
        // No spare-row repair: every defect survives into the operated
        // circuit, so every trial is a genuine value change.
        spare_rows: 0,
        ..FaultConfig::default()
    };
    let exec = ExecOptions::with_threads(args.threads);

    println!(
        "{0}x{0} crossbar, {1} trials, stuck-at rate {2}",
        args.size, args.trials, args.rate
    );
    let report = simulate_with_faults_with(&config, &faults, &exec)?;
    let summary = report.faults.expect("campaign ran");
    println!(
        "yield {:.1} %, mean deviation {:.3} levels, worst KCL residual {:.2e} A",
        summary.yield_fraction * 100.0,
        summary.mean_deviation_levels,
        summary.worst_kcl_residual,
    );

    let snap = session.snapshot();
    println!("\nsparse engine counters:");
    for name in [
        "solver.klu.analyses",
        "solver.klu.factors",
        "solver.klu.refactor",
        "solver.klu.refactor_fallbacks",
        "solver.klu.solves",
        "circuit.batch.value_refreshes",
        "circuit.batch.cache_hits",
        "circuit.recovery.solves",
    ] {
        println!("  {name:36} {}", snap.counter(name));
    }
    Ok(())
}
