//! Quickstart: configure an accelerator for a 3-layer fully-connected
//! network, simulate it through the [`Simulator`] session API, and print
//! the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mnsim::core::report::{format_bank_details, format_report};
use mnsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Table II network: two 128×128 fully-connected layers.
    let config = Config::fully_connected_mlp(&[128, 128, 128])?;

    // `threads(0)` uses every core; reports are bit-identical at any
    // thread count, so parallelism is purely a wall-clock choice.
    let report = Simulator::new(config).threads(0).run()?;
    println!("{}", format_report(&report));
    println!("per-bank details:");
    println!("{}", format_bank_details(&report));

    // The same session can start from a Table-I style config file.
    let report2 = Simulator::from_text(
        "\
        Network_Scale = 128x128, 128x128\n\
        Crossbar_Size = 128\n\
        CMOS_Tech = 90nm\n\
        Interconnect_Tech = 28nm\n\
        Memristor_Model = RRAM\n\
        Resistance_Range = [500 500k]\n",
    )?
    .run()?;
    assert_eq!(
        report.total_area.square_meters(),
        report2.total_area.square_meters(),
        "programmatic and file-based configs agree"
    );
    println!("config-file route produced the identical report — OK");
    Ok(())
}
