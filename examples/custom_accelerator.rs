//! Customize MNSIM for published designs: the PRIME FF-subarray and the
//! ISAAC tile (the paper's §VII.E case studies), plus a user-defined
//! custom design with an imported module.
//!
//! ```text
//! cargo run --release --example custom_accelerator
//! ```

use mnsim::core::config::Config;
use mnsim::core::custom::isaac::simulate_isaac;
use mnsim::core::custom::prime::simulate_prime;
use mnsim::core::custom::{CustomDesign, CustomReport, ImportedModule};
use mnsim::core::perf::ModulePerf;
use mnsim::tech::units::{Area, Energy, Power, Time};

fn show(report: &CustomReport) {
    println!("{}:", report.name);
    println!("  area:            {:>10.3} mm²", report.area.square_millimeters());
    println!(
        "  energy per task: {:>10.3} µJ",
        report.energy_per_task.microjoules()
    );
    println!("  latency:         {:>10.3} µs", report.latency.microseconds());
    println!(
        "  accuracy:        {:>10.1} %",
        report.relative_accuracy * 100.0
    );
    println!("  power:           {:>10.3} W\n", report.power.watts());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The two published case studies (Table VII).
    show(&simulate_prime()?);
    show(&simulate_isaac()?);

    // A user-defined customization: a 512→512 layer accelerator with an
    // imported on-chip DMA engine whose numbers come from another tool.
    let design = CustomDesign {
        base: Config::fully_connected_mlp(&[512, 512])?,
        imported: vec![ImportedModule {
            name: "DMA engine (imported from RTL synthesis)".into(),
            perf: ModulePerf::new(
                Area::from_square_micrometers(25_000.0),
                Time::from_nanoseconds(50.0),
                Energy::from_picojoules(800.0),
                Power::from_microwatts(120.0),
            ),
            count: 2,
        }],
        pipeline_depth: None,
    };
    show(&design.evaluate("custom 512x512 accelerator with DMA")?);
    Ok(())
}
