//! On-chip training cost exploration (the paper's future-work item):
//! compare inference-only deployment against on-chip SGD, and show how
//! sparse updates and endurance limits shape the design.
//!
//! ```text
//! cargo run --release --example onchip_training
//! ```

use mnsim::core::config::Config;
use mnsim::core::memory_mode::evaluate_memory_mode;
use mnsim::core::simulate::simulate;
use mnsim::core::training::{estimate_training, TrainingPlan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = Config::fully_connected_mlp(&[784, 256, 10])?;
    let inference = simulate(&config)?;
    println!(
        "inference: {:.3} µJ/sample, {:.3} µs/sample",
        inference.energy_per_sample.microjoules(),
        inference.sample_latency.microseconds()
    );

    println!("\non-chip training (1000 samples x 10 epochs):");
    for density in [1.0, 0.1, 0.01] {
        let plan = TrainingPlan {
            update_density: density,
            ..TrainingPlan::default()
        };
        let cost = estimate_training(&config, &plan)?;
        println!(
            "  update density {:>5.2}: total {:>10.3} mJ \
             (compute {:>8.3} mJ, writes {:>9.3} mJ), {:>8.3} ms, \
             {:>7.0} writes/cell, {:.4} % endurance",
            density,
            cost.total_energy().millijoules(),
            cost.compute_energy.millijoules(),
            cost.write_energy.millijoules(),
            cost.latency.seconds() * 1e3,
            cost.writes_per_cell,
            cost.endurance_consumed * 100.0
        );
    }

    // The same fabric as an NVSim-style memory macro (§III.E-4).
    let memory = evaluate_memory_mode(&config, 16)?;
    println!(
        "\nmemory mode (16 arrays): {:.1} Mbit, {:.3} mm², \
         read {:.1} ns / write {:.1} ns, {:.2} Gbit/s",
        memory.capacity_bits as f64 / 1e6,
        memory.area.square_millimeters(),
        memory.read_latency.nanoseconds(),
        memory.write_latency.nanoseconds(),
        memory.read_bandwidth_bits_per_s / 1e9
    );
    Ok(())
}
