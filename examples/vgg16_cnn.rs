//! Simulate a full VGG-16 CNN accelerator (the paper's §VII.D case
//! study): per-bank breakdown, pipeline-cycle latency, and the effect of
//! the interconnect node on the accumulated output error.
//!
//! ```text
//! cargo run --release --example vgg16_cnn
//! ```

use mnsim::core::config::Config;
use mnsim::core::simulate::simulate;
use mnsim::tech::interconnect::InterconnectNode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = Config::vgg16_cnn();
    config.crossbar_size = 128;
    config.parallelism = 64;

    let report = simulate(&config)?;
    println!("VGG-16 on memristor crossbars ({} banks)", report.accelerator.banks.len());
    println!(
        "  total area:            {:>10.1} mm²",
        report.total_area.square_millimeters()
    );
    println!(
        "  energy per image:      {:>10.3} mJ",
        report.energy_per_sample.millijoules()
    );
    println!(
        "  latency per pipeline cycle: {:>7.3} µs  (throughput-defining)",
        report.pipeline_cycle.microseconds()
    );
    println!(
        "  end-to-end sample latency:  {:>7.3} ms  (pipeline fill)",
        report.sample_latency.seconds() * 1e3
    );
    println!(
        "  output error (max/avg):     {:>6.2} % / {:.2} %",
        report.output_max_error_rate * 100.0,
        report.output_avg_error_rate * 100.0
    );

    println!("\n  bank  units  ops/sample  cycle (µs)   ε (%)");
    for (i, (bank, acc)) in report
        .accelerator
        .banks
        .iter()
        .zip(&report.layer_accuracy)
        .enumerate()
    {
        println!(
            "  {:>4}  {:>5}  {:>10}  {:>10.4}  {:>6.2}",
            i,
            bank.unit_count,
            bank.ops_per_sample,
            bank.cycle.latency.microseconds(),
            acc.crossbar_epsilon * 100.0
        );
    }

    println!("\ninterconnect sweep (error accumulation across 16 layers):");
    for node in [
        InterconnectNode::N90,
        InterconnectNode::N45,
        InterconnectNode::N28,
        InterconnectNode::N18,
    ] {
        let mut c = config.clone();
        c.interconnect = node;
        let r = simulate(&c)?;
        println!(
            "  {:>10}: worst crossbar ε {:>6.2} %, output error {:>6.2} %",
            node.to_string(),
            r.worst_crossbar_epsilon * 100.0,
            r.output_max_error_rate * 100.0
        );
    }
    Ok(())
}
