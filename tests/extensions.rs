//! Integration tests for the platform extensions: transient analysis in
//! the validation path, SNN substrate + SNN hardware costing, on-chip
//! training, memory mode, bit-serial encoding, and inter-bank links.

use mnsim::core::config::{Config, InputEncoding, NetworkType};
use mnsim::core::memory_mode::evaluate_memory_mode;
use mnsim::core::report::{area_breakdown, dse_csv, report_csv_row, CSV_HEADER};
use mnsim::core::simulate::simulate;
use mnsim::core::training::{estimate_training, TrainingPlan};
use mnsim::core::validate::measure_transient_settle;
use mnsim::nn::layers::FullyConnected;
use mnsim::nn::snn::SpikingNetwork;
use mnsim::nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn transient_settle_tracks_model_prediction() {
    let config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    let measured = measure_transient_settle(&config, 16).unwrap();
    let model = mnsim::core::modules::crossbar::CrossbarModel::new(
        16,
        &config.device,
        config.interconnect,
    );
    let predicted = model.settle_latency();
    let ratio = measured.seconds() / predicted.seconds();
    assert!(
        (0.3..3.0).contains(&ratio),
        "transient {} vs model {} (ratio {ratio})",
        measured.seconds(),
        predicted.seconds()
    );
}

#[test]
fn bit_serial_trades_latency_for_area_at_accelerator_level() {
    let mut config = Config::fully_connected_mlp(&[512, 512]).unwrap();
    config.input_encoding = InputEncoding::AnalogDac;
    let dac = simulate(&config).unwrap();
    config.input_encoding = InputEncoding::BitSerial;
    let serial = simulate(&config).unwrap();
    assert!(serial.total_area.square_meters() < dac.total_area.square_meters());
    assert!(serial.sample_latency.seconds() > dac.sample_latency.seconds());
    // Accuracy is untouched by the input encoding.
    assert_eq!(serial.worst_crossbar_epsilon, dac.worst_crossbar_epsilon);
}

#[test]
fn interbank_links_appear_for_multibank_networks() {
    let single = simulate(&Config::fully_connected_mlp(&[256, 256]).unwrap()).unwrap();
    assert!(single.accelerator.links.is_empty());
    let multi =
        simulate(&Config::fully_connected_mlp(&[256, 256, 256, 256]).unwrap()).unwrap();
    assert_eq!(multi.accelerator.links.len(), 2);
    for link in &multi.accelerator.links {
        assert!(link.area.square_meters() > 0.0);
        assert!(link.dynamic_energy.joules() > 0.0);
    }
}

#[test]
fn training_and_memory_mode_compose_with_any_config() {
    let mut config = Config::fully_connected_mlp(&[128, 64]).unwrap();
    config.network_type = NetworkType::Snn;
    let training = estimate_training(&config, &TrainingPlan::default()).unwrap();
    assert!(training.total_energy().joules() > 0.0);
    let memory = evaluate_memory_mode(&config, 4).unwrap();
    assert!(memory.capacity_bits > 0);
    // Same fabric: memory-mode capacity covers the network's weights.
    let weight_bits =
        config.network.total_weights() as u64 * u64::from(config.precision.weight_bits);
    assert!(memory.capacity_bits * 8 > weight_bits);
}

#[test]
fn snn_hardware_and_algorithm_agree_on_shapes() {
    // The spiking substrate and the SNN accelerator model describe the
    // same network sizes.
    let config = {
        let mut c = Config::fully_connected_mlp(&[32, 16]).unwrap();
        c.network_type = NetworkType::Snn;
        c.crossbar_size = 32;
        c
    };
    let report = simulate(&config).unwrap();
    assert_eq!(report.accelerator.banks.len(), 1);

    let mut rng = StdRng::seed_from_u64(1);
    let mut fc = FullyConnected::zeros(32, 16);
    for w in fc.weights.data_mut() {
        *w = 0.25;
    }
    let mut snn = SpikingNetwork::new(vec![fc], 1.0).unwrap();
    let trace = snn
        .run(&Tensor::vector(&vec![0.5; 32]), 200, &mut rng)
        .unwrap();
    assert_eq!(trace.output_spikes.len(), 16);
    // Energy of a rate-coded classification = per-step energy × steps.
    let energy = report.energy_per_sample.joules() * trace.steps as f64;
    assert!(energy > 0.0);
}

#[test]
fn csv_export_roundtrips_through_parsing() {
    let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
    let report = simulate(&config).unwrap();
    let row = report_csv_row(&report);
    let fields: Vec<&str> = row.split(',').collect();
    assert_eq!(fields.len(), CSV_HEADER.split(',').count());
    // Numeric fields parse back.
    let area: f64 = fields[5].parse().unwrap();
    assert!((area - report.total_area.square_millimeters()).abs() < 1e-3);

    use mnsim::core::dse::{explore, Constraints, DesignSpace};
    let space = DesignSpace {
        crossbar_sizes: vec![128],
        parallelism_degrees: vec![16],
        interconnects: vec![mnsim::tech::interconnect::InterconnectNode::N45],
    };
    let result = explore(&config, &space, &Constraints::default()).unwrap();
    let csv = dse_csv(&result);
    for line in csv.lines().skip(1) {
        assert_eq!(line.split(',').count(), CSV_HEADER.split(',').count());
    }
}

#[test]
fn area_breakdown_shares_are_sane_across_network_types() {
    for t in [NetworkType::Ann, NetworkType::Snn, NetworkType::Cnn] {
        let mut config = Config::fully_connected_mlp(&[512, 512]).unwrap();
        config.network_type = t;
        let report = simulate(&config).unwrap();
        let b = area_breakdown(&report);
        for (name, share) in [
            ("crossbars", b.crossbars / b.total()),
            ("decoders", b.decoders / b.total()),
            ("converters", b.converters / b.total()),
        ] {
            assert!((0.0..1.0).contains(&share), "{t}: {name} share {share}");
        }
    }
}
