//! Cross-crate integration: configuration → hierarchy evaluation →
//! accuracy propagation → reporting, plus the instruction-set replay and
//! the customization paths.

use mnsim::core::config::{Config, NetworkType, SignedMapping, WeightPolarity};
use mnsim::core::instruction::{execute, Instruction, Program};
use mnsim::core::report::format_report;
use mnsim::core::simulate::simulate;
use mnsim::nn::models;
use mnsim::tech::cmos::CmosNode;
use mnsim::tech::interconnect::InterconnectNode;

#[test]
fn full_flow_for_every_network_type() {
    for (network_type, network) in [
        (NetworkType::Ann, models::mlp(&[256, 128, 64]).unwrap()),
        (NetworkType::Snn, models::mlp(&[128, 128]).unwrap()),
        (NetworkType::Cnn, models::caffenet()),
    ] {
        let mut config = Config::for_network(network);
        config.network_type = network_type;
        let report = simulate(&config).expect("simulation succeeds");
        assert!(report.total_area.square_meters() > 0.0, "{network_type}");
        assert!(report.energy_per_sample.joules() > 0.0, "{network_type}");
        assert!(report.sample_latency.seconds() > 0.0, "{network_type}");
        assert!(
            report.pipeline_cycle.seconds() <= report.sample_latency.seconds(),
            "{network_type}"
        );
        let text = format_report(&report);
        assert!(text.contains("area"), "{network_type}");
    }
}

#[test]
fn config_knobs_move_metrics_in_the_documented_direction() {
    let base = Config::fully_connected_mlp(&[1024, 1024]).unwrap();
    let base_report = simulate(&base).unwrap();

    // Finer CMOS shrinks area and speeds up the periphery.
    let mut fine = base.clone();
    fine.cmos = CmosNode::N32;
    let fine_report = simulate(&fine).unwrap();
    assert!(fine_report.total_area.square_meters() < base_report.total_area.square_meters());

    // Coarser wires improve accuracy.
    let mut coarse_wire = base.clone();
    coarse_wire.interconnect = InterconnectNode::N90;
    let coarse_report = simulate(&coarse_wire).unwrap();
    assert!(coarse_report.worst_crossbar_epsilon < base_report.worst_crossbar_epsilon);

    // Unsigned weights halve the crossbars.
    let mut unsigned = base.clone();
    unsigned.weight_polarity = WeightPolarity::Unsigned;
    let unsigned_report = simulate(&unsigned).unwrap();
    assert!(
        unsigned_report.total_area.square_meters() < base_report.total_area.square_meters()
    );

    // Shared-crossbar signed mapping needs more column blocks but fewer
    // crossbar copies; both mappings must at least evaluate.
    let mut shared = base.clone();
    shared.signed_mapping = SignedMapping::SharedCrossbar;
    let shared_report = simulate(&shared).unwrap();
    assert!(shared_report.total_area.square_meters() > 0.0);
}

#[test]
fn instruction_replay_matches_bank_metrics() {
    let config = Config::fully_connected_mlp(&[256, 256]).unwrap();
    let report = simulate(&config).unwrap();

    let mut program = Program::new();
    program.push(Instruction::Compute { bank: 0 });
    let cost = execute(&report, &program).unwrap();
    assert_eq!(
        cost.latency.seconds(),
        report.accelerator.banks[0].cycle.latency.seconds()
    );
    assert_eq!(
        cost.energy.joules(),
        report.accelerator.banks[0].cycle.dynamic_energy.joules()
    );
}

#[test]
fn caffenet_and_vgg_have_expected_bank_counts() {
    let caffenet = Config::for_network(models::caffenet());
    let vgg = Config::vgg16_cnn();
    assert_eq!(simulate(&caffenet).unwrap().accelerator.banks.len(), 8);
    assert_eq!(simulate(&vgg).unwrap().accelerator.banks.len(), 16);
}

#[test]
fn snn_and_ann_differ_only_in_neurons() {
    let mut ann = Config::fully_connected_mlp(&[512, 512]).unwrap();
    ann.network_type = NetworkType::Ann;
    let mut snn = ann.clone();
    snn.network_type = NetworkType::Snn;
    let ann_report = simulate(&ann).unwrap();
    let snn_report = simulate(&snn).unwrap();
    // Same crossbar fabric → identical accuracy; different neuron
    // circuits → different area.
    assert_eq!(
        ann_report.worst_crossbar_epsilon,
        snn_report.worst_crossbar_epsilon
    );
    assert_ne!(
        ann_report.total_area.square_meters(),
        snn_report.total_area.square_meters()
    );
}

#[test]
fn reports_are_deterministic() {
    let config = Config::fully_connected_mlp(&[300, 200, 100]).unwrap();
    let a = simulate(&config).unwrap();
    let b = simulate(&config).unwrap();
    assert_eq!(a.total_area.square_meters(), b.total_area.square_meters());
    assert_eq!(a.energy_per_sample.joules(), b.energy_per_sample.joules());
    assert_eq!(a.output_max_error_rate, b.output_max_error_rate);
}
