//! Property-based tests over the core data structures and invariants
//! (deliverable (c)): the linear solvers, the accuracy model, quantizers,
//! partitioning, units and the propagation chain.

use mnsim::circuit::cg::{solve_cg, CgOptions};
use mnsim::circuit::dense::DenseMatrix;
use mnsim::circuit::sparse::TripletMatrix;
use mnsim::core::accuracy::{
    avg_digital_deviation, max_digital_deviation, propagate, AccuracyModel, Case,
};
use mnsim::core::config::Config;
use mnsim::core::mapping::Partition;
use mnsim::nn::quantize::Quantizer;
use mnsim::tech::interconnect::InterconnectNode;
use mnsim::tech::memristor::{IvModel, MemristorModel};
use mnsim::tech::units::{Resistance, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CG and dense LU agree on random SPD systems.
    #[test]
    fn cg_matches_dense_lu(seed in 0u64..1000, n in 2usize..24) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        // A = B·Bᵀ + n·I is SPD.
        let b: Vec<Vec<f64>> = (0..n).map(|_| (0..n).map(|_| rnd()).collect()).collect();
        let mut dense = vec![vec![0.0; n]; n];
        let mut triplets = TripletMatrix::new(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for (bik, bjk) in b[i].iter().zip(&b[j]) {
                    acc += bik * bjk;
                }
                if i == j {
                    acc += n as f64;
                }
                dense[i][j] = acc;
                triplets.add(i, j, acc);
            }
        }
        let rhs: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let lu = DenseMatrix::from_rows(&dense).solve(&rhs).unwrap();
        let (cg, _) = solve_cg(&triplets.to_csr(), &rhs, &CgOptions::default()).unwrap();
        for i in 0..n {
            prop_assert!((lu[i] - cg[i]).abs() < 1e-6, "component {}: {} vs {}", i, lu[i], cg[i]);
        }
    }

    /// The accuracy model always produces a rate in [0, 1); with *linear*
    /// cells (no sinh cancellation) the worst case bounds the average
    /// case. (With strong non-linearity the signed wire and conduction
    /// errors can cancel in the all-R_min worst case, so the magnitude
    /// ordering is only guaranteed for ohmic cells.)
    #[test]
    fn accuracy_model_bounds(
        rows_pow in 2u32..9,
        cols_pow in 2u32..9,
        rs in 1.0f64..200.0,
        node_idx in 0usize..7,
    ) {
        let rows = 1usize << rows_pow;
        let cols = 1usize << cols_pow;
        let node = InterconnectNode::ALL[node_idx];
        let mut device = MemristorModel::rram_default();
        let model = AccuracyModel::paper_linear(Resistance::from_ohms(rs));
        let worst = model.error_rate(rows, cols, node, &device, Case::Worst);
        let avg = model.error_rate(rows, cols, node, &device, Case::Average);
        prop_assert!((0.0..1.0).contains(&worst));
        prop_assert!((0.0..1.0).contains(&avg));

        device.iv = IvModel::Linear;
        let worst_lin = model.error_rate(rows, cols, node, &device, Case::Worst);
        let avg_lin = model.error_rate(rows, cols, node, &device, Case::Average);
        prop_assert!(worst_lin + 1e-12 >= avg_lin,
            "linear cells: worst {} < avg {}", worst_lin, avg_lin);
    }

    /// Digital deviations are monotone in ε and clamped to k−1. The
    /// paper's Eq. 14 average can exceed its Eq. 12 maximum by at most one
    /// level (the avg sums ⌊i·ε+0.5⌋ up to i = k−1 while the max uses the
    /// (k−1.5)·ε boundary argument), so the true invariant is
    /// `avg ≤ max + 1`.
    #[test]
    fn deviation_monotone_and_clamped(k_pow in 1u32..10, eps in 0.0f64..4.0) {
        let k = 1u32 << k_pow;
        let d = max_digital_deviation(k, eps);
        prop_assert!(d < k);
        let d_more = max_digital_deviation(k, eps + 0.1);
        prop_assert!(d_more >= d);
        let avg = avg_digital_deviation(k, eps);
        prop_assert!(avg <= f64::from(d) + 1.0 + 1e-12);
    }

    /// Error propagation is monotone: adding a layer never reduces the
    /// output error.
    #[test]
    fn propagation_monotone(eps in proptest::collection::vec(0.0f64..0.3, 1..8)) {
        let layers = propagate(&eps, 256);
        let mut prev = 0.0;
        for layer in &layers {
            prop_assert!(layer.max_error_rate + 1e-12 >= prev);
            prev = layer.max_error_rate;
        }
    }

    /// Quantization error is bounded by half a step, and quantization is
    /// idempotent.
    #[test]
    fn quantizer_invariants(bits in 1u32..12, value in -2.0f64..3.0) {
        let q = Quantizer::unsigned_unit(bits).unwrap();
        let quantized = q.quantize(value);
        let clamped = value.clamp(0.0, 1.0);
        prop_assert!((quantized - clamped).abs() <= q.step() / 2.0 + 1e-12);
        prop_assert_eq!(q.quantize(quantized), quantized);
        prop_assert!(q.level_of(quantized) < q.levels());
    }

    /// Matrix partitioning covers the matrix exactly.
    #[test]
    fn partition_covers_matrix(rows in 1usize..5000, cols in 1usize..5000, size_pow in 2u32..11) {
        let mut config = Config::fully_connected_mlp(&[64, 64]).unwrap();
        config.crossbar_size = 1 << size_pow;
        let p = Partition::new(&config, rows, cols);
        let total_rows: usize = (0..p.row_blocks()).map(|b| p.rows_in_block(b)).sum();
        let total_cols: usize = (0..p.col_blocks()).map(|b| p.cols_in_block(b)).sum();
        prop_assert_eq!(total_rows, rows);
        prop_assert_eq!(total_cols, cols);
        prop_assert!(p.utilization() > 0.0 && p.utilization() <= 1.0 + 1e-12);
    }

    /// The sinh I-V model conserves the low-field limit and is odd in V.
    #[test]
    fn sinh_iv_properties(alpha in 0.1f64..5.0, r_kohm in 0.5f64..500.0, v in 0.01f64..1.0) {
        let iv = IvModel::Sinh { alpha };
        let state = Resistance::from_kilo_ohms(r_kohm);
        let pos = iv.current(state, Voltage::from_volts(v)).amperes();
        let neg = iv.current(state, Voltage::from_volts(-v)).amperes();
        prop_assert!((pos + neg).abs() < 1e-12 * pos.abs().max(1e-30), "odd symmetry");
        // chord resistance never exceeds the programmed state
        let chord = iv.chord_resistance(state, Voltage::from_volts(v)).ohms();
        prop_assert!(chord <= state.ohms() + 1e-9);
        prop_assert!(chord > 0.0);
    }

    /// Memristor level mapping is monotone in conductance and inverse to
    /// level_for_weight on exact grid points.
    #[test]
    fn memristor_level_roundtrip(level_frac in 0.0f64..1.0) {
        let device = MemristorModel::rram_default();
        let level = (level_frac * (device.levels() - 1) as f64).round() as u32;
        let weight = level as f64 / (device.levels() - 1) as f64;
        prop_assert_eq!(device.level_for_weight(weight), level);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random crossbar circuits satisfy conservation of power: delivered
    /// source power equals dissipated resistive power.
    #[test]
    fn power_conservation(size in 2usize..10, state_kohm in 1.0f64..100.0) {
        use mnsim::circuit::crossbar::CrossbarSpec;
        use mnsim::circuit::solve::{solve_dc, SolveOptions};
        let spec = CrossbarSpec::uniform(
            size,
            size,
            Resistance::from_kilo_ohms(state_kohm),
            Resistance::from_ohms(2.0),
            Resistance::from_ohms(50.0),
            Voltage::from_volts(0.5),
        );
        let built = spec.build().unwrap();
        let solution = solve_dc(built.circuit(), &SolveOptions::default()).unwrap();
        let source = solution.source_power(built.circuit()).watts();
        let dissipated = solution.dissipated_power(built.circuit()).watts();
        prop_assert!((source - dissipated).abs() < 1e-9 * source.abs().max(1e-12),
            "source {} vs dissipated {}", source, dissipated);
    }
}
