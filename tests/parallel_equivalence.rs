//! Parallel-execution equivalence: the threaded traversals must be
//! observationally identical to their serial counterparts — same feasible
//! sets, bit-identical statistics, same errors — for any thread count.
//!
//! Written against the pool-based entry points (`explore_with`,
//! `simulate_with_faults_with`) that every front end shares; the unified
//! `Simulator`/`Session` surface has its own suite in
//! `tests/api_facade.rs`.

use mnsim::core::config::Config;
use mnsim::core::dse::{explore, explore_with, Constraints, DesignPoint, DesignSpace};
use mnsim::core::error::CoreError;
use mnsim::core::exec::ExecOptions;
use mnsim::core::fault_sim::{simulate_with_faults_with, FaultConfig};
use mnsim::tech::fault::FaultRates;
use mnsim::tech::interconnect::InterconnectNode;

const THREAD_COUNTS: [usize; 4] = [1, 2, 7, 64];

fn dse_base() -> Config {
    Config::fully_connected_mlp(&[512, 256]).unwrap()
}

fn dse_space() -> DesignSpace {
    DesignSpace {
        crossbar_sizes: vec![32, 64, 128, 256],
        parallelism_degrees: vec![1, 8, 32],
        interconnects: vec![InterconnectNode::N28, InterconnectNode::N45],
    }
}

/// Serial traversal order differs from the parallel result's sorted order,
/// so both sides are sorted by the same key before comparison.
fn sorted(mut points: Vec<DesignPoint>) -> Vec<DesignPoint> {
    points.sort_by_key(|p| (p.crossbar_size, p.parallelism, p.interconnect.nanometers()));
    points
}

#[test]
fn explore_with_equals_serial_for_every_thread_count() {
    let base = dse_base();
    let space = dse_space();
    let constraints = Constraints::crossbar_error(0.3);
    let serial = explore(&base, &space, &constraints).unwrap();
    let serial_feasible = sorted(serial.feasible.clone());
    assert!(!serial_feasible.is_empty());

    for threads in THREAD_COUNTS {
        let parallel =
            explore_with(&base, &space, &constraints, &ExecOptions::with_threads(threads))
                .unwrap();
        assert_eq!(parallel.evaluated, serial.evaluated, "threads={threads}");
        // Full struct equality: geometry, interconnect, and every report
        // field must match the serial evaluation exactly.
        assert_eq!(
            sorted(parallel.feasible),
            serial_feasible,
            "threads={threads}"
        );
    }
}

#[test]
fn explore_with_propagates_the_serial_error() {
    // crossbar 2048 enumerates (power of two) but fails validation at
    // evaluation time, exercising the error path mid-traversal.
    let base = dse_base();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 2048, 64, 128],
        parallelism_degrees: vec![1, 8],
        interconnects: vec![InterconnectNode::N45],
    };
    let serial_err = explore(&base, &space, &Constraints::default()).unwrap_err();
    assert!(matches!(serial_err, CoreError::Config { .. }));

    for threads in THREAD_COUNTS {
        let err = explore_with(
            &base,
            &space,
            &Constraints::default(),
            &ExecOptions::with_threads(threads),
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            serial_err.to_string(),
            "threads={threads}"
        );
    }
}

#[test]
fn explore_with_reports_earliest_of_several_errors() {
    // Two failing combinations; every thread count must deterministically
    // report the one that comes first in traversal order, as serial does.
    let base = dse_base();
    let space = DesignSpace {
        crossbar_sizes: vec![2048, 32, 4096],
        parallelism_degrees: vec![1],
        interconnects: vec![InterconnectNode::N45],
    };
    let serial_err = explore(&base, &space, &Constraints::default()).unwrap_err();
    for threads in THREAD_COUNTS {
        let err = explore_with(
            &base,
            &space,
            &Constraints::default(),
            &ExecOptions::with_threads(threads),
        )
        .unwrap_err();
        assert_eq!(err.to_string(), serial_err.to_string(), "threads={threads}");
    }
}

#[test]
fn fault_campaign_is_bit_identical_across_thread_counts() {
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let rates = FaultRates {
        broken_wordline: 0.05,
        broken_bitline: 0.05,
        ..FaultRates::stuck_at(0.08)
    };
    let fault_config = FaultConfig {
        rates,
        trials: 9,
        ..FaultConfig::default()
    };
    let serial =
        simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();
    let serial_faults = serial.faults.expect("campaign attaches a summary");
    assert!(serial_faults.solves > 0);

    for threads in THREAD_COUNTS {
        let parallel =
            simulate_with_faults_with(&config, &fault_config, &ExecOptions::with_threads(threads))
                .unwrap();
        // Bit-identical, not approximately equal: trial seeds are derived
        // from the trial index and outcomes are reduced in trial order.
        assert_eq!(
            parallel.faults.expect("campaign attaches a summary"),
            serial_faults,
            "threads={threads}"
        );
    }
}

#[test]
fn fault_campaign_default_thread_count_matches_serial() {
    // Auto thread count (`threads: 0`) must not change results either.
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.05),
        trials: 5,
        ..FaultConfig::default()
    };
    let auto =
        simulate_with_faults_with(&config, &fault_config, &ExecOptions::default()).unwrap();
    let serial =
        simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();
    assert_eq!(auto.faults, serial.faults);
}
