//! Observability-layer integration tests: the metric counters must tell
//! the truth about what the solver and the simulation pipeline actually
//! did.
//!
//! Every test in this binary holds the [`mnsim::obs::session`] lock while
//! running instrumented code. The lock serializes the tests, so the global
//! registry is never polluted by a concurrently running test.

use mnsim::circuit::cg::{CgOptions, IterationCap};
use mnsim::circuit::solve::{Method, SolveOptions};
use mnsim::circuit::{solve_robust, Circuit, RecoveryStage, RobustOptions};
use mnsim::core::config::Config;
use mnsim::core::dse::{explore, explore_with, Constraints, DesignSpace};
use mnsim::core::exec::ExecOptions;
use mnsim::core::fault_sim::{simulate_with_faults_with, FaultConfig};
use mnsim::core::simulate::simulate;
use mnsim::obs;
use mnsim::tech::fault::FaultRates;
use mnsim::tech::interconnect::InterconnectNode;
use mnsim::tech::units::{Resistance, Voltage};

#[test]
fn clean_fault_campaign_records_no_fallbacks() {
    let session = obs::session();
    let fault_config = FaultConfig {
        rates: FaultRates::default(), // all-zero defect rates
        trials: 3,
        ..FaultConfig::default()
    };
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();

    let snap = session.snapshot();
    assert_eq!(snap.counter("core.fault.campaigns"), 1);
    assert_eq!(snap.counter("core.fault.trials"), 3);
    assert_eq!(snap.counter("core.fault.retired_trials"), 0);
    // Clean arrays solve on the cached sparse-direct fast path: the
    // recovery ladder is never consulted, so zero robust solves and zero
    // fallbacks.
    assert_eq!(snap.counter("circuit.recovery.solves"), 0);
    assert_eq!(snap.counter("circuit.recovery.fallbacks"), 0);
    assert_eq!(snap.counter("circuit.recovery.attempts.dense_lu"), 0);
    // The representative crossbar is solved by the KLU-style sparse engine
    // (under the default sinh device each Newton iteration's linearized
    // system lands on the sparse-direct path).
    assert!(snap.counter("solver.klu.factors") >= 1);
    assert!(snap.counter("solver.klu.solves") >= 3);
    assert!(snap.counter("circuit.solve.sparse_lu") >= 3);
    // One primary read per trial, and the identical clean trials after the
    // first are exact cache hits of the per-thread prepared slot.
    assert_eq!(snap.counter("circuit.batch.solves"), 3);
    assert_eq!(snap.counter("circuit.batch.cache_hits"), 2);
    // No CG anywhere on the clean path.
    assert_eq!(snap.counter("circuit.cg.solves"), 0);
}

#[test]
fn forced_fallback_increments_ladder_counters() {
    // A 40-resistor series ladder with a one-iteration CG budget: the base
    // rung cannot converge, so the ladder must escalate and the fallback
    // counters must say so.
    let mut c = Circuit::new();
    let top = c.add_node();
    c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    let mut prev = top;
    for _ in 0..40 {
        let next = c.add_node();
        c.add_resistor(prev, next, Resistance::from_kilo_ohms(1.0))
            .unwrap();
        prev = next;
    }
    c.add_resistor(prev, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
        .unwrap();
    let options = RobustOptions {
        base: SolveOptions {
            method: Method::Cg,
            cg: CgOptions {
                tolerance: 1e-15,
                max_iterations: IterationCap::Limit(1),
                ..CgOptions::default()
            },
            ..SolveOptions::default()
        },
        ..RobustOptions::default()
    };

    let session = obs::session();
    let (_, report) = solve_robust(&c, &options).unwrap();
    assert_ne!(report.stage, RecoveryStage::Base);

    let snap = session.snapshot();
    assert_eq!(snap.counter("circuit.recovery.solves"), 1);
    assert_eq!(snap.counter("circuit.recovery.fallbacks"), 1);
    assert_eq!(snap.counter("circuit.recovery.attempts.base"), 1);
    assert_eq!(snap.counter("circuit.recovery.accepted.base"), 0);
    // Whatever rung answered, attempts and acceptances must be consistent:
    // exactly one acceptance, on a non-base rung.
    let accepted_later = snap.counter("circuit.recovery.accepted.relaxed_cg")
        + snap.counter("circuit.recovery.accepted.dense_lu");
    assert_eq!(accepted_later, 1);
    // The starved base CG burned its budget and was recorded as such.
    assert!(snap.counter("circuit.cg.no_convergence") >= 1);
}

#[test]
fn simulate_records_per_stage_timings() {
    let session = obs::session();
    let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
    simulate(&config).unwrap();

    let snap = session.snapshot();
    assert_eq!(snap.counter("core.simulate.runs"), 1);
    for stage in [
        "core.simulate.total",
        "core.simulate.stage.accelerator",
        "core.simulate.stage.accuracy",
        "core.simulate.stage.propagate",
    ] {
        let h = snap
            .histograms
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
        assert_eq!(h.count, 1, "{stage}");
        assert!(h.sum >= 0.0 && h.sum.is_finite(), "{stage}: {}", h.sum);
    }
}

#[test]
fn dse_counters_track_feasibility_split() {
    let session = obs::session();
    let base = Config::fully_connected_mlp(&[512, 256]).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 64, 128],
        parallelism_degrees: vec![1, 16],
        interconnects: vec![InterconnectNode::N28, InterconnectNode::N45],
    };
    let result = explore(&base, &space, &Constraints::default()).unwrap();

    let snap = session.snapshot();
    assert_eq!(snap.counter("core.dse.points"), result.evaluated as u64);
    assert_eq!(
        snap.counter("core.dse.feasible") + snap.counter("core.dse.infeasible"),
        result.evaluated as u64
    );
    assert_eq!(
        snap.counter("core.dse.feasible"),
        result.feasible.len() as u64
    );
    assert_eq!(snap.counter("core.dse.errors"), 0);
    assert!(
        *snap.gauges.get("core.dse.points_per_sec").unwrap() > 0.0,
        "throughput gauge must be set"
    );
}

#[test]
fn parallel_dse_error_still_evaluates_every_point() {
    // Satellite fix regression: a failing combination mid-chunk must not
    // silently drop the losing thread's remaining points. crossbar 2048 is
    // a power of two but beyond the supported 1024, so its evaluation
    // fails `Config::validate` while the space still enumerates it.
    let base = Config::fully_connected_mlp(&[512, 256]).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 2048, 64, 128],
        parallelism_degrees: vec![1],
        interconnects: vec![InterconnectNode::N45],
    };

    let session = obs::session();
    let err =
        explore_with(&base, &space, &Constraints::default(), &ExecOptions::with_threads(2))
            .unwrap_err();
    let snap = session.snapshot();
    drop(session);

    // All four combinations were attempted despite the mid-chunk failure.
    assert_eq!(snap.counter("core.dse.points"), 4);
    assert_eq!(snap.counter("core.dse.errors"), 1);

    // And the reported error is the one serial traversal reports.
    let serial_err = explore(&base, &space, &Constraints::default()).unwrap_err();
    assert_eq!(err.to_string(), serial_err.to_string());
}

#[test]
fn snapshot_json_is_valid_and_complete() {
    // The acceptance list: cg iteration counts, recovery-ladder rung
    // counts, per-stage simulate timings, and DSE throughput — all in one
    // machine-readable snapshot.
    let session = obs::session();

    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.02),
        trials: 2,
        ..FaultConfig::default()
    };
    simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 64],
        parallelism_degrees: vec![1],
        interconnects: vec![InterconnectNode::N45],
    };
    explore(&config, &space, &Constraints::default()).unwrap();
    // The fault campaign now solves through the cached sparse-direct path,
    // so drive the CG engine and the recovery ladder explicitly to get
    // their counters into the same snapshot.
    let mut divider = Circuit::new();
    let mid = divider.add_node();
    divider
        .add_voltage_source(mid, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    let tap = divider.add_node();
    divider
        .add_resistor(mid, tap, Resistance::from_kilo_ohms(1.0))
        .unwrap();
    divider
        .add_resistor(tap, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
        .unwrap();
    let cg_base = RobustOptions {
        base: SolveOptions {
            method: Method::Cg,
            ..SolveOptions::default()
        },
        ..RobustOptions::default()
    };
    solve_robust(&divider, &cg_base).unwrap();

    let snap = session.snapshot();
    let json = snap.to_json();
    obs::validate_json(&json).expect("snapshot JSON must parse");

    for required in [
        "circuit.cg.iterations",
        "circuit.recovery.attempts.base",
        "solver.klu.factors",
        "core.simulate.stage.accelerator",
        "core.dse.points_per_sec",
    ] {
        assert!(json.contains(required), "snapshot JSON lacks {required}");
    }

    // CSV export carries the same metric names plus the histogram
    // percentile columns.
    let csv = snap.to_csv();
    assert!(csv.starts_with("kind,name,unit,count,sum,min,max,mean,p50,p95,p99"));
    assert!(csv.contains("counter,circuit.cg.iterations,"));
}

/// Ordering-contract regression: a session opened *before* worker threads
/// spawn must observe every worker's increments, because the registry is
/// global and workers join before `snapshot()` is called. A session
/// opened after the fact would race; the contract (documented on
/// [`obs::session`]) is begin-session → run instrumented code → snapshot.
#[test]
fn session_opened_before_thread_pool_sees_all_worker_counts() {
    let session = obs::session();
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.02),
        trials: 14,
        ..FaultConfig::default()
    };
    simulate_with_faults_with(&config, &fault_config, &ExecOptions::with_threads(7)).unwrap();

    let snap = session.snapshot();
    // All 14 trials ran on 7 pool workers; every increment must be
    // visible, not just the spawning thread's share.
    assert_eq!(snap.counter("core.fault.campaigns"), 1);
    assert_eq!(snap.counter("core.fault.trials"), 14);
    // Retired trials skip the solve; every operated trial reads its
    // primary output through the cached sparse engine (or, if the fast
    // path balks, through a robust recovery solve) — so the workers'
    // combined solve counters must cover every operated trial.
    let operated = 14 - snap.counter("core.fault.retired_trials");
    assert!(
        snap.counter("circuit.batch.solves") + snap.counter("circuit.recovery.solves") >= operated,
        "worker increments missing: {} batch solves + {} robust solves < {operated} operated trials",
        snap.counter("circuit.batch.solves"),
        snap.counter("circuit.recovery.solves"),
    );
}

/// Overhead guard (ignored by default: wall-clock measurements are too
/// noisy for CI). Run with `cargo test --release -- --ignored overhead`.
///
/// The acceptance contract is that the *disabled* registry keeps a DSE
/// sweep within 5 % of an un-instrumented baseline. That baseline no
/// longer exists at runtime, so the test bounds the same quantity from
/// measurements: (disabled per-op cost) × (a generous over-count of the
/// instrumentation ops per DSE point) must stay below 5 % of the measured
/// per-point evaluation time. The trace subsystem carries a tighter
/// contract — disabled trace call sites must stay below 2 % of simulate
/// wall time — bounded the same way at the end of the test.
#[test]
#[ignore = "wall-clock measurement; run explicitly in release mode"]
fn disabled_instrumentation_overhead_is_negligible() {
    use std::time::Instant;

    let session = obs::session();
    obs::set_enabled(false);

    // Disabled hot-path ops: must be a branch on a relaxed atomic.
    static PROBE: obs::Counter = obs::Counter::new("overhead.probe");
    static PROBE_SPAN: obs::Span = obs::Span::new("overhead.probe_span");
    const OPS: u32 = 10_000_000;
    let started = Instant::now();
    for _ in 0..OPS {
        PROBE.inc();
        let _guard = PROBE_SPAN.enter();
    }
    // One counter + one span per loop turn, so two metric ops.
    let per_op = started.elapsed().as_secs_f64() / f64::from(OPS) / 2.0;
    assert!(
        per_op < 25e-9,
        "disabled metric op costs {:.1} ns",
        per_op * 1e9
    );

    // Disabled trace ops: outside a trace session each call must reduce
    // to one relaxed atomic load and a branch.
    let started = Instant::now();
    for _ in 0..OPS {
        let _guard = obs::trace::span("overhead.trace_probe", obs::trace::Level::Other);
        obs::trace::module_perf("overhead.trace_module", 1.0e-9, 1.0e-12);
    }
    let per_trace_op = started.elapsed().as_secs_f64() / f64::from(OPS) / 2.0;
    assert!(
        per_trace_op < 25e-9,
        "disabled trace op costs {:.1} ns",
        per_trace_op * 1e9
    );

    // Disabled live-telemetry ops: outside a live session every emission
    // helper must reduce to one relaxed atomic load and a branch.
    let started = Instant::now();
    for i in 0..OPS {
        obs::live::wave_completed(i as usize % 100, 100, None);
        let _ = obs::live::wave_grain(100);
    }
    let per_live_op = started.elapsed().as_secs_f64() / f64::from(OPS) / 2.0;
    assert!(
        per_live_op < 25e-9,
        "disabled live-telemetry op costs {:.1} ns",
        per_live_op * 1e9
    );

    // Measured per-point cost of a disabled-registry sweep. Each
    // measurement repeats the sweep to rise above timer noise.
    let base = Config::fully_connected_mlp(&[512, 256]).unwrap();
    let space = DesignSpace::paper_large_bank();
    const REPEATS: usize = 20;
    let mut sweep_secs = f64::INFINITY;
    let mut points = 0usize;
    for _ in 0..5 {
        let started = Instant::now();
        for _ in 0..REPEATS {
            points = explore(&base, &space, &Constraints::default())
                .unwrap()
                .evaluated;
        }
        sweep_secs = sweep_secs.min(started.elapsed().as_secs_f64());
    }
    drop(session);
    let per_point = sweep_secs / (REPEATS * points) as f64;

    // A DSE point touches the point span, the point/admission counters,
    // the simulate span, three stage spans and the run counter — a dozen
    // disabled ops; 32 is a comfortable over-count.
    let overhead_fraction = 32.0 * per_op / per_point;
    assert!(
        overhead_fraction < 0.05,
        "disabled instrumentation costs {:.2} % of a {:.2} µs DSE point",
        overhead_fraction * 100.0,
        per_point * 1e6
    );

    // Tracing adds its own disabled call sites along the same path: the
    // run/stage/layer/bank/unit spans plus the per-unit and per-bank
    // module attributions — again far fewer than 32 per simulated point.
    // The tracing contract is tighter: < 2 % of simulate wall time when
    // disabled.
    let trace_overhead_fraction = 32.0 * per_trace_op / per_point;
    assert!(
        trace_overhead_fraction < 0.02,
        "disabled tracing costs {:.2} % of a {:.2} µs DSE point",
        trace_overhead_fraction * 100.0,
        per_point * 1e6
    );

    // Live telemetry's disabled call sites sit at *wave* granularity (a
    // handful per campaign), far sparser than the per-point ops bounded
    // above — so even the same generous 32-ops-per-point over-count must
    // stay under the 2 % contract.
    let live_overhead_fraction = 32.0 * per_live_op / per_point;
    assert!(
        live_overhead_fraction < 0.02,
        "disabled live telemetry costs {:.2} % of a {:.2} µs DSE point",
        live_overhead_fraction * 100.0,
        per_point * 1e6
    );
}
