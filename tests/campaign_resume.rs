//! Campaign-hardening integration tests: cancellation, deterministic
//! checkpoint/resume, and panic isolation through the public API.
//!
//! The central property: a fault campaign (or DSE sweep) that is cancelled
//! mid-run with a checkpoint policy, then resumed, produces a result
//! **bit-identical** to the uninterrupted run — at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

use mnsim::core::dse::{explore, explore_controlled, Constraints, DesignSpace};
use mnsim::core::exec::{self, CancelToken, ExecError, ExecOptions, RunControl};
use mnsim::core::fault_sim::{
    simulate_with_faults_controlled, simulate_with_faults_with, FaultConfig,
};
use mnsim::prelude::*;
use proptest::prelude::*;

/// Unique checkpoint path per test case (parallel test threads share the
/// OS temp dir).
fn temp_checkpoint(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "mnsim_campaign_resume_{}_{n}_{tag}.json",
        std::process::id()
    ))
}

fn small_config() -> Config {
    Config::fully_connected_mlp(&[32, 16]).expect("reference config builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cancel mid-campaign at a random trial budget, checkpoint every 2
    /// trials, resume — the final summary is bit-identical to the
    /// uninterrupted campaign at 1, 2 and 7 threads.
    #[test]
    fn cancelled_campaign_resumes_bit_identically(
        seed in 0u64..u64::MAX,
        trials in 3usize..8,
        budget in 1usize..6,
    ) {
        let config = small_config();
        let base_faults = FaultConfig {
            rates: FaultRates::stuck_at(0.05),
            trials,
            seed,
            ..FaultConfig::default()
        };
        let baseline =
            simulate_with_faults_with(&config, &base_faults, &ExecOptions::serial())
                .expect("uninterrupted campaign runs");

        for threads in [1usize, 2, 7] {
            let path = temp_checkpoint(&format!("fault_t{threads}"));
            let campaign = FaultConfig {
                checkpoint: Some(CheckpointPolicy::new(path.display().to_string()).every(2)),
                ..base_faults.clone()
            };
            let options = ExecOptions::with_threads(threads);

            // Interrupted leg: the budget token trips at chunk granularity,
            // so a generous budget may let the run complete — both outcomes
            // are legal, and both must lead to the baseline summary.
            let control = RunControl::with_cancel(CancelToken::after_items(budget));
            let first = simulate_with_faults_controlled(&config, &campaign, &options, &control);
            match &first {
                Ok(report) => prop_assert_eq!(report, &baseline),
                Err(CoreError::Cancelled { completed, total, .. }) => {
                    prop_assert!(completed < total);
                    prop_assert_eq!(*total, trials);
                }
                Err(other) => prop_assert!(false, "unexpected error: {other}"),
            }

            // Resumed leg: no cancellation; completed trials load from the
            // checkpoint, the rest re-run from their per-trial seeds.
            let resumed = simulate_with_faults_controlled(
                &config,
                &campaign,
                &options,
                &RunControl::default(),
            )
            .expect("resumed campaign completes");
            prop_assert_eq!(&resumed, &baseline, "threads {}", threads);

            let _ = std::fs::remove_file(&path);
        }
    }
}

/// A cancelled DSE sweep with a checkpoint resumes to the exact
/// uninterrupted result (same best point, same feasible set).
#[test]
fn cancelled_dse_sweep_resumes_bit_identically() {
    let base = small_config();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 64, 128],
        parallelism_degrees: vec![1, 4, 16],
        interconnects: vec![
            mnsim::tech::interconnect::InterconnectNode::N28,
            mnsim::tech::interconnect::InterconnectNode::N45,
        ],
    };
    let constraints = Constraints::default();
    let baseline = explore(&base, &space, &constraints).expect("sweep is feasible");

    for threads in [1usize, 2, 7] {
        let path = temp_checkpoint(&format!("dse_t{threads}"));
        let policy = CheckpointPolicy::new(path.display().to_string()).every(2);
        let options = ExecOptions::with_threads(threads);

        let control = RunControl::with_cancel(CancelToken::after_items(3));
        let first = explore_controlled(
            &base,
            &space,
            &constraints,
            &options,
            &control,
            Some(&policy),
        );
        match first {
            Ok(ref result) => assert_eq!(result, &baseline),
            Err(CoreError::Cancelled { completed, total, .. }) => {
                assert!(completed < total);
                assert_eq!(total, 18);
            }
            Err(other) => panic!("unexpected error: {other}"),
        }

        let resumed = explore_controlled(
            &base,
            &space,
            &constraints,
            &options,
            &RunControl::default(),
            Some(&policy),
        )
        .expect("resumed sweep completes");
        assert_eq!(resumed, baseline, "threads {threads}");

        let _ = std::fs::remove_file(&path);
    }
}

/// Regression: one panicking work item must surface as a typed
/// `WorkerPanic` with its index, while parallel siblings still complete.
#[test]
fn worker_panic_is_typed_and_isolated() {
    for threads in [1usize, 2, 7] {
        let result = exec::try_map_n_controlled::<usize, std::convert::Infallible, _>(
            24,
            threads,
            &RunControl::default(),
            |i| {
                if i == 9 {
                    panic!("trial 9 exploded");
                }
                Ok(i * i)
            },
        );
        match result {
            Err(ExecError::WorkerPanic { index, payload }) => {
                assert_eq!(index, 9);
                assert!(payload.contains("trial 9 exploded"), "{payload}");
            }
            other => panic!("threads {threads}: expected WorkerPanic, got {other:?}"),
        }
    }
}

/// A cancelled `Simulator::run_cancellable` surfaces the typed error and
/// the checkpoint path it wrote; a fresh session then resumes from it.
#[test]
fn facade_cancel_checkpoint_resume_round_trip() {
    let path = temp_checkpoint("facade");
    let faults = FaultConfig {
        rates: FaultRates::stuck_at(0.05),
        trials: 32,
        seed: 0xFACADE,
        ..FaultConfig::default()
    };
    let session = Simulator::new(small_config())
        .threads(1)
        .faults(faults)
        .checkpoint(CheckpointPolicy::new(path.display().to_string()).every(2));

    let baseline = session.run().expect("uninterrupted run");
    let _ = std::fs::remove_file(&path);

    // Cancel immediately: the background run stops at the next boundary.
    let handle = session.run_cancellable();
    handle.cancel();
    match handle.join() {
        Ok(report) => assert_eq!(report, baseline), // raced to completion
        Err(CoreError::Cancelled { checkpoint, .. }) => {
            // The typed error carries the policy path whenever the
            // interrupted campaign managed to write a checkpoint.
            if let Some(written) = checkpoint {
                assert_eq!(written, path.display().to_string());
            }
        }
        Err(other) => panic!("unexpected error: {other}"),
    }

    let resumed = session.run().expect("resumed run completes");
    assert_eq!(resumed, baseline);
    let _ = std::fs::remove_file(&path);
}
