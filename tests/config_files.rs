//! Integration tests of the Table-I configuration-file front end.

use mnsim::core::config::{Config, NetworkType};
use mnsim::core::error::CoreError;
use mnsim::core::simulate::simulate;
use mnsim::tech::cmos::CmosNode;
use mnsim::tech::interconnect::InterconnectNode;
use mnsim::tech::memristor::{CellType, DeviceKind};

#[test]
fn paper_table_i_defaults_parse_and_simulate() {
    let text = "\
# Table I of the paper, spelled out
Network_Depth = 2
Network_Scale = 128x128, 128x128
Interface_Number = [128, 128]
Network_Type = ANN
Crossbar_Size = 128
Pooling_Size = 2
Spacial_Size = 1
Weight_Polarity = 2
CMOS_Tech = 90nm
Cell_Type = 1T1R
Memristor_Model = RRAM
Interconnect_Tech = 28nm
Parallelism_Degree = 0
Resistance_Range = [500 500k]
";
    let config = Config::from_text(text).unwrap();
    assert_eq!(config.network.depth(), 2);
    assert_eq!(config.cmos, CmosNode::N90);
    assert_eq!(config.interconnect, InterconnectNode::N28);
    assert_eq!(config.device.kind, DeviceKind::Rram);
    assert_eq!(config.device.cell_type, CellType::OneT1R);
    assert_eq!(config.device.r_min.ohms(), 500.0);
    assert_eq!(config.device.r_max.ohms(), 500_000.0);

    let report = simulate(&config).unwrap();
    assert!(report.total_area.square_millimeters() > 0.0);
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let text = "\n; semicolon comment\n* star comment\n# hash comment\nCrossbar_Size = 64\n\n";
    let config = Config::from_text(text).unwrap();
    assert_eq!(config.crossbar_size, 64);
}

#[test]
fn pcm_and_0t1r_parse() {
    let config =
        Config::from_text("Memristor_Model = PCM\nCell_Type = 0T1R\n").unwrap();
    assert_eq!(config.device.kind, DeviceKind::Pcm);
    assert_eq!(config.device.cell_type, CellType::ZeroT1R);
}

#[test]
fn cnn_network_type_parses() {
    let config = Config::from_text("Network_Type = CNN\n").unwrap();
    assert_eq!(config.network_type, NetworkType::Cnn);
}

#[test]
fn malformed_files_are_rejected_with_line_numbers() {
    for (text, expected_line) in [
        ("Crossbar_Size 128\n", 1),
        ("Crossbar_Size = 128\nInterface_Number = [1]\n", 2),
        ("CMOS_Tech = 33nm\n", 0), // tech error, no parse line
        ("Network_Scale = 12y34\n", 1),
    ] {
        match Config::from_text(text) {
            Err(CoreError::ConfigParse { line, .. }) => {
                assert_eq!(line, expected_line, "for {text:?}")
            }
            Err(CoreError::Tech(_)) => assert_eq!(expected_line, 0, "for {text:?}"),
            other => panic!("expected error for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn invalid_semantics_are_rejected_after_parsing() {
    // Parses fine, fails validation: parallelism above crossbar size.
    let text = "Crossbar_Size = 32\nParallelism_Degree = 64\n";
    match Config::from_text(text) {
        Err(CoreError::Config { errors }) => {
            assert_eq!(errors.len(), 1);
            assert_eq!(errors[0].field_path, "Parallelism_Degree");
        }
        other => panic!("expected validation error, got {other:?}"),
    }
}

#[test]
fn every_invalid_field_is_reported_at_once() {
    // Three independent violations in one file: the error must name all of
    // them, not stop at the first.
    let text = "Crossbar_Size = 48\nParallelism_Degree = 64\nPooling_Size = 0\n";
    match Config::from_text(text) {
        Err(CoreError::Config { errors }) => {
            let fields: Vec<&str> = errors.iter().map(|e| e.field_path.as_str()).collect();
            assert!(fields.contains(&"Crossbar_Size"), "{fields:?}");
            assert!(fields.contains(&"Parallelism_Degree"), "{fields:?}");
            assert!(fields.contains(&"Pooling_Size"), "{fields:?}");
            for error in &errors {
                assert!(!error.reason.is_empty());
                assert!(!error.allowed.is_empty());
            }
        }
        other => panic!("expected validation errors, got {other:?}"),
    }
}

#[test]
fn unknown_key_fixture_gets_line_and_suggestion() {
    let text = include_str!("fixtures/typo_key.cfg");
    match Config::from_text(text) {
        Err(CoreError::ConfigParse { line, reason }) => {
            assert_eq!(line, 4, "the misspelled key sits on line 4");
            assert!(reason.contains("Crosbar_Size"), "{reason}");
            assert!(
                reason.contains("did you mean `Crossbar_Size`"),
                "{reason}"
            );
        }
        other => panic!("expected parse error with suggestion, got {other:?}"),
    }
}

#[test]
fn resistance_magnitude_suffixes() {
    let config = Config::from_text("Resistance_Range = [1k 2M]\n").unwrap();
    assert_eq!(config.device.r_min.ohms(), 1_000.0);
    assert_eq!(config.device.r_max.ohms(), 2_000_000.0);
}
