//! Integration lockdown for the KLU-style sparse direct solver
//! ([`mnsim::circuit::klu`]): the sparse path must agree with dense LU to
//! near machine precision, the cached symbolic analysis must satisfy its
//! structural invariants, value-only refactorization must be bit-identical
//! to a fresh factorization, singular systems must surface as typed errors
//! (never NaN or a hang), and fault campaigns must actually hit the
//! refactor fast path per trial.

use mnsim::circuit::crossbar::CrossbarSpec;
use mnsim::circuit::solve::{solve_dc, Method, SolveOptions};
use mnsim::circuit::sparse::TripletMatrix;
use mnsim::circuit::{analyze, solve_robust, RobustOptions, SparseLu};
use mnsim::circuit::CircuitError;
use mnsim::core::config::Config;
use mnsim::core::exec::ExecOptions;
use mnsim::core::fault_sim::{simulate_with_faults_with, FaultConfig};
use mnsim::obs;
use mnsim::tech::fault::FaultRates;
use mnsim::tech::memristor::IvModel;
use mnsim::tech::units::{Resistance, Voltage};
use proptest::prelude::*;

/// Deterministic xorshift uniform in `[0, 1)`.
fn uniform(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// A crossbar whose cell states are drawn from `[5 kΩ, 20 kΩ)` — every
/// cell different, so the reduced system has no accidental symmetry.
fn random_crossbar(rows: usize, cols: usize, seed: u64) -> CrossbarSpec {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut spec = CrossbarSpec::uniform(
        rows,
        cols,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(500.0),
        Voltage::from_volts(1.0),
    );
    for cell in &mut spec.states {
        *cell = Resistance::from_ohms(5_000.0 + 15_000.0 * uniform(&mut state));
    }
    for input in &mut spec.inputs {
        *input = Voltage::from_volts(0.2 + 0.8 * uniform(&mut state));
    }
    spec
}

/// A random symmetric diagonally dominant sparse matrix in CSC form —
/// the shape every reduced crossbar nodal system has.
fn random_sdd_csc(n: usize, seed: u64) -> mnsim::circuit::sparse::CscMatrix {
    let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
    let mut diag = vec![1e-3f64; n]; // ground leak keeps every pivot alive
    let mut triplets = TripletMatrix::new(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if uniform(&mut state) < 3.0 / n as f64 {
                let g = 1e-4 + uniform(&mut state) * 1e-3;
                triplets.add(i, j, -g);
                triplets.add(j, i, -g);
                diag[i] += g;
                diag[j] += g;
            }
        }
    }
    for (i, &d) in diag.iter().enumerate() {
        triplets.add(i, i, d);
    }
    triplets.to_csc()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse-direct and dense LU agree within 1e-10 relative on random
    /// crossbar structures up to 96 unknowns (`2·rows·cols`).
    #[test]
    fn sparse_direct_matches_dense_lu_within_1e10(
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1_000_000,
    ) {
        let built = random_crossbar(rows, cols, seed).build().expect("valid crossbar");
        let solve_with = |method: Method| {
            let options = SolveOptions { method, ..SolveOptions::default() };
            solve_dc(built.circuit(), &options).expect("SDD system solves")
        };
        let sparse = solve_with(Method::SparseLu);
        let dense = solve_with(Method::DenseLu);
        for (node, (&vs, &vd)) in sparse.voltages().iter().zip(dense.voltages()).enumerate() {
            let scale = vs.abs().max(vd.abs()).max(1.0);
            prop_assert!(
                (vs - vd).abs() <= 1e-10 * scale,
                "{rows}x{cols} seed {seed} node {node}: sparse {vs} vs dense {vd}"
            );
        }
    }

    /// Structural invariants of the cached symbolic analysis: both
    /// permutations are permutations, the BTF blocks partition the matrix,
    /// and the numeric factorization reproduces `A` (checked through
    /// `A·(LU)⁻¹·b = b` on a known solution).
    #[test]
    fn symbolic_analysis_invariants_hold(
        n in 2usize..48,
        seed in 0u64..1_000_000,
    ) {
        let a = random_sdd_csc(n, seed);
        let analysis = analyze(&a).expect("SDD matrix is structurally nonsingular");
        prop_assert_eq!(analysis.n(), n);
        prop_assert!(analysis.compatible_with(&a));

        // Both orderings are permutations of 0..n.
        for perm in [analysis.row_perm(), analysis.col_perm()] {
            let mut seen = vec![false; n];
            for &p in perm {
                prop_assert!(p < n, "index {p} out of range");
                prop_assert!(!seen[p], "index {p} repeated");
                seen[p] = true;
            }
        }

        // The BTF blocks are a contiguous ascending partition of 0..n.
        let ranges = analysis.block_ranges();
        prop_assert_eq!(ranges.len(), analysis.block_count());
        prop_assert_eq!(ranges.first().map(|r| r.0), Some(0));
        prop_assert_eq!(ranges.last().map(|r| r.1), Some(n));
        for pair in ranges.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0, "blocks must tile contiguously");
        }
        for &(lo, hi) in &ranges {
            prop_assert!(lo < hi, "empty block [{lo}, {hi})");
        }

        // L·U reproduces A within tolerance: solving against b = A·x_true
        // must recover x_true.
        let lu = SparseLu::factor(&a).expect("SDD matrix factorizes");
        prop_assert!(lu.lu_nnz() >= n);
        let mut state = seed | 1;
        let x_true: Vec<f64> = (0..n).map(|_| uniform(&mut state) * 2.0 - 1.0).collect();
        let b = a.mul_vec(&x_true);
        let x = lu.solve(&b);
        for (i, (&xt, &xs)) in x_true.iter().zip(&x).enumerate() {
            let scale = xt.abs().max(xs.abs()).max(1.0);
            prop_assert!(
                (xt - xs).abs() <= 1e-8 * scale,
                "n {n} seed {seed} unknown {i}: {xt} vs {xs}"
            );
        }
    }

    /// `refresh` with unchanged values — and with changed values on the
    /// same pattern — produces solves bit-identical to a from-scratch
    /// factorization: the replayed pivot order is the pivot order fresh
    /// partial pivoting would choose on these diagonally dominant systems.
    #[test]
    fn refactor_is_bit_identical_to_fresh_factorization(
        n in 2usize..40,
        seed in 0u64..1_000_000,
    ) {
        let a = random_sdd_csc(n, seed);
        // Same pattern, scaled values: what a fault overlay or reprogram
        // does to the reduced system.
        let scaled = {
            let mut t = TripletMatrix::new(n, n);
            for col in 0..n {
                for k in a.col_ptr()[col]..a.col_ptr()[col + 1] {
                    t.add(a.row_idx()[k], col, a.values()[k] * 1.75);
                }
            }
            t.to_csc()
        };
        let mut state = seed.wrapping_add(17) | 1;
        let b: Vec<f64> = (0..n).map(|_| uniform(&mut state) * 2.0 - 1.0).collect();

        let mut lu = SparseLu::factor(&a).expect("factors");
        // Unchanged values: the fast path must fire and change nothing.
        prop_assert!(lu.refresh(&a).expect("same values refactor"));
        let fresh = SparseLu::factor(&a).expect("factors");
        prop_assert_eq!(lu.solve(&b), fresh.solve(&b), "unchanged-value refresh drifted");

        // Changed values, same pattern: still the fast path, still
        // bit-identical to factoring the new matrix from scratch.
        prop_assert!(lu.refresh(&scaled).expect("scaled values refactor"));
        let fresh_scaled = SparseLu::factor(&scaled).expect("factors");
        prop_assert_eq!(lu.solve(&b), fresh_scaled.solve(&b), "refreshed solve drifted");
    }
}

/// A genuinely singular system must come back as the typed
/// [`CircuitError::SingularSystem`] — not NaN voltages and not a hang.
/// The crossbar builder itself models broken lines as 1 TΩ segments
/// precisely to avoid creating one, so the degenerate circuit (a floating
/// node with no DC path anywhere) is built directly here.
#[test]
fn floating_node_is_a_typed_singular_error() {
    let built = random_crossbar(3, 3, 42).build().unwrap();
    let mut circuit = built.circuit().clone();
    circuit.add_node(); // no element ever touches it: zero diagonal row

    // The sparse-direct path reports the singularity from symbolic
    // analysis — the structure itself has no complete transversal.
    let sparse = SolveOptions {
        method: Method::SparseLu,
        ..SolveOptions::default()
    };
    match solve_dc(&circuit, &sparse) {
        Err(CircuitError::SingularSystem { .. }) => {}
        other => panic!("expected SingularSystem, got {other:?}"),
    }

    // The recovery ladder tries every rung, records the sparse rung's
    // early escalation (SingularPivot guard), and returns the typed error
    // once the ladder is exhausted.
    let session = obs::session();
    let result = solve_robust(&circuit, &RobustOptions::default());
    let snap = session.snapshot();
    match result {
        Err(CircuitError::SingularSystem { .. }) => {}
        other => panic!("expected SingularSystem from the ladder, got {other:?}"),
    }
    assert_eq!(snap.counter("circuit.recovery.attempts.sparse_lu"), 1);
    assert_eq!(snap.counter("circuit.recovery.accepted.sparse_lu"), 0);
    // Every rung fails on the singular-pivot (or zero-diagonal) guard:
    // four early escalations, none of them burning an iteration budget.
    assert_eq!(snap.counter("solver.early_escalations"), 4);
    assert_eq!(snap.counter("circuit.recovery.exhausted"), 1);
}

/// Acceptance: per-trial value-only updates in a fault campaign hit the
/// `refactor()` fast path — visible as `solver.klu.refactor` increments —
/// instead of rebuilding the prepared system from scratch every trial.
#[test]
fn fault_campaign_hits_the_refactor_fast_path() {
    let session = obs::session();
    let mut config = Config::fully_connected_mlp(&[8, 8]).unwrap();
    config.crossbar_size = 8;
    // Ohmic cells keep the trial circuits linear so the sparse engine —
    // not the Newton loop — owns the per-trial solves.
    config.device.iv = IvModel::Linear;
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.05),
        trials: 6,
        inputs_per_trial: 2,
        // No spare-row repair: defects must survive into the operated
        // circuit, otherwise every trial is fingerprint-identical to the
        // clean array and reuses the cache exactly instead of refreshing.
        spare_rows: 0,
        ..FaultConfig::default()
    };
    simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();

    let snap = session.snapshot();
    assert_eq!(snap.counter("core.fault.trials"), 6);
    // The first trial factors cold; each later trial's fault map is a
    // value-only change on the same structure, so all five must refresh
    // the cached factorization in place (the second read of each trial is
    // an exact cache hit and solves without touching the numeric factor).
    assert_eq!(
        snap.counter("solver.klu.refactor"),
        5,
        "trials after the first must hit the refactor fast path",
    );
    assert_eq!(
        snap.counter("circuit.batch.value_refreshes"),
        5,
        "prepare_or_reuse must refresh in place once per changed trial",
    );
    // And refreshing is strictly cheaper than re-analyzing: symbolic
    // analyses stay well below one per trial solve.
    assert!(snap.counter("solver.klu.analyses") < snap.counter("solver.klu.solves"));
}
