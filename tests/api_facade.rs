//! Facade-equivalence suite for the unified `Simulator` session API.
//!
//! The contract under test: every capability reached through
//! [`Simulator`] produces results identical to the legacy entry points —
//! and identical across every [`ExecOptions`] permutation. "Identical"
//! is checked at the strongest level available: full-`Report` equality
//! plus byte-for-byte equality of the canonical
//! [`report_json`](mnsim::core::report::report_json) rendering (which
//! round-trips every float through shortest-representation formatting,
//! so two JSONs are byte-equal iff the reports are bit-identical;
//! metrics/trace timing attachments are deliberately outside it).

use mnsim::core::dse::explore;
use mnsim::core::report::report_json;
use mnsim::core::simulate::simulate;
use mnsim::core::validate::validate_against_circuit;
use mnsim::prelude::*;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn reference_config() -> Config {
    Config::fully_connected_mlp(&[256, 128, 64]).unwrap()
}

#[test]
fn simulator_report_json_is_byte_identical_to_legacy_simulate() {
    let config = reference_config();
    let legacy = simulate(&config).unwrap();
    let legacy_json = report_json(&legacy);
    for threads in THREAD_COUNTS {
        let report = Simulator::new(config.clone()).threads(threads).run().unwrap();
        assert_eq!(legacy, report, "threads={threads}");
        assert_eq!(legacy_json, report_json(&report), "threads={threads}");
    }
}

#[test]
fn simulator_fault_campaign_matches_legacy_at_every_thread_count() {
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.03),
        trials: 6,
        ..FaultConfig::default()
    };
    #[allow(deprecated)]
    let legacy =
        mnsim::core::fault_sim::simulate_with_faults(&config, &fault_config).unwrap();
    let legacy_json = report_json(&legacy);
    for threads in THREAD_COUNTS {
        let report = Simulator::new(config.clone())
            .faults(fault_config.clone())
            .threads(threads)
            .run()
            .unwrap();
        assert_eq!(legacy, report, "threads={threads}");
        assert_eq!(legacy_json, report_json(&report), "threads={threads}");
    }
}

#[test]
fn simulator_explore_matches_legacy_serial_explore() {
    let config = Config::fully_connected_mlp(&[512, 256]).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 64, 128],
        parallelism_degrees: vec![1, 16],
        interconnects: vec![
            mnsim::tech::interconnect::InterconnectNode::N28,
            mnsim::tech::interconnect::InterconnectNode::N45,
        ],
    };
    let constraints = Constraints::crossbar_error(0.3);
    let legacy = explore(&config, &space, &constraints).unwrap();
    for threads in THREAD_COUNTS {
        let result = Simulator::new(config.clone())
            .threads(threads)
            .explore(&space, &constraints)
            .unwrap();
        // Full struct equality, traversal order included: the engine
        // reduces in canonical order at every thread count.
        assert_eq!(legacy, result, "threads={threads}");
    }
}

#[test]
fn simulator_validate_matches_legacy_serial_validate() {
    let mut config = reference_config();
    config.crossbar_size = 16; // keep the circuit solves small
    let legacy = validate_against_circuit(&config, 2, 2, 0xFACADE).unwrap();
    for threads in THREAD_COUNTS {
        let rows = Simulator::new(config.clone())
            .threads(threads)
            .validate(2, 2, 0xFACADE)
            .unwrap();
        assert_eq!(legacy, rows, "threads={threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: no [`ExecOptions`] permutation — thread count, metrics
    /// on/off, trace on/off, set via individual builders or wholesale —
    /// changes a single numerical bit of the report.
    #[test]
    fn exec_options_permutations_never_change_results(
        threads in 0usize..9,
        metrics_bit in 0u8..2,
        trace_bit in 0u8..2,
        wholesale_bit in 0u8..2,
    ) {
        let (metrics, trace, wholesale) =
            (metrics_bit == 1, trace_bit == 1, wholesale_bit == 1);
        let config = Config::fully_connected_mlp(&[128, 64]).unwrap();
        let baseline_json = report_json(&simulate(&config).unwrap());

        let simulator = if wholesale {
            Simulator::new(config).options(ExecOptions { threads, metrics, trace })
        } else {
            Simulator::new(config).threads(threads).metrics(metrics).trace(trace)
        };
        let report = simulator.run().unwrap();

        // Numerical payload identical; instrumentation attaches exactly
        // when requested.
        prop_assert_eq!(report_json(&report), baseline_json);
        prop_assert_eq!(report.metrics.is_some(), metrics);
        prop_assert_eq!(report.trace.is_some(), trace);
    }
}
