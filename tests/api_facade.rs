//! Facade-equivalence suite for the unified `Simulator`/`Session` API.
//!
//! The contract under test: every capability reached through
//! [`Simulator`] — and through a caching [`Session`] wrapped around it —
//! produces results identical to the underlying entry points, identical
//! across every [`ExecOptions`] permutation, and identical whether a
//! result was freshly evaluated or answered from the artifact cache.
//! "Identical" is checked at the strongest level available:
//! full-`Report` equality plus byte-for-byte equality of the canonical
//! [`report_json`](mnsim::core::report::report_json) rendering (which
//! round-trips every float through shortest-representation formatting,
//! so two JSONs are byte-equal iff the reports are bit-identical;
//! metrics/trace timing attachments are deliberately outside it).

use mnsim::core::dse::explore;
use mnsim::core::fault_sim::simulate_with_faults_with;
use mnsim::core::report::report_json;
use mnsim::core::simulate::simulate;
use mnsim::core::validate::validate_against_circuit;
use mnsim::prelude::*;
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

fn reference_config() -> Config {
    Config::fully_connected_mlp(&[256, 128, 64]).unwrap()
}

#[test]
fn simulator_report_json_is_byte_identical_to_legacy_simulate() {
    let config = reference_config();
    let legacy = simulate(&config).unwrap();
    let legacy_json = report_json(&legacy);
    for threads in THREAD_COUNTS {
        let report = Simulator::new(config.clone()).threads(threads).run().unwrap();
        assert_eq!(legacy, report, "threads={threads}");
        assert_eq!(legacy_json, report_json(&report), "threads={threads}");
    }
}

#[test]
fn simulator_fault_campaign_matches_legacy_at_every_thread_count() {
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.03),
        trials: 6,
        ..FaultConfig::default()
    };
    let legacy =
        simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();
    let legacy_json = report_json(&legacy);
    for threads in THREAD_COUNTS {
        let report = Simulator::new(config.clone())
            .faults(fault_config.clone())
            .threads(threads)
            .run()
            .unwrap();
        assert_eq!(legacy, report, "threads={threads}");
        assert_eq!(legacy_json, report_json(&report), "threads={threads}");
    }
}

#[test]
fn simulator_explore_matches_legacy_serial_explore() {
    let config = Config::fully_connected_mlp(&[512, 256]).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![32, 64, 128],
        parallelism_degrees: vec![1, 16],
        interconnects: vec![
            mnsim::tech::interconnect::InterconnectNode::N28,
            mnsim::tech::interconnect::InterconnectNode::N45,
        ],
    };
    let constraints = Constraints::crossbar_error(0.3);
    let legacy = explore(&config, &space, &constraints).unwrap();
    for threads in THREAD_COUNTS {
        let result = Simulator::new(config.clone())
            .threads(threads)
            .explore(&space, &constraints)
            .unwrap();
        // Full struct equality, traversal order included: the engine
        // reduces in canonical order at every thread count.
        assert_eq!(legacy, result, "threads={threads}");
    }
}

#[test]
fn simulator_validate_matches_legacy_serial_validate() {
    let mut config = reference_config();
    config.crossbar_size = 16; // keep the circuit solves small
    let legacy = validate_against_circuit(&config, 2, 2, 0xFACADE).unwrap();
    for threads in THREAD_COUNTS {
        let rows = Simulator::new(config.clone())
            .threads(threads)
            .validate(2, 2, 0xFACADE)
            .unwrap();
        assert_eq!(legacy, rows, "threads={threads}");
    }
}

#[test]
fn session_cache_hits_are_byte_identical_to_fresh_runs() {
    // The artifact cache must be observationally invisible: a hit is
    // byte-for-byte the same report a fresh evaluation produces.
    let config = Config::fully_connected_mlp(&[128, 64]).unwrap();
    let fresh_json = report_json(&simulate(&config).unwrap());

    let cache = std::sync::Arc::new(ArtifactCache::new());
    let session = Simulator::new(config.clone())
        .threads(2)
        .into_session_with(std::sync::Arc::clone(&cache));
    let miss = session.run().unwrap();
    assert_eq!(report_json(&miss), fresh_json, "miss equals a legacy run");

    // A different session (different thread count) over the shared cache
    // hits and returns the identical bytes.
    let other = Simulator::new(config)
        .threads(7)
        .into_session_with(cache);
    let hit = other.run().unwrap();
    assert_eq!(report_json(&hit), fresh_json, "hit equals a legacy run");
    assert_eq!(other.cache().stats().hits, 1);
}

#[test]
fn session_fault_campaign_hit_matches_legacy_bytes() {
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.03),
        trials: 4,
        ..FaultConfig::default()
    };
    let legacy_json = report_json(
        &simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap(),
    );
    let session = Simulator::new(config)
        .threads(3)
        .faults(fault_config)
        .into_session();
    assert_eq!(report_json(&session.run().unwrap()), legacy_json, "miss");
    assert_eq!(report_json(&session.run().unwrap()), legacy_json, "hit");
    assert_eq!(session.cache().stats().hits, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: no [`ExecOptions`] permutation — thread count, metrics
    /// on/off, trace on/off, set via individual builders or wholesale —
    /// changes a single numerical bit of the report.
    #[test]
    fn exec_options_permutations_never_change_results(
        threads in 0usize..9,
        metrics_bit in 0u8..2,
        trace_bit in 0u8..2,
        wholesale_bit in 0u8..2,
    ) {
        let (metrics, trace, wholesale) =
            (metrics_bit == 1, trace_bit == 1, wholesale_bit == 1);
        let config = Config::fully_connected_mlp(&[128, 64]).unwrap();
        let baseline_json = report_json(&simulate(&config).unwrap());

        let simulator = if wholesale {
            Simulator::new(config).options(ExecOptions { threads, metrics, trace })
        } else {
            Simulator::new(config).threads(threads).metrics(metrics).trace(trace)
        };
        let report = simulator.run().unwrap();

        // Numerical payload identical; instrumentation attaches exactly
        // when requested.
        prop_assert_eq!(report_json(&report), baseline_json);
        prop_assert_eq!(report.metrics.is_some(), metrics);
        prop_assert_eq!(report.trace.is_some(), trace);
    }
}
