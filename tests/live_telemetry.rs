//! Live-telemetry integration tests: the NDJSON event stream must parse,
//! match what the campaign actually did, and keep its determinism
//! contract — event *contents* (counts, totals) bit-stable across thread
//! counts, with only timestamps and rates varying.
//!
//! Every test holds the [`mnsim::obs::session`] lock before opening its
//! live session; the lock serializes the tests in this binary, so the
//! global telemetry hub is never shared between concurrently running
//! tests.

use mnsim::circuit::cg::CgOptions;
use mnsim::circuit::solve::{Method, SolveOptions};
use mnsim::circuit::{solve_robust, Circuit, RobustOptions};
use mnsim::core::checkpoint::CheckpointPolicy;
use mnsim::core::config::Config;
use mnsim::core::error::CoreError;
use mnsim::core::fault_sim::FaultConfig;
use mnsim::core::simulator::Simulator;
use mnsim::obs;
use mnsim::obs::live::{self, LiveConfig};
use mnsim::tech::fault::FaultRates;
use mnsim::tech::units::{Resistance, Voltage};

/// A per-test scratch path under the system temp directory.
fn temp_path(name: &str) -> String {
    std::env::temp_dir()
        .join(format!("mnsim_live_{}_{name}", std::process::id()))
        .to_string_lossy()
        .to_string()
}

fn fault_config(trials: usize) -> FaultConfig {
    FaultConfig {
        rates: FaultRates::stuck_at(0.02),
        trials,
        seed: 7,
        ..FaultConfig::default()
    }
}

/// The deterministic skeleton of one NDJSON line: the event tag plus its
/// count/total fields, with timestamps, rates, ETAs, paths, and the
/// timing-gated `sample`/`deadline_approaching` lines stripped.
fn skeleton(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            obs::parse_json(line).unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"))
        })
        .filter_map(|value| {
            let event = value
                .get("event")
                .and_then(|v| v.as_str())
                .expect("every line tags its event")
                .to_string();
            let field = |key: &str| {
                value
                    .get(key)
                    .and_then(|v| v.as_u64())
                    .unwrap_or_else(|| panic!("{event} lacks integer {key}"))
            };
            match event.as_str() {
                "campaign_started" => Some(format!(
                    "started {} {} {}",
                    value.get("campaign").and_then(|v| v.as_str()).unwrap_or(""),
                    field("total"),
                    field("resumed"),
                )),
                "wave_completed" => Some(format!("wave {} {}", field("done"), field("total"))),
                "checkpoint_written" => Some(format!("checkpoint {}", field("completed"))),
                "campaign_finished" => Some(format!(
                    "finished {} {} {}",
                    field("done"),
                    field("total"),
                    value.get("outcome").and_then(|v| v.as_str()).unwrap_or(""),
                )),
                // Samples and deadline projections are timing-dependent
                // and explicitly outside the determinism contract.
                "sample" | "deadline_approaching" => None,
                other => panic!("unexpected event tag {other:?}"),
            }
        })
        .collect()
}

fn run_campaign(threads: usize, trials: usize) -> Vec<String> {
    let session = obs::session();
    let live = live::session(LiveConfig::default()).expect("live session opens");
    let config = Config::fully_connected_mlp(&[64, 32]).expect("valid config");
    Simulator::new(config)
        .threads(threads)
        .faults(fault_config(trials))
        .run()
        .expect("campaign completes");
    let report = live.finish();
    drop(session);
    report.lines
}

/// Acceptance: event counts and contents are bit-stable across
/// threads ∈ {1, 2, 7}; every line parses with [`obs::parse_json`]; the
/// stream carries ETA and items/s fields on every wave event.
#[test]
fn event_stream_is_deterministic_across_thread_counts() {
    let trials = 24;
    let baseline = run_campaign(1, trials);
    let base_skeleton = skeleton(&baseline);

    // 24 trials at the live grain of ceil(24/8)=3 → exactly 8 waves, with
    // cumulative done counts 3, 6, …, 24, framed by started/finished.
    let mut expected = vec![format!("started fault_mc {trials} 0")];
    expected.extend((1..=8).map(|wave| format!("wave {} {trials}", wave * 3)));
    expected.push(format!("finished {trials} {trials} complete"));
    assert_eq!(base_skeleton, expected);

    // Every wave line carries numeric ETA and throughput.
    for line in baseline.iter().filter(|l| l.contains("wave_completed")) {
        let value = obs::parse_json(line).expect("wave line parses");
        assert!(
            value.get("eta_s").and_then(|v| v.as_f64()).is_some(),
            "{line}"
        );
        assert!(
            value
                .get("items_per_s")
                .and_then(|v| v.as_f64())
                .is_some(),
            "{line}"
        );
    }

    for threads in [2, 7] {
        let lines = run_campaign(threads, trials);
        assert_eq!(
            skeleton(&lines),
            base_skeleton,
            "event contents diverge at {threads} threads"
        );
    }
}

/// Acceptance: an interrupted (deadline-0) run still flushes a final
/// `campaign_finished` event — to the file sink, not just the in-memory
/// report, because each line is flushed as it is written.
#[test]
fn deadline_zero_run_flushes_final_event_to_sink() {
    let sink = temp_path("deadline.ndjson");
    let session = obs::session();
    let live = live::session(LiveConfig::default().to_path(&sink)).expect("live session opens");
    let config = Config::fully_connected_mlp(&[64, 32]).expect("valid config");
    let err = Simulator::new(config)
        .threads(2)
        .faults(fault_config(8))
        .deadline_ms(0)
        .run()
        .expect_err("an expired deadline interrupts the campaign");
    assert!(matches!(err, CoreError::DeadlineExceeded { .. }), "{err}");
    // Read the sink *before* finish(): the stream must already be on disk.
    let on_disk = std::fs::read_to_string(&sink).expect("sink exists mid-session");
    drop(live);
    drop(session);
    let _ = std::fs::remove_file(&sink);

    let lines: Vec<&str> = on_disk.lines().collect();
    assert!(!lines.is_empty(), "interrupted run wrote no events");
    for line in &lines {
        obs::parse_json(line).unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
    }
    let last = obs::parse_json(lines.last().expect("non-empty")).expect("final line parses");
    assert_eq!(
        last.get("event").and_then(|v| v.as_str()),
        Some("campaign_finished")
    );
    assert_eq!(
        last.get("outcome").and_then(|v| v.as_str()),
        Some("interrupted")
    );
    assert_eq!(last.get("done").and_then(|v| v.as_u64()), Some(0));
    assert_eq!(last.get("total").and_then(|v| v.as_u64()), Some(8));
}

/// Checkpointed campaigns emit one `checkpoint_written` per wave (the
/// checkpoint cadence *is* the wave grain), and a zero-period sampler
/// captures a counter time series exportable as NDJSON and CSV.
#[test]
fn checkpoint_events_match_waves_and_sampler_exports() {
    let ckpt = temp_path("ckpt.json");
    let _ = std::fs::remove_file(&ckpt);
    let session = obs::session();
    let live = live::session(
        LiveConfig::default().with_sample_period(std::time::Duration::ZERO),
    )
    .expect("live session opens");
    let config = Config::fully_connected_mlp(&[64, 32]).expect("valid config");
    Simulator::new(config)
        .threads(2)
        .faults(fault_config(8))
        .checkpoint(CheckpointPolicy::new(&ckpt).every(4))
        .run()
        .expect("campaign completes");
    let report = live.finish();
    drop(session);
    let _ = std::fs::remove_file(&ckpt);

    let events: Vec<String> = skeleton(&report.lines);
    // 8 trials at cadence 4 → 2 waves, each persisting then reporting.
    let expected = vec![
        "started fault_mc 8 0".to_string(),
        "checkpoint 4".to_string(),
        "wave 4 8".to_string(),
        "checkpoint 8".to_string(),
        "wave 8 8".to_string(),
        "finished 8 8 complete".to_string(),
    ];
    assert_eq!(events, expected);
    // The checkpoint events name the actual checkpoint path.
    for line in report.lines.iter().filter(|l| l.contains("checkpoint_written")) {
        let value = obs::parse_json(line).expect("checkpoint line parses");
        assert_eq!(value.get("path").and_then(|v| v.as_str()), Some(ckpt.as_str()));
    }

    // Zero-period sampling: at least one sample per emission, counter
    // deltas sum to the campaign's trial total, both exports well-formed.
    assert!(!report.samples.is_empty());
    let trials_sampled: u64 = report
        .samples
        .points
        .iter()
        .filter_map(|p| p.counters.get("core.fault.trials"))
        .sum();
    assert_eq!(trials_sampled, 8);
    for line in report.samples.to_ndjson().lines() {
        obs::parse_json(line).expect("sample NDJSON parses");
    }
    assert!(report.samples.to_csv().starts_with("t_s,kind,name,value\n"));
}

/// A solver health guard cutting a recovery rung short emits a
/// `guard_tripped` event naming the rung and the guard.
#[test]
fn guard_trip_emits_live_event() {
    // A series resistor ladder with an unreachable CG tolerance and a
    // tight stagnation window: the base rung stagnates, the guard hands
    // the ladder to the relaxed rung early.
    let mut c = Circuit::new();
    let top = c.add_node();
    c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(1.0))
        .expect("valid source");
    let mut prev = top;
    for _ in 0..40 {
        let next = c.add_node();
        c.add_resistor(prev, next, Resistance::from_kilo_ohms(1.0))
            .expect("valid resistor");
        prev = next;
    }
    c.add_resistor(prev, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
        .expect("valid resistor");
    let mut options = RobustOptions {
        base: SolveOptions {
            method: Method::Cg,
            ..SolveOptions::default()
        },
        ..RobustOptions::default()
    };
    options.base.cg = CgOptions {
        tolerance: 1e-30,
        stagnation_window: Some(3),
        ..CgOptions::default()
    };

    let session = obs::session();
    let live = live::session(LiveConfig::default()).expect("live session opens");
    solve_robust(&c, &options).expect("ladder recovers");
    let report = live.finish();
    drop(session);

    let guard_line = report
        .lines
        .iter()
        .find(|l| l.contains("guard_tripped"))
        .expect("stagnation guard emitted a live event");
    let value = obs::parse_json(guard_line).expect("guard line parses");
    assert_eq!(value.get("stage").and_then(|v| v.as_str()), Some("base"));
    assert_eq!(
        value.get("guard").and_then(|v| v.as_str()),
        Some("stagnated")
    );
}
