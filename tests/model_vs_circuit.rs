//! Integration of the behavior-level models with the circuit-level
//! substrate: the Fig.-5 fit criterion, netlist round-trips through the
//! generated SPICE text, and the crossbar worst-column claim.

use mnsim::circuit::netlist::from_netlist;
use mnsim::circuit::solve::{solve_dc, SolveOptions};
use mnsim::core::accuracy::{fit_wire_coefficient, measure_circuit_error_rate, Case};
use mnsim::core::config::Config;
use mnsim::core::netlist_gen::{generate_netlist, map_weights};
use mnsim::nn::data::random_weight_matrix;
use mnsim::tech::interconnect::InterconnectNode;
use mnsim::tech::units::Resistance;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn fig5_fit_meets_paper_criterion_on_two_nodes() {
    let config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    for node in [InterconnectNode::N28, InterconnectNode::N45] {
        let fit = fit_wire_coefficient(
            &config.device,
            node,
            config.sense_resistance,
            &[8, 16, 32, 64],
        )
        .unwrap();
        assert!(
            fit.rmse < 0.01,
            "{node}: RMSE {:.4} exceeds the paper's 0.01",
            fit.rmse
        );
        // The calibrated model generalizes to a size not in the fit set.
        let model = fit.model(config.sense_resistance);
        let predicted = model.signed_error_rate(48, 48, node, &config.device, Case::Worst);
        let measured =
            measure_circuit_error_rate(48, node, &config.device, config.sense_resistance)
                .unwrap();
        assert!(
            (predicted - measured).abs() < 0.03,
            "{node}: interpolation off by {:.3}",
            (predicted - measured).abs()
        );
    }
}

#[test]
fn generated_netlists_solve_to_physical_outputs() {
    let mut config = Config::fully_connected_mlp(&[16, 8]).unwrap();
    config.crossbar_size = 16;
    let mut rng = StdRng::seed_from_u64(99);
    let weights = random_weight_matrix(8, 16, &mut rng);
    let inputs: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();

    let text = generate_netlist(&config, &weights, &inputs, "integration").unwrap();
    // Two netlists (positive + negative); both parse and solve.
    let parts: Vec<&str> = text.split(".end").filter(|p| p.contains('\n') && p.contains('R')).collect();
    assert_eq!(parts.len(), 2, "expected positive + negative netlists");
    for part in parts {
        let netlist = format!("{part}.end\n");
        let circuit = from_netlist(&netlist).unwrap();
        let solution = solve_dc(&circuit, &SolveOptions::default()).unwrap();
        // All node voltages bounded by the read voltage.
        let v_read = config.device.v_read.volts();
        for &v in solution.voltages() {
            assert!(v >= -1e-9 && v <= v_read + 1e-9, "voltage {v} out of range");
        }
    }
}

#[test]
fn mapped_outputs_track_weight_magnitudes() {
    // A column with larger positive weights must produce a larger
    // positive-crossbar output than a column with zero weights.
    let mut config = Config::fully_connected_mlp(&[8, 2]).unwrap();
    config.crossbar_size = 8;
    let mut data = vec![0.0; 16];
    for d in data.iter_mut().take(8) {
        *d = 0.9; // output 0: strong weights
    }
    let weights = mnsim::nn::tensor::Tensor::from_vec(&[2, 8], data).unwrap();
    let mapped = map_weights(&config, &weights, &[1.0; 8]).unwrap();
    let built = mapped.positive.build().unwrap();
    let solution = solve_dc(built.circuit(), &SolveOptions::default()).unwrap();
    let outputs = built.output_voltages(&solution);
    assert!(
        outputs[0].volts() > 3.0 * outputs[1].volts(),
        "strong column {} vs zero column {}",
        outputs[0].volts(),
        outputs[1].volts()
    );
}

#[test]
fn worst_column_is_farthest_from_drivers() {
    // The paper's worst-case assumption, checked on the real circuit.
    let config = Config::fully_connected_mlp(&[32, 32]).unwrap();
    let spec = mnsim::circuit::crossbar::CrossbarSpec::uniform(
        32,
        32,
        config.device.r_min,
        config.interconnect.segment_resistance(),
        config.sense_resistance,
        config.device.v_read,
    );
    let built = spec.build().unwrap();
    let solution = solve_dc(built.circuit(), &SolveOptions::default()).unwrap();
    let outputs = built.output_voltages(&solution);
    let last = outputs.last().unwrap().volts();
    for (i, v) in outputs.iter().enumerate() {
        assert!(
            v.volts() >= last - 1e-12,
            "column {i} ({}) below the last column ({last})",
            v.volts()
        );
    }
}

#[test]
fn error_rate_magnitude_orders_by_interconnect() {
    let config = Config::fully_connected_mlp(&[32, 32]).unwrap();
    let rs = Resistance::from_ohms(10.0);
    let fine = measure_circuit_error_rate(32, InterconnectNode::N18, &config.device, rs).unwrap();
    let coarse =
        measure_circuit_error_rate(32, InterconnectNode::N90, &config.device, rs).unwrap();
    assert!(fine > coarse, "18 nm {fine} vs 90 nm {coarse}");
}
