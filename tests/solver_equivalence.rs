//! Solver-equivalence lockdown for the batched multi-RHS layer.
//!
//! Three contracts, each enforced here:
//!
//! 1. **Equivalence** — [`solve_dc_batch`] over a
//!    [`PreparedSystem`] produces the same node voltages as per-input
//!    [`solve_dc`] on a re-driven circuit: bit-identical with a cold start
//!    (the batch replays the exact serial assembly and arithmetic), and
//!    within `1e-12` relative tolerance with warm-started CG. Randomized
//!    over crossbar shapes, signed weights, every [`Method`], and batch
//!    sizes including one and zero.
//! 2. **Warm-start behavior** — on a correlated batch the warm-started CG
//!    iteration counts drop strictly below the cold counts (checked both
//!    through the per-solve counters on the prepared system and through
//!    the `circuit.batch.*` observability counters); on an adversarial
//!    orthogonal batch warm starts still converge within the
//!    [`CgOptions`] iteration caps.
//! 3. **Invalidation** — a prepared system built for one conductance state
//!    refuses to solve a circuit whose conductances changed: the typed
//!    [`CircuitError::StalePreparedSystem`] fires on the dense,
//!    sparse-direct, and CG paths alike, and [`prepare_or_reuse`] refreshes
//!    or rebuilds instead of ever reusing a stale factorization.
//! 4. **Dispatch** — under [`Method::Auto`] the engine choice is a pure
//!    function of structure size: dense below 96 unknowns, sparse-direct
//!    above, checked through [`PreparedSystem::engine_kind`].

use mnsim::circuit::batch::{
    prepare_or_reuse, solve_dc_batch, BatchOptions, EngineKind, PreparedSystem, Rhs, WarmStart,
};
use mnsim::circuit::cg::CgOptions;
use mnsim::circuit::crossbar::CrossbarSpec;
use mnsim::circuit::solve::{solve_dc, Method, SolveOptions};
use mnsim::circuit::CircuitError;
use mnsim::core::config::Config;
use mnsim::core::netlist_gen::{input_drive_voltages, map_weights};
use mnsim::nn::tensor::Tensor;
use mnsim::obs;
use mnsim::tech::memristor::IvModel;
use mnsim::tech::units::{Resistance, Voltage};
use proptest::prelude::*;

/// Deterministic xorshift uniform in `[0, 1)`.
fn uniform(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

fn method_for(index: u8) -> Method {
    match index % 4 {
        0 => Method::Auto,
        1 => Method::DenseLu,
        2 => Method::SparseLu,
        _ => Method::Cg,
    }
}

/// Maps a random signed weight matrix, drives it with `batch_size` random
/// input vectors, and compares per-input [`solve_dc`] against the batched
/// path under the given warm-start policy.
///
/// `rel_tol == 0.0` demands bitwise equality.
fn check_crossbar_equivalence(
    rows: usize,
    cols: usize,
    seed: u64,
    method: Method,
    batch_size: usize,
    warm_start: WarmStart,
    rel_tol: f64,
) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut config = Config::fully_connected_mlp(&[8, 8]).expect("static dims");
    config.crossbar_size = 8;
    // Ohmic cells keep the circuits linear, so the prepared system's cached
    // engines — not the Newton fallback — are what this test exercises.
    config.device.iv = IvModel::Linear;

    // Signed weights exercise both polarity crossbars of the dual mapping.
    let weights = Tensor::from_vec(
        &[cols, rows],
        (0..rows * cols)
            .map(|_| uniform(&mut state) * 2.0 - 1.0)
            .collect(),
    )
    .expect("shape matches data");
    let mapped = map_weights(&config, &weights, &vec![0.0; rows]).expect("fits one block");

    let inputs: Vec<Vec<f64>> = (0..batch_size)
        .map(|_| (0..rows).map(|_| uniform(&mut state)).collect())
        .collect();

    // Tight CG tolerance keeps even warm-vs-cold iterate differences far
    // below the 1e-12 equivalence bar; serial and batch use identical
    // options, so the cold comparison stays bitwise.
    let solve_options = SolveOptions {
        method,
        cg: CgOptions {
            tolerance: 1e-13,
            ..CgOptions::default()
        },
        ..SolveOptions::default()
    };

    let specs: Vec<&CrossbarSpec> = std::iter::once(&mapped.positive)
        .chain(mapped.negative.as_ref())
        .collect();
    for spec in specs {
        let built = spec.build().expect("valid crossbar");
        let batch: Vec<Rhs> = inputs
            .iter()
            .map(|x| {
                let drive = input_drive_voltages(&config, x);
                built.input_rhs(&drive).expect("arity matches")
            })
            .collect();

        let mut prepared = PreparedSystem::build(
            built.circuit(),
            BatchOptions {
                base: solve_options.clone(),
                warm_start,
            },
        )
        .expect("linear crossbar prepares");
        let batched =
            solve_dc_batch(&mut prepared, built.circuit(), &batch).expect("batch solves");
        assert_eq!(batched.len(), batch_size);

        for (k, x) in inputs.iter().enumerate() {
            let drive = input_drive_voltages(&config, x);
            let serial_circuit = built
                .circuit()
                .with_source_voltages(&drive)
                .expect("arity matches");
            let serial = solve_dc(&serial_circuit, &solve_options).expect("serial solves");
            let a = serial.voltages();
            let b = batched[k].voltages();
            assert_eq!(a.len(), b.len());
            for (node, (&va, &vb)) in a.iter().zip(b).enumerate() {
                if rel_tol == 0.0 {
                    assert_eq!(
                        va, vb,
                        "{rows}x{cols} seed {seed} {method:?} input {k} node {node}: \
                         cold batch must be bit-identical"
                    );
                } else {
                    let scale = va.abs().max(vb.abs()).max(1.0);
                    assert!(
                        (va - vb).abs() <= rel_tol * scale,
                        "{rows}x{cols} seed {seed} {method:?} input {k} node {node}: \
                         |{va} - {vb}| > {rel_tol} rel"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold-started batches replay the serial assembly exactly: bitwise
    /// equality, not approximate, for every method and batch size
    /// (including one and zero).
    #[test]
    fn cold_batch_is_bit_identical_to_serial(
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1_000_000,
        method_index in 0u8..4,
        batch_size in 0usize..5,
    ) {
        check_crossbar_equivalence(
            rows, cols, seed, method_for(method_index), batch_size, WarmStart::Cold, 0.0,
        );
    }

    /// Warm-started batches (the default policy) stay within 1e-12 of the
    /// serial solutions.
    #[test]
    fn warm_batch_matches_serial_to_1e12(
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1_000_000,
        method_index in 0u8..4,
        batch_size in 1usize..5,
    ) {
        check_crossbar_equivalence(
            rows, cols, seed, method_for(method_index), batch_size, WarmStart::Previous, 1e-12,
        );
    }

    /// The `Nearest` policy is solution-equivalent too — the guess choice
    /// only affects the iteration path, never where it converges.
    #[test]
    fn nearest_batch_matches_serial_to_1e12(
        rows in 1usize..7,
        cols in 1usize..7,
        seed in 0u64..1_000_000,
        batch_size in 1usize..5,
    ) {
        check_crossbar_equivalence(
            rows, cols, seed, Method::Cg, batch_size, WarmStart::Nearest, 1e-12,
        );
    }
}

/// A crossbar past the dense cutoff (`2·rows·cols = 200` unknowns): under
/// `Method::Auto` this now lands on the sparse-direct path, so the CG
/// behavior tests pin `Method::Cg` explicitly.
fn cg_path_crossbar() -> CrossbarSpec {
    CrossbarSpec::uniform(
        10,
        10,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(500.0),
        Voltage::from_volts(1.0),
    )
}

/// Smoothly varying input batches: the correlated case warm starts are
/// built for.
fn correlated_batch(xbar: &mnsim::circuit::CrossbarCircuit, entries: usize) -> Vec<Rhs> {
    let rows = xbar.spec().rows;
    (0..entries)
        .map(|k| {
            let drive: Vec<Voltage> = (0..rows)
                .map(|r| {
                    Voltage::from_volts(
                        0.5 + 0.4 * ((r as f64) / rows as f64 + 0.07 * k as f64).sin(),
                    )
                })
                .collect();
            xbar.input_rhs(&drive).expect("arity matches")
        })
        .collect()
}

#[test]
fn warm_start_iteration_counts_drop_below_cold_on_correlated_batch() {
    let session = obs::session();
    let built = cg_path_crossbar().build().unwrap();
    let batch = correlated_batch(&built, 6);

    let run = |warm_start: WarmStart| {
        let mut prepared = PreparedSystem::build(
            built.circuit(),
            BatchOptions {
                base: SolveOptions {
                    method: Method::Cg,
                    ..SolveOptions::default()
                },
                warm_start,
            },
        )
        .unwrap();
        assert!(prepared.uses_cg(), "pinned Method::Cg must take the CG path");
        solve_dc_batch(&mut prepared, built.circuit(), &batch).unwrap();
        prepared.last_cg_iterations().to_vec()
    };

    let cold = run(WarmStart::Cold);
    let before_warm = session.snapshot();
    let warm = run(WarmStart::Previous);
    let after_warm = session.snapshot();

    assert_eq!(cold.len(), batch.len());
    assert_eq!(warm.len(), batch.len());
    // The first solve has no history: identical work. Every later solve
    // starts near its neighbor and must converge in strictly fewer
    // iterations than from zero.
    assert_eq!(cold[0], warm[0]);
    for k in 1..batch.len() {
        assert!(
            warm[k] < cold[k],
            "solve {k}: warm {} !< cold {}",
            warm[k],
            cold[k]
        );
    }

    // The observability layer saw the same story: the warm run's recorded
    // iteration total matches the per-solve counters and stays below the
    // cold total.
    let warm_counter = after_warm.counter("circuit.batch.cg_iterations")
        - before_warm.counter("circuit.batch.cg_iterations");
    assert_eq!(warm_counter, warm.iter().sum::<usize>() as u64);
    assert!(warm_counter < cold.iter().sum::<usize>() as u64);
    let warm_starts = after_warm.counter("circuit.batch.warm_starts")
        - before_warm.counter("circuit.batch.warm_starts");
    assert_eq!(warm_starts, (batch.len() - 1) as u64);
}

#[test]
fn orthogonal_batch_converges_within_cg_caps() {
    // Adversarial case: every entry drives a different single word line, so
    // the previous solution is a poor guess. Warm starts must still land
    // inside the default CgOptions caps — never worse than cold except for
    // the bounded retry — and agree with the serial answers.
    let built = cg_path_crossbar().build().unwrap();
    let rows = built.spec().rows;
    let batch: Vec<Rhs> = (0..rows)
        .map(|active| {
            let drive: Vec<Voltage> = (0..rows)
                .map(|r| Voltage::from_volts(if r == active { 1.0 } else { 0.0 }))
                .collect();
            built.input_rhs(&drive).expect("arity matches")
        })
        .collect();

    let cg_options = SolveOptions {
        method: Method::Cg,
        ..SolveOptions::default()
    };
    for warm_start in [WarmStart::Previous, WarmStart::Nearest] {
        let mut prepared = PreparedSystem::build(
            built.circuit(),
            BatchOptions {
                base: cg_options.clone(),
                warm_start,
            },
        )
        .unwrap();
        let solutions = solve_dc_batch(&mut prepared, built.circuit(), &batch).unwrap();
        // Resolve the default cap against the system size (2·rows² unknowns).
        let cap = CgOptions::default().max_iterations.resolve(2 * rows * rows);
        for (k, &iterations) in prepared.last_cg_iterations().iter().enumerate() {
            assert!(
                iterations <= cap,
                "{warm_start:?} solve {k}: {iterations} iterations exceed the cap {cap}"
            );
        }
        // And the answers are still the serial answers.
        for (k, solution) in solutions.iter().enumerate() {
            let drive: Vec<Voltage> = (0..rows)
                .map(|r| Voltage::from_volts(if r == k { 1.0 } else { 0.0 }))
                .collect();
            let serial_circuit = built.circuit().with_source_voltages(&drive).unwrap();
            let serial = solve_dc(&serial_circuit, &cg_options).unwrap();
            for (&va, &vb) in serial.voltages().iter().zip(solution.voltages()) {
                // Both runs stop at the default 1e-10 residual tolerance
                // from different starting points, so the solutions agree to
                // tolerance × conditioning, not to machine precision.
                let scale = va.abs().max(vb.abs()).max(1.0);
                assert!((va - vb).abs() <= 1e-7 * scale, "solve {k}: {va} vs {vb}");
            }
        }
    }
}

/// Rebuilds the spec with one cell conductance changed — same topology,
/// different values, which is exactly the stale case fingerprinting must
/// catch.
fn perturbed(spec: &CrossbarSpec) -> CrossbarSpec {
    let mut changed = spec.clone();
    changed.states[0] = Resistance::from_ohms(changed.states[0].ohms() * 2.0);
    changed
}

#[test]
fn stale_prepared_system_is_a_typed_error_on_every_engine() {
    let dense_spec = CrossbarSpec::uniform(
        4,
        4,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(500.0),
        Voltage::from_volts(1.0),
    );
    let sparse_spec = cg_path_crossbar();
    let cg_options = BatchOptions {
        base: SolveOptions {
            method: Method::Cg,
            ..SolveOptions::default()
        },
        ..BatchOptions::default()
    };

    let cases = [
        (dense_spec, BatchOptions::default(), EngineKind::Dense),
        (
            sparse_spec.clone(),
            BatchOptions::default(),
            EngineKind::SparseDirect,
        ),
        (sparse_spec, cg_options, EngineKind::Iterative),
    ];
    for (spec, options, expect_engine) in cases {
        let built = spec.build().unwrap();
        let mut prepared = PreparedSystem::build(built.circuit(), options).unwrap();
        assert_eq!(prepared.engine_kind(), expect_engine);

        let changed = perturbed(&spec).build().unwrap();
        let rhs = changed
            .input_rhs(&vec![Voltage::from_volts(1.0); spec.rows])
            .unwrap();
        let result = solve_dc_batch(&mut prepared, changed.circuit(), std::slice::from_ref(&rhs));
        match result {
            Err(CircuitError::StalePreparedSystem { expected, actual }) => {
                assert_ne!(expected, actual);
                assert_eq!(expected, prepared.fingerprint());
            }
            other => panic!("expected StalePreparedSystem, got {other:?}"),
        }

        // Re-driving the *same* conductances is not staleness: only value
        // changes to the resistive network invalidate.
        let redriven = built
            .circuit()
            .with_source_voltages(&vec![Voltage::from_volts(0.25); spec.rows])
            .unwrap();
        assert!(prepared.matches(&redriven));
        assert!(solve_dc_batch(&mut prepared, &redriven, &[rhs]).is_ok());
    }
}

#[test]
fn prepare_or_reuse_never_solves_stale() {
    let spec = cg_path_crossbar();
    let options = BatchOptions::default();
    let mut slot: Option<PreparedSystem> = None;

    let built = spec.build().unwrap();
    let first_fingerprint = {
        let prepared = prepare_or_reuse(&mut slot, built.circuit(), &options).unwrap();
        prepared.fingerprint()
    };

    // Same circuit: the cached system is reused as-is.
    {
        let prepared = prepare_or_reuse(&mut slot, built.circuit(), &options).unwrap();
        assert_eq!(prepared.fingerprint(), first_fingerprint);
    }

    // Changed conductances with unchanged topology: the sparse engine is
    // refreshed in place (refactor), the fingerprint moves to the new
    // circuit, and — because refactoring replays the same pivot sequence —
    // the solve is still bit-identical to a fresh serial factorization.
    let changed = perturbed(&spec).build().unwrap();
    let prepared = prepare_or_reuse(&mut slot, changed.circuit(), &options).unwrap();
    assert_ne!(prepared.fingerprint(), first_fingerprint);
    let drive = vec![Voltage::from_volts(1.0); spec.rows];
    let rhs = changed.input_rhs(&drive).unwrap();
    let batched = prepared.solve(changed.circuit(), &rhs).unwrap();
    let serial = solve_dc(changed.circuit(), &SolveOptions::default()).unwrap();
    assert_eq!(serial.voltages(), batched.voltages());
}

/// The Auto dispatch is a pure function of structure size: the same spec
/// always lands on the same engine, and the dense→sparse cutoff sits at
/// 96 unknowns (`2·rows·cols` for a dual-rail crossbar).
#[test]
fn auto_dispatch_is_deterministic_in_structure_size() {
    let spec_for = |rows: usize, cols: usize| {
        CrossbarSpec::uniform(
            rows,
            cols,
            Resistance::from_kilo_ohms(10.0),
            Resistance::from_ohms(2.0),
            Resistance::from_ohms(500.0),
            Voltage::from_volts(1.0),
        )
    };
    // (rows, cols, expected engine): 6x6 → 72 unknowns (< 96, dense);
    // 6x8 → 96 unknowns (at the cutoff, sparse); 16x16 → 512 (sparse).
    let cases = [
        (6, 6, EngineKind::Dense),
        (6, 8, EngineKind::SparseDirect),
        (16, 16, EngineKind::SparseDirect),
    ];
    for (rows, cols, expected) in cases {
        // Build twice: the choice must be identical run-to-run.
        for _ in 0..2 {
            let built = spec_for(rows, cols).build().unwrap();
            let prepared =
                PreparedSystem::build(built.circuit(), BatchOptions::default()).unwrap();
            assert_eq!(
                prepared.engine_kind(),
                expected,
                "{rows}x{cols} crossbar dispatched to {:?}",
                prepared.engine_kind()
            );
        }
    }
}
