//! Golden regression suite for the reproduction's paper tables.
//!
//! Pins the numbers behind **Table II** (behavior-model vs circuit-level
//! validation of the 3-layer 128×128 network at 90 nm, plus the accuracy
//! comparison across crossbar sizes) and **Table IV** (per-metric optimal
//! designs of the 2048×1024 bank sweep under the 25 % error constraint).
//!
//! ## Tolerances
//!
//! Every pipeline these goldens exercise is deterministic: seeded RNG,
//! fixed-iteration-order solvers, serial reductions. The Table II rows now
//! run through the batched `PreparedSystem` path in `validate` (one
//! assembly per weight matrix, re-driven per input); the golden values
//! below predate that change and were deliberately *not* regenerated — the
//! suite passing is the proof that batching left the deviation numbers
//! intact. The golden values are
//! still compared with a relative tolerance of `1e-6` (absolute `1e-9`
//! near zero) rather than bitwise, so the suite survives cross-platform
//! `libm` rounding differences while catching any physical-model change,
//! which moves these values by orders of magnitude more.
//!
//! To regenerate after an *intentional* model change, run
//! `cargo test --test paper_tables -- --ignored --nocapture` and paste the
//! printed constants.

use mnsim::core::config::Config;
use mnsim::core::dse::{explore, Constraints, DesignPoint, DesignSpace, DseResult, Objective};
use mnsim::core::validate::{validate_against_circuit, ValidationRow};
use mnsim::nn::models;
use mnsim::tech::cmos::CmosNode;

/// Relative tolerance of all golden comparisons (see module docs).
const REL_TOL: f64 = 1e-6;

fn assert_close(actual: f64, golden: f64, what: &str) {
    let scale = golden.abs().max(1e-3);
    assert!(
        (actual - golden).abs() <= REL_TOL * scale,
        "{what}: got {actual:.9}, golden {golden:.9}"
    );
}

// ---------------------------------------------------------------------------
// Table II — model vs circuit validation
// ---------------------------------------------------------------------------

/// The paper's Table II setup: 3-layer fully-connected NN with two
/// 128×128 layers at 90 nm (same as `mnsim-bench`'s `table2_config`).
fn table2_config() -> Config {
    let mut config = Config::for_network(models::mlp(&[128, 128, 128]).expect("static dims"));
    config.cmos = CmosNode::N90;
    config.crossbar_size = 128;
    config
}

/// Sample counts and seed of the pinned Table II run. One weight sample ×
/// two inputs keeps the debug-mode circuit solves interactive; the values
/// are pinned for exactly these counts.
const TABLE2_SAMPLES: (usize, usize, u64) = (1, 2, 20160318);

/// Golden `(metric, mnsim, circuit, max |relative error|)` rows of
/// Table II.
///
/// The pinned error ceilings record where this reproduction stands today:
/// the read-power and settle-latency rows meet the paper's 10 % claim;
/// the computation-power and accuracy rows do not at these interactive
/// sample counts (the model is pessimistic on wire drops), which the
/// ceilings make explicit instead of hiding.
const TABLE2_GOLDEN: [(&str, f64, f64, f64); 5] = [
    ("computation power (avg-case assumption)", 109.472727310, 87.450647333, 0.28),
    ("computation power (random weights)", 109.472727310, 69.325457579, 0.64),
    ("read power (single cell)", 0.250250000, 0.247107885, 0.10),
    ("crossbar settle latency", 0.006225390, 0.005851867, 0.10),
    ("average relative accuracy", 9.443112333, 12.395246667, 0.26),
];

fn table2_rows() -> &'static [ValidationRow] {
    static ROWS: std::sync::OnceLock<Vec<ValidationRow>> = std::sync::OnceLock::new();
    ROWS.get_or_init(|| {
        let (matrices, inputs, seed) = TABLE2_SAMPLES;
        validate_against_circuit(&table2_config(), matrices, inputs, seed).unwrap()
    })
}

#[test]
fn table2_validation_rows_match_golden() {
    let rows = table2_rows();
    assert_eq!(rows.len(), TABLE2_GOLDEN.len());
    for (row, &(metric, mnsim, circuit, max_error)) in rows.iter().zip(&TABLE2_GOLDEN) {
        assert_eq!(row.metric, metric);
        assert_close(row.mnsim, mnsim, &format!("{metric}: mnsim"));
        assert_close(row.circuit, circuit, &format!("{metric}: circuit"));
        assert!(
            row.relative_error().abs() < max_error,
            "{metric}: model-vs-circuit error {:.2} % breaches its pinned {:.0} % ceiling",
            row.relative_error() * 100.0,
            max_error * 100.0
        );
    }
}

/// Golden `(size, mnsim %, circuit %)` accuracy rows across crossbar
/// sizes (Table II's accuracy row swept over the array size; the 128 case
/// is covered by [`TABLE2_GOLDEN`] itself).
const TABLE2_ACCURACY_BY_SIZE: [(usize, f64, f64); 3] =
    [
    (16, 86.870393534, 89.790156586),
    (32, 52.992395735, 60.828581878),
    (64, 24.144444206, 29.038665996),
];

fn accuracy_row_for_size(size: usize) -> ValidationRow {
    let mut config = table2_config();
    config.crossbar_size = size;
    let (matrices, inputs, seed) = TABLE2_SAMPLES;
    let rows = validate_against_circuit(&config, matrices, inputs, seed).unwrap();
    rows.into_iter()
        .find(|r| r.metric == "average relative accuracy")
        .expect("accuracy row present")
}

/// The Table II validation runs through the sparse-direct circuit path
/// (a 32×32 block is 2048 unknowns — far past the dense cutoff), and the
/// per-matrix studies fan out over worker threads. Refactored sparse
/// solves replay the cached pivot order bit-for-bit, and partial sums are
/// reduced in matrix order, so every thread count must reproduce the
/// size-32 golden accuracy row *bitwise* — not just to tolerance.
#[test]
fn table2_rows_are_bit_identical_across_thread_counts() {
    use mnsim::core::exec::ExecOptions;
    use mnsim::core::validate::validate_against_circuit_with;

    let mut config = table2_config();
    config.crossbar_size = 32;
    let (matrices, inputs, seed) = TABLE2_SAMPLES;
    let rows_at = |threads: usize| {
        validate_against_circuit_with(
            &config,
            matrices,
            inputs,
            seed,
            &ExecOptions::with_threads(threads),
        )
        .unwrap()
    };

    let reference = rows_at(1);
    let accuracy = reference
        .iter()
        .find(|r| r.metric == "average relative accuracy")
        .expect("accuracy row present");
    let golden = TABLE2_ACCURACY_BY_SIZE
        .iter()
        .find(|&&(size, _, _)| size == 32)
        .expect("size-32 golden row");
    assert_close(accuracy.mnsim, golden.1, "size 32 threads 1: mnsim accuracy");
    assert_close(accuracy.circuit, golden.2, "size 32 threads 1: circuit accuracy");

    for threads in [2usize, 7] {
        assert_eq!(
            rows_at(threads),
            reference,
            "{threads}-thread validation drifted from the serial rows"
        );
    }
}

#[test]
fn table2_accuracy_error_per_crossbar_size_matches_golden() {
    for &(size, mnsim, circuit) in &TABLE2_ACCURACY_BY_SIZE {
        let row = accuracy_row_for_size(size);
        assert_close(row.mnsim, mnsim, &format!("size {size}: mnsim accuracy"));
        assert_close(row.circuit, circuit, &format!("size {size}: circuit accuracy"));
        // The model consistently under-predicts accuracy (pessimistic on
        // wire drops); pin that direction so a sign flip is caught.
        assert!(
            row.mnsim < row.circuit,
            "size {size}: model stopped being pessimistic"
        );
    }
}

// ---------------------------------------------------------------------------
// Table IV — large-bank DSE optima
// ---------------------------------------------------------------------------

/// The paper's §VII.C large-computation-bank setup (same as
/// `mnsim-bench`'s `large_bank_config`).
fn large_bank_config() -> Config {
    let mut config = Config::for_network(models::large_bank_layer());
    config.cmos = CmosNode::N45;
    config.precision = mnsim::core::config::Precision {
        input_bits: 8,
        weight_bits: 4,
        output_bits: 8,
    };
    config.device.bits_per_cell = 7;
    config
}

/// One golden Table IV column: the design chosen for an objective and its
/// headline metrics.
struct GoldenOptimum {
    objective: Objective,
    crossbar_size: usize,
    parallelism: usize,
    interconnect_nm: u32,
    area_mm2: f64,
    energy_uj: f64,
    latency_us: f64,
    output_error_pct: f64,
}

const TABLE4_GOLDEN: [GoldenOptimum; 4] = [
    GoldenOptimum {
        objective: Objective::Area,
        crossbar_size: 1024,
        parallelism: 1,
        interconnect_nm: 36,
        area_mm2: 0.717717548,
        energy_uj: 20.178271635,
        latency_us: 10.839452085,
        output_error_pct: 24.705882353,
    },
    GoldenOptimum {
        objective: Objective::Energy,
        crossbar_size: 1024,
        parallelism: 128,
        interconnect_nm: 36,
        area_mm2: 2.671697636,
        energy_uj: 0.197534271,
        latency_us: 0.171452085,
        output_error_pct: 24.705882353,
    },
    GoldenOptimum {
        objective: Objective::Latency,
        crossbar_size: 128,
        parallelism: 128,
        interconnect_nm: 45,
        area_mm2: 129.778518300,
        energy_uj: 0.842421354,
        latency_us: 0.095172819,
        output_error_pct: 13.725490196,
    },
    GoldenOptimum {
        objective: Objective::Accuracy,
        crossbar_size: 8,
        parallelism: 1,
        interconnect_nm: 18,
        area_mm2: 306.276331548,
        energy_uj: 29.790796434,
        latency_us: 0.170898819,
        output_error_pct: 1.176470588,
    },
];

/// Runs the full paper sweep serially (deterministic traversal order).
fn table4_result() -> DseResult {
    explore(
        &large_bank_config(),
        &DesignSpace::paper_large_bank(),
        &Constraints::crossbar_error(0.25),
    )
    .unwrap()
}

/// Table IV picks the accuracy column with area as the secondary target.
fn optimum_for(result: &DseResult, objective: Objective) -> &DesignPoint {
    if objective == Objective::Accuracy {
        result
            .best_with_secondary(Objective::Accuracy, Objective::Area)
            .expect("feasible set non-empty")
    } else {
        result.best(objective).expect("feasible set non-empty")
    }
}

#[test]
fn table4_per_metric_optima_match_golden() {
    let result = table4_result();
    for golden in &TABLE4_GOLDEN {
        let best = optimum_for(&result, golden.objective);
        let what = format!("optimum for {}", golden.objective);
        assert_eq!(best.crossbar_size, golden.crossbar_size, "{what}");
        assert_eq!(best.parallelism, golden.parallelism, "{what}");
        assert_eq!(best.interconnect.nanometers(), golden.interconnect_nm, "{what}");
        assert_close(
            best.report.total_area.square_millimeters(),
            golden.area_mm2,
            &format!("{what}: area"),
        );
        assert_close(
            best.report.energy_per_sample.microjoules(),
            golden.energy_uj,
            &format!("{what}: energy"),
        );
        assert_close(
            best.report.sample_latency.microseconds(),
            golden.latency_us,
            &format!("{what}: latency"),
        );
        assert_close(
            best.report.output_max_error_rate * 100.0,
            golden.output_error_pct,
            &format!("{what}: output error"),
        );
        // The constraint that defined the sweep must hold for the winner.
        assert!(best.report.worst_crossbar_epsilon <= 0.25);
    }
}

#[test]
fn table4_sweep_shape_is_stable() {
    let result = table4_result();
    // The golden feasible-set shape: any change here means the design
    // space or the constraint model moved.
    assert_eq!(result.evaluated, 285);
    assert_eq!(result.feasible.len(), 169);
}

// ---------------------------------------------------------------------------
// Regeneration helper
// ---------------------------------------------------------------------------

/// Prints the current values in paste-ready form. Run with
/// `cargo test --test paper_tables -- --ignored --nocapture`.
#[test]
#[ignore = "regeneration helper, not a check"]
fn print_current_values() {
    println!("const TABLE2_GOLDEN: [(&str, f64, f64, f64); 5] = [");
    for row in table2_rows() {
        println!(
            "    (\"{}\", {:.9}, {:.9}, {:.2}),  // observed error {:+.2} %",
            row.metric,
            row.mnsim,
            row.circuit,
            (row.relative_error().abs() * 1.1).max(0.10),
            row.relative_error() * 100.0
        );
    }
    println!("];");

    println!("const TABLE2_ACCURACY_BY_SIZE: [(usize, f64, f64); 3] = [");
    for size in [16usize, 32, 64] {
        let row = accuracy_row_for_size(size);
        println!("    ({size}, {:.9}, {:.9}),", row.mnsim, row.circuit);
    }
    println!("];");

    let result = table4_result();
    println!(
        "// evaluated: {}, feasible: {}",
        result.evaluated,
        result.feasible.len()
    );
    for objective in Objective::TABLE_COLUMNS {
        let best = optimum_for(&result, objective);
        println!(
            "GoldenOptimum {{ objective: Objective::{objective:?}, crossbar_size: {}, parallelism: {}, interconnect_nm: {}, area_mm2: {:.9}, energy_uj: {:.9}, latency_us: {:.9}, output_error_pct: {:.9} }},",
            best.crossbar_size,
            best.parallelism,
            best.interconnect.nanometers(),
            best.report.total_area.square_millimeters(),
            best.report.energy_per_sample.microjoules(),
            best.report.sample_latency.microseconds(),
            best.report.output_max_error_rate * 100.0,
        );
    }
}
