//! Trace-subsystem integration tests: tree integrity under parallelism,
//! golden Chrome-trace export, and module-attribution consistency with
//! the performance report.
//!
//! Every test opens a [`mnsim::obs::trace::session`], which serializes
//! the tests on the global trace lock so no test records into another
//! test's sink.

use std::collections::{BTreeMap, BTreeSet};

use mnsim::core::config::Config;
use mnsim::core::exec::ExecOptions;
use mnsim::core::fault_sim::{simulate_with_faults_with, FaultConfig};
use mnsim::core::simulate::simulate;
use mnsim::obs::trace::{self, EventKind};
use mnsim::obs::validate_chrome_trace;
use mnsim::tech::fault::FaultRates;

/// One reconstructed span with its same-lane child time, built by
/// replaying the per-lane begin/end stacks.
struct LaneSpan {
    lane: u64,
    total_ns: u64,
    same_lane_children_ns: u64,
    top_level: bool,
}

/// Replays `events` per lane and returns every closed span, its
/// duration, and how much of that duration was covered by *direct*
/// children opened on the same lane. Panics on malformed traces (an
/// `End` without a matching open `Begin` on its lane).
fn replay_lanes(events: &[trace::Event]) -> BTreeMap<u64, LaneSpan> {
    let mut stacks: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut begins: BTreeMap<u64, (u64, u64, bool)> = BTreeMap::new(); // id -> (lane, t, top)
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    let mut spans: BTreeMap<u64, LaneSpan> = BTreeMap::new();
    for event in events {
        match event.kind {
            EventKind::Begin => {
                let stack = stacks.entry(event.lane).or_default();
                begins.insert(event.id, (event.lane, event.t_ns, stack.is_empty()));
                stack.push(event.id);
            }
            EventKind::End => {
                let (lane, begin_ns, top_level) = begins
                    .remove(&event.id)
                    .unwrap_or_else(|| panic!("end without begin: {}", event.label()));
                assert_eq!(lane, event.lane, "{} ended on a different lane", event.label());
                let stack = stacks.get_mut(&lane).expect("lane has a stack");
                assert_eq!(stack.pop(), Some(event.id), "per-lane LIFO discipline");
                let total_ns = event.t_ns - begin_ns;
                if let Some(&parent) = stack.last() {
                    *child_time.entry(parent).or_insert(0) += total_ns;
                }
                spans.insert(
                    event.id,
                    LaneSpan {
                        lane,
                        total_ns,
                        same_lane_children_ns: child_time.remove(&event.id).unwrap_or(0),
                        top_level,
                    },
                );
            }
            _ => {}
        }
    }
    assert!(begins.is_empty(), "every begin must be closed by an end");
    spans
}

fn assert_close(a: f64, b: f64, rel: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    assert!(
        (a - b).abs() <= rel * scale,
        "{what}: {a} vs {b} (rel err {})",
        (a - b).abs() / scale
    );
}

/// Satellite: trace-tree integrity under parallelism. For every thread
/// count the begin/end events must pair up, parents must temporally
/// enclose their children, and self-times must telescope: per lane, the
/// self-time of all spans sums to the run time of the lane's top-level
/// spans (exactly, in integer nanoseconds). In the serial case the
/// per-level self-time sum equals the root span duration.
#[test]
fn fault_campaign_trace_tree_is_well_formed_across_thread_counts() {
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    for threads in [1usize, 2, 7] {
        let fault_config = FaultConfig {
            rates: FaultRates::stuck_at(0.02),
            trials: 8,
            ..FaultConfig::default()
        };
        let session = trace::session();
        simulate_with_faults_with(&config, &fault_config, &ExecOptions::with_threads(threads))
            .unwrap();
        let collected = session.finish();
        assert_eq!(collected.dropped, 0, "threads={threads}: events dropped");

        // Begin/end pairing and per-lane stack discipline.
        let spans = replay_lanes(&collected.events);

        // Structural parenting: exactly `trials` trial spans, all
        // children of the single campaign root.
        let campaign: Vec<&trace::Event> = collected
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == "fault.campaign")
            .collect();
        assert_eq!(campaign.len(), 1, "threads={threads}");
        let campaign_id = campaign[0].id;
        let trials: Vec<&trace::Event> = collected
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == "fault.trial")
            .collect();
        assert_eq!(trials.len(), fault_config.trials, "threads={threads}");
        for trial in &trials {
            assert_eq!(trial.parent, campaign_id, "threads={threads}");
        }
        if threads > 1 {
            let lanes: BTreeSet<u64> = trials.iter().map(|e| e.lane).collect();
            assert!(lanes.len() > 1, "threads={threads}: trials share one lane");
        }

        // Temporal enclosure: a parent's interval contains each child's.
        let mut intervals: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for event in &collected.events {
            match event.kind {
                EventKind::Begin => {
                    intervals.insert(event.id, (event.t_ns, u64::MAX));
                }
                EventKind::End => {
                    if let Some(iv) = intervals.get_mut(&event.id) {
                        iv.1 = event.t_ns;
                    }
                }
                _ => {}
            }
        }
        for event in &collected.events {
            if event.kind != EventKind::Begin || event.parent == 0 {
                continue;
            }
            let child = intervals[&event.id];
            let parent = intervals[&event.parent];
            assert!(
                parent.0 <= child.0 && child.1 <= parent.1,
                "threads={threads}: {} not enclosed by its parent",
                event.label()
            );
        }

        // Per-lane telescoping: self-times sum exactly to the lane's
        // top-level run time.
        let mut lane_self: BTreeMap<u64, u64> = BTreeMap::new();
        let mut lane_top: BTreeMap<u64, u64> = BTreeMap::new();
        for span in spans.values() {
            *lane_self.entry(span.lane).or_insert(0) +=
                span.total_ns - span.same_lane_children_ns;
            if span.top_level {
                *lane_top.entry(span.lane).or_insert(0) += span.total_ns;
            }
        }
        assert_eq!(lane_self, lane_top, "threads={threads}: self-times must telescope");

        // Serial case: the per-level self-time aggregate equals the root
        // span duration (everything nests under the campaign span).
        if threads == 1 {
            let summary = collected.summary();
            let self_sum: u64 = summary.levels.values().map(|l| l.self_ns).sum();
            assert_eq!(self_sum, summary.root_ns, "per-level self-time vs root");
        }
    }
}

/// Blots out every `"ts":<number>` so only the timestamp payloads — the
/// single nondeterministic part of the export — are excluded from the
/// byte comparison.
fn scrub_timestamps(chrome: &str) -> String {
    let mut out = String::with_capacity(chrome.len());
    let mut rest = chrome;
    while let Some(pos) = rest.find("\"ts\":") {
        let after = pos + "\"ts\":".len();
        out.push_str(&rest[..after]);
        out.push('0');
        let tail = &rest[after..];
        let skip = tail
            .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .unwrap_or(tail.len());
        rest = &tail[skip..];
    }
    out.push_str(rest);
    out
}

/// Satellite: golden Chrome-trace export. A tiny fixed simulation must
/// produce a byte-identical export (modulo timestamps) against the
/// checked-in fixture, and the export must pass the bundled validator
/// with at least four hierarchy levels. Regenerate the fixture with
/// `MNSIM_BLESS=1 cargo test --test trace`.
#[test]
fn golden_chrome_trace_export_is_byte_stable() {
    let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
    let session = trace::session();
    simulate(&config).unwrap();
    let collected = session.finish();
    assert_eq!(collected.dropped, 0);

    let chrome = collected.to_chrome_json();
    validate_chrome_trace(&chrome).expect("export passes the Chrome-trace validator");

    // ≥ 4 hierarchy levels present in the export categories.
    for cat in ["run", "layer", "bank", "unit", "module"] {
        assert!(
            chrome.contains(&format!("\"cat\":\"{cat}\"")),
            "export misses hierarchy level {cat}"
        );
    }

    let scrubbed = scrub_timestamps(&chrome);
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/golden_trace.chrome.json"
    );
    if std::env::var_os("MNSIM_BLESS").is_some() {
        std::fs::write(fixture_path, &scrubbed).unwrap();
        return;
    }
    let fixture = std::fs::read_to_string(fixture_path)
        .expect("fixture missing; regenerate with MNSIM_BLESS=1 cargo test --test trace");
    assert_eq!(
        scrubbed, fixture,
        "Chrome-trace export changed; regenerate the fixture with \
         MNSIM_BLESS=1 cargo test --test trace if the change is intended"
    );
}

/// The per-module time attribution in the trace summary must agree with
/// the `ModulePerf` records the report is built from: the compute-unit
/// modules sum to the unit MVM latency and all modules together sum to
/// the bank cycle latencies.
#[test]
fn traced_simulate_module_times_match_module_perf() {
    let config = Config::fully_connected_mlp(&[128, 64, 32]).unwrap();
    let session = trace::session();
    let report = simulate(&config).unwrap();
    let collected = session.finish();
    let summary = collected.summary();

    // Every hierarchy level is populated (run → layer → bank → unit, plus
    // the pipeline stages).
    for level in ["run", "stage", "layer", "bank", "unit"] {
        assert!(
            summary.levels.contains_key(level),
            "summary misses level {level}: {:?}",
            summary.levels.keys().collect::<Vec<_>>()
        );
    }
    let banks = report.accelerator.banks.len();
    assert_eq!(summary.levels["bank"].spans, banks as u64);
    assert_eq!(summary.levels["layer"].spans, banks as u64);

    // Unit modules (DAC, crossbar, ADC, accumulator, digital) decompose
    // the unit MVM latency.
    let module_time = |name: &str| summary.modules.get(name).map_or(0.0, |m| m.time_s);
    let unit_modules = ["dac", "crossbar", "adc", "accumulator", "digital"];
    let unit_sum: f64 = unit_modules.iter().map(|m| module_time(m)).sum();
    let mvm_sum: f64 = report
        .accelerator
        .banks
        .iter()
        .map(|b| b.unit.mvm.latency.seconds())
        .sum();
    assert_close(unit_sum, mvm_sum, 1e-9, "unit modules vs MVM latency");

    // All modules together decompose the bank cycle latency.
    let all_sum: f64 = summary.modules.values().map(|m| m.time_s).sum();
    let cycle_sum: f64 = report
        .accelerator
        .banks
        .iter()
        .map(|b| b.cycle.latency.seconds())
        .sum();
    assert_close(all_sum, cycle_sum, 1e-9, "all modules vs cycle latency");

    // Module energies are recorded (some modules legitimately model zero
    // dynamic energy, so only the aggregate must be positive).
    let total_energy: f64 = summary.modules.values().map(|m| m.energy_j).sum();
    assert!(total_energy > 0.0, "no module energy recorded");
    for (name, module) in &summary.modules {
        assert!(module.energy_j >= 0.0, "module {name} has negative energy");
        assert_eq!(module.samples, banks as u64, "module {name} sample count");
    }

    // The folded-stacks export sees the same hierarchy.
    let folded = collected.to_folded();
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("simulate;accelerator;layer[0];bank;unit ")),
        "folded stacks miss the run→layer→bank→unit path:\n{folded}"
    );
}
