//! Failure-injection tests: every layer must fail loudly and typed, never
//! silently produce garbage.

use mnsim::circuit::cg::{solve_cg, CgOptions, IterationCap};
use mnsim::circuit::sparse::TripletMatrix;
use mnsim::circuit::solve::{solve_dc, SolveOptions};
use mnsim::circuit::{Circuit, CircuitError};
use mnsim::core::config::Config;
use mnsim::core::dse::{explore, Constraints, DesignSpace};
use mnsim::core::error::CoreError;
use mnsim::core::simulate::simulate;
use mnsim::tech::memristor::IvModel;
use mnsim::tech::units::{Resistance, Voltage};

#[test]
fn floating_node_reports_singular_system() {
    // A node connected only through a capacitor is floating at DC.
    let mut c = Circuit::new();
    let a = c.add_node();
    let floating = c.add_node();
    c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(100.0))
        .unwrap();
    c.add_capacitor(
        floating,
        Circuit::GROUND,
        mnsim::tech::units::Capacitance::from_picofarads(1.0),
    )
    .unwrap();
    // The floating node has a zero row → singular.
    let result = solve_dc(&c, &SolveOptions::default());
    assert!(
        matches!(result, Err(CircuitError::SingularSystem { .. })),
        "{result:?}"
    );
}

#[test]
fn newton_budget_exhaustion_is_typed() {
    let mut c = Circuit::new();
    let a = c.add_node();
    c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    c.add_memristor(
        a,
        Circuit::GROUND,
        Resistance::from_kilo_ohms(1.0),
        IvModel::Sinh { alpha: 3.0 },
    )
    .unwrap();
    let options = SolveOptions {
        newton_max_iterations: 0,
        ..SolveOptions::default()
    };
    assert!(matches!(
        solve_dc(&c, &options),
        Err(CircuitError::NewtonNoConvergence { .. })
    ));
}

#[test]
fn cg_iteration_starvation_is_typed() {
    let mut t = TripletMatrix::new(50, 50);
    for i in 0..50 {
        t.add(i, i, 2.0);
        if i > 0 {
            t.add(i, i - 1, -1.0);
            t.add(i - 1, i, -1.0);
        }
    }
    let options = CgOptions {
        tolerance: 1e-14,
        // The deprecated numeric form still converts (0 would mean auto).
        max_iterations: 1.into(),
        ..CgOptions::default()
    };
    assert!(matches!(
        solve_cg(&t.to_csr(), &[1.0; 50], &options),
        Err(CircuitError::LinearNoConvergence { .. })
    ));
}

#[test]
fn over_constrained_dse_is_typed() {
    let base = Config::fully_connected_mlp(&[256, 256]).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![128],
        parallelism_degrees: vec![1],
        interconnects: vec![mnsim::tech::interconnect::InterconnectNode::N18],
    };
    // Impossible: area below a square millimetre AND error near zero.
    let constraints = Constraints {
        max_crossbar_error: Some(1e-6),
        max_area_mm2: Some(0.0001),
        max_power_w: None,
    };
    assert!(matches!(
        explore(&base, &space, &constraints),
        Err(CoreError::EmptyDesignSpace { .. })
    ));
}

#[test]
fn broken_device_is_rejected_before_simulation() {
    let mut config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    config.device.r_min = Resistance::from_ohms(-5.0);
    // Device-model problems surface through the unified validation pass,
    // typed against the Table-I field that selects the device.
    match simulate(&config) {
        Err(CoreError::Config { errors }) => {
            assert!(
                errors.iter().any(|e| e.field_path == "Memristor_Model"),
                "{errors:?}"
            );
        }
        other => panic!("expected a validation error, got {other:?}"),
    }
}

#[test]
fn error_chain_preserves_sources() {
    use std::error::Error as _;
    let mut config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    config.device.sigma = 0.9; // out of the 0..=0.3 range
    let err = simulate(&config).unwrap_err();
    // Displayable, with a source chain reaching the tech layer.
    assert!(err.to_string().contains("sigma"));
    assert!(err.source().is_some());
}

#[test]
fn program_against_wrong_network_is_typed() {
    use mnsim::core::instruction::{execute, Instruction, Program};
    let config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    let report = simulate(&config).unwrap();
    let mut program = Program::new();
    program.push(Instruction::Write { bank: 3 });
    assert!(matches!(
        execute(&report, &program),
        Err(CoreError::InvalidConfig { .. })
    ));
}

#[test]
fn transient_mis_windows_are_typed() {
    use mnsim::circuit::transient::{solve_transient, TransientOptions};
    use mnsim::tech::units::Time;
    let mut c = Circuit::new();
    let a = c.add_node();
    c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(1.0))
        .unwrap();
    let options = TransientOptions {
        t_stop: Time::from_nanoseconds(1.0),
        dt: Time::from_nanoseconds(0.0),
        dc: SolveOptions::default(),
        newton_steps_per_dt: 1,
    };
    assert!(solve_transient(&c, &options).is_err());
}

// ---------------------------------------------------------------------------
// Fault injection + recovery ladder
// ---------------------------------------------------------------------------

#[test]
fn stuck_cells_and_broken_bitline_simulate_end_to_end() {
    use mnsim::circuit::crossbar::CrossbarSpec;
    use mnsim::circuit::{solve_robust, RobustOptions};
    use mnsim::tech::fault::{FaultMap, FaultRates};

    // The issue's acceptance scenario: 5 % stuck-at cells plus one broken
    // bitline must solve end-to-end, never panic, and report any fallback.
    let mut map = FaultMap::generate(16, 16, &FaultRates::stuck_at(0.05), 0xFA_17).unwrap();
    map.broken_bitlines.insert(3, 1);
    let spec = CrossbarSpec::uniform(
        16,
        16,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.5),
        Resistance::from_ohms(10.0),
        Voltage::from_volts(0.3),
    )
    .with_faults(map, Resistance::from_mega_ohms(1.0), Resistance::from_ohms(500.0));
    let built = spec.build().unwrap();
    let (solution, report) = solve_robust(built.circuit(), &RobustOptions::default()).unwrap();
    assert!(solution.voltages().iter().all(|v| v.is_finite()));
    assert!(report.kcl_residual.is_finite());
    // Whatever rung answered, the report must account for every attempt.
    assert_eq!(report.attempts.last().unwrap().stage, report.stage);
}

#[test]
fn recovery_ladder_reports_fallback_through_facade() {
    use mnsim::circuit::cg::CgOptions;
    use mnsim::circuit::solve::Method;
    use mnsim::circuit::{solve_robust, RecoveryStage, RobustOptions};

    // A resistor ladder with enough unknowns that a one-iteration CG
    // budget cannot converge (CG needs up to n steps on n unknowns).
    let mut c = Circuit::new();
    let top = c.add_node();
    c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    let mut prev = top;
    let mut mid = top;
    for step in 0..40 {
        let next = c.add_node();
        c.add_resistor(prev, next, Resistance::from_kilo_ohms(1.0))
            .unwrap();
        if step == 19 {
            mid = next;
        }
        prev = next;
    }
    c.add_resistor(prev, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
        .unwrap();

    // A base solver that cannot converge forces the ladder to escalate.
    let options = RobustOptions {
        base: SolveOptions {
            method: Method::Cg,
            cg: CgOptions {
                tolerance: 1e-15,
                max_iterations: IterationCap::Limit(1),
                ..CgOptions::default()
            },
            ..SolveOptions::default()
        },
        ..RobustOptions::default()
    };
    let (solution, report) = solve_robust(&c, &options).unwrap();
    assert!(report.fallback_fired());
    assert_ne!(report.stage, RecoveryStage::Base);
    assert!(report.attempts[0].error.is_some(), "{report:?}");
    // Voltage divider: node 20 of 41 series resistors sits at 1 − 20/41 V.
    let expected = 1.0 - 20.0 / 41.0;
    assert!((solution.voltages()[mid] - expected).abs() < 1e-6);
}

#[test]
fn fault_maps_are_deterministic_and_serializable() {
    use mnsim::tech::fault::{FaultMap, FaultRates};

    let rates = FaultRates {
        broken_wordline: 0.1,
        broken_bitline: 0.1,
        ..FaultRates::stuck_at(0.2)
    };
    let a = FaultMap::generate(24, 24, &rates, 7).unwrap();
    let b = FaultMap::generate(24, 24, &rates, 7).unwrap();
    assert_eq!(a, b, "same seed must reproduce the same silicon");
    assert_ne!(a, FaultMap::generate(24, 24, &rates, 8).unwrap());
    // Text replay round-trips exactly.
    let replayed = FaultMap::from_text(&a.to_text()).unwrap();
    assert_eq!(a, replayed);
}

mod fault_properties {
    use mnsim::core::config::Config;
    use mnsim::core::exec::ExecOptions;
    use mnsim::core::fault_sim::{simulate_with_faults_with, FaultConfig};
    use mnsim::tech::fault::FaultRates;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any fault rate in [0, 1] runs the full pipeline without a panic:
        /// the outcome is a report or a typed error, nothing else.
        #[test]
        fn any_fault_rate_never_panics(
            raw in 0.0f64..1.25,
            broken in 0.0f64..0.3,
            seed in 0u64..1000,
        ) {
            // `min` folds the overshoot onto the closed endpoint so the
            // boundary rate 1.0 is exercised too.
            let rate = raw.min(1.0);
            let config = Config::fully_connected_mlp(&[32, 16]).unwrap();
            let fault_config = FaultConfig {
                rates: FaultRates {
                    broken_wordline: broken,
                    broken_bitline: broken,
                    ..FaultRates::stuck_at(rate)
                },
                trials: 2,
                seed,
                ..FaultConfig::default()
            };
            match simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()) {
                Ok(report) => {
                    let faults = report.faults.expect("campaign attaches a summary");
                    prop_assert!(faults.yield_fraction >= 0.0 && faults.yield_fraction <= 1.0);
                    prop_assert!(faults.mean_deviation_levels.is_finite());
                }
                Err(e) => {
                    // Typed failure is acceptable; a panic is not.
                    let _ = e.to_string();
                }
            }
        }
    }
}
