//! Failure-injection tests: every layer must fail loudly and typed, never
//! silently produce garbage.

use mnsim::circuit::cg::{solve_cg, CgOptions};
use mnsim::circuit::sparse::TripletMatrix;
use mnsim::circuit::solve::{solve_dc, SolveOptions};
use mnsim::circuit::{Circuit, CircuitError};
use mnsim::core::config::Config;
use mnsim::core::dse::{explore, Constraints, DesignSpace};
use mnsim::core::error::CoreError;
use mnsim::core::simulate::simulate;
use mnsim::tech::memristor::IvModel;
use mnsim::tech::units::{Resistance, Voltage};

#[test]
fn floating_node_reports_singular_system() {
    // A node connected only through a capacitor is floating at DC.
    let mut c = Circuit::new();
    let a = c.add_node();
    let floating = c.add_node();
    c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(100.0))
        .unwrap();
    c.add_capacitor(
        floating,
        Circuit::GROUND,
        mnsim::tech::units::Capacitance::from_picofarads(1.0),
    )
    .unwrap();
    // The floating node has a zero row → singular.
    let result = solve_dc(&c, &SolveOptions::default());
    assert!(
        matches!(result, Err(CircuitError::SingularSystem { .. })),
        "{result:?}"
    );
}

#[test]
fn newton_budget_exhaustion_is_typed() {
    let mut c = Circuit::new();
    let a = c.add_node();
    c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    c.add_memristor(
        a,
        Circuit::GROUND,
        Resistance::from_kilo_ohms(1.0),
        IvModel::Sinh { alpha: 3.0 },
    )
    .unwrap();
    let options = SolveOptions {
        newton_max_iterations: 0,
        ..SolveOptions::default()
    };
    assert!(matches!(
        solve_dc(&c, &options),
        Err(CircuitError::NewtonNoConvergence { .. })
    ));
}

#[test]
fn cg_iteration_starvation_is_typed() {
    let mut t = TripletMatrix::new(50, 50);
    for i in 0..50 {
        t.add(i, i, 2.0);
        if i > 0 {
            t.add(i, i - 1, -1.0);
            t.add(i - 1, i, -1.0);
        }
    }
    let options = CgOptions {
        tolerance: 1e-14,
        max_iterations: 1,
    };
    assert!(matches!(
        solve_cg(&t.to_csr(), &[1.0; 50], &options),
        Err(CircuitError::LinearNoConvergence { .. })
    ));
}

#[test]
fn over_constrained_dse_is_typed() {
    let base = Config::fully_connected_mlp(&[256, 256]).unwrap();
    let space = DesignSpace {
        crossbar_sizes: vec![128],
        parallelism_degrees: vec![1],
        interconnects: vec![mnsim::tech::interconnect::InterconnectNode::N18],
    };
    // Impossible: area below a square millimetre AND error near zero.
    let constraints = Constraints {
        max_crossbar_error: Some(1e-6),
        max_area_mm2: Some(0.0001),
        max_power_w: None,
    };
    assert!(matches!(
        explore(&base, &space, &constraints),
        Err(CoreError::EmptyDesignSpace { .. })
    ));
}

#[test]
fn broken_device_is_rejected_before_simulation() {
    let mut config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    config.device.r_min = Resistance::from_ohms(-5.0);
    match simulate(&config) {
        Err(CoreError::Tech(_)) => {}
        other => panic!("expected a tech-layer error, got {other:?}"),
    }
}

#[test]
fn error_chain_preserves_sources() {
    use std::error::Error as _;
    let mut config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    config.device.sigma = 0.9; // out of the 0..=0.3 range
    let err = simulate(&config).unwrap_err();
    // Displayable, with a source chain reaching the tech layer.
    assert!(err.to_string().contains("sigma"));
    assert!(err.source().is_some());
}

#[test]
fn program_against_wrong_network_is_typed() {
    use mnsim::core::instruction::{execute, Instruction, Program};
    let config = Config::fully_connected_mlp(&[64, 64]).unwrap();
    let report = simulate(&config).unwrap();
    let mut program = Program::new();
    program.push(Instruction::Write { bank: 3 });
    assert!(matches!(
        execute(&report, &program),
        Err(CoreError::InvalidConfig { .. })
    ));
}

#[test]
fn transient_mis_windows_are_typed() {
    use mnsim::circuit::transient::{solve_transient, TransientOptions};
    use mnsim::tech::units::Time;
    let mut c = Circuit::new();
    let a = c.add_node();
    c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
        .unwrap();
    c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(1.0))
        .unwrap();
    let options = TransientOptions {
        t_stop: Time::from_nanoseconds(1.0),
        dt: Time::from_nanoseconds(0.0),
        dc: SolveOptions::default(),
        newton_steps_per_dt: 1,
    };
    assert!(solve_transient(&c, &options).is_err());
}
