//! # mnsim-obs — observability layer for the MNSIM reproduction
//!
//! Zero-dependency instrumentation primitives: monotonic [`Counter`]s,
//! last-write [`Gauge`]s, fixed-bucket [`Histogram`]s and scoped timer
//! [`Span`]s, all backed by a global registry that is a **no-op unless
//! enabled**.
//!
//! Design constraints (see `DESIGN.md` §8):
//!
//! * **Cheap when off.** Every operation first reads one relaxed
//!   [`AtomicBool`]; a disabled counter increment is a load and a branch,
//!   and a disabled span never calls [`Instant::now`].
//! * **Cheap when on.** Each call site declares a `static` handle whose
//!   backing cell is resolved once through the registry mutex and cached in
//!   a [`OnceLock`]; subsequent updates are lock-free atomic operations.
//! * **Zero dependencies.** The workspace is offline; JSON and CSV export
//!   are hand-rolled, and [`validate_json`] provides a tiny validator so
//!   tests and CI can reject malformed dumps without `serde`.
//!
//! # Examples
//!
//! ```
//! use mnsim_obs as obs;
//!
//! static SOLVES: obs::Counter = obs::Counter::new("demo.solves");
//! static SOLVE_SPAN: obs::Span = obs::Span::new("demo.solve");
//!
//! let session = obs::session(); // locks, resets, enables
//! {
//!     let _timer = SOLVE_SPAN.enter();
//!     SOLVES.inc();
//! }
//! let snapshot = session.snapshot();
//! assert_eq!(snapshot.counters["demo.solves"], 1);
//! assert_eq!(snapshot.histograms["demo.solve"].count, 1);
//! obs::validate_json(&snapshot.to_json()).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

mod json;
pub mod live;
mod snapshot;
pub mod trace;

pub use json::{parse_json, validate_json, JsonValue};
pub use snapshot::{BucketCount, HistogramSnapshot, MetricsSnapshot};
pub use trace::{validate_chrome_trace, Trace, TraceSummary};

/// Number of exponential histogram buckets (powers of two from `2⁻³⁰` to
/// `2³⁴`, plus one overflow bucket).
pub(crate) const BUCKET_COUNT: usize = 65;
/// Exponent offset of bucket 0 (`2^-BUCKET_OFFSET` is the smallest edge).
pub(crate) const BUCKET_OFFSET: i32 = 30;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` if metric recording is globally enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The cells behind every registered metric, keyed by name.
///
/// Cells are leaked (`Box::leak`) so call-site statics can cache `'static`
/// references and update them without re-entering this mutex.
#[derive(Default)]
struct Registry {
    counters: HashMap<&'static str, &'static AtomicU64>,
    gauges: HashMap<&'static str, &'static AtomicU64>,
    histograms: HashMap<&'static str, &'static HistogramCell>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock_registry() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Resets every registered metric to zero (counts, sums, extrema and
/// buckets). Registration itself is permanent — cells are static.
pub fn reset() {
    let reg = lock_registry();
    for cell in reg.counters.values() {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in reg.gauges.values() {
        cell.store(0f64.to_bits(), Ordering::Relaxed);
    }
    for cell in reg.histograms.values() {
        cell.reset();
    }
}

/// Takes a point-in-time [`MetricsSnapshot`] of every registered metric.
///
/// Metrics that have never been touched while enabled (zero count/value)
/// are skipped so snapshots only show what actually ran.
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock_registry();
    let mut snap = MetricsSnapshot::default();
    for (&name, cell) in &reg.counters {
        let value = cell.load(Ordering::Relaxed);
        if value > 0 {
            snap.counters.insert(name.to_string(), value);
        }
    }
    for (&name, cell) in &reg.gauges {
        let value = f64::from_bits(cell.load(Ordering::Relaxed));
        if value != 0.0 {
            snap.gauges.insert(name.to_string(), value);
        }
    }
    for (&name, cell) in &reg.histograms {
        if let Some(hist) = cell.snapshot() {
            snap.histograms.insert(name.to_string(), hist);
        }
    }
    snap
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

static SESSION_LOCK: Mutex<()> = Mutex::new(());

/// An exclusive measurement window: the global session lock is held, the
/// registry is reset, and recording is enabled until the guard drops.
///
/// Tests and tools that assert on global metric values must go through
/// [`session`] so concurrently running instrumented code (other tests in
/// the same binary) cannot interleave with the measurement.
///
/// # Ordering contract
///
/// The enabled flag is a **relaxed** atomic: flipping it creates no
/// happens-before edge with other threads. A metric update is captured
/// iff the recording thread observes the flag as set, so:
///
/// * Open the session **before** spawning instrumented workers. Thread
///   spawning synchronizes-with the new thread, so workers spawned after
///   [`session`] returns are guaranteed to observe recording as enabled
///   (the fault-campaign / DSE worker pools spawn inside the
///   session and are covered by this).
/// * Work already in flight on threads spawned **before** the session
///   opened may race the flag flip: those threads can keep observing
///   "disabled" for a short window and their updates are silently
///   dropped. Join or synchronize with such threads first if their
///   metrics matter.
/// * Symmetrically, everything the session measures must be joined
///   before [`Session::snapshot`] — a still-running worker's updates may
///   or may not be included.
#[derive(Debug)]
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

/// Opens an exclusive, enabled, freshly reset metrics [`Session`].
pub fn session() -> Session {
    let guard = SESSION_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    // Overlap detector: recording must be off outside sessions. A true
    // value here means someone called `set_enabled(true)` without holding
    // the session lock — their metrics would silently bleed into (or be
    // reset by) this session.
    debug_assert!(
        !enabled(),
        "obs::session() opened while recording is already enabled \
         (set_enabled(true) called outside a session?)"
    );
    reset();
    set_enabled(true);
    Session { _guard: guard }
}

impl Session {
    /// Snapshot of everything recorded since the session opened.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // The session must still be live: a mid-session
        // `set_enabled(false)` means an unknown suffix of the measured
        // window was silently dropped.
        debug_assert!(
            enabled(),
            "Session::snapshot() after recording was disabled mid-session"
        );
        snapshot()
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        set_enabled(false);
    }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic counter. Declare as a `static` at the call site:
///
/// ```
/// static SOLVES: mnsim_obs::Counter = mnsim_obs::Counter::new("my.solves");
/// SOLVES.inc();
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Creates a counter handle (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| {
            *lock_registry()
                .counters
                .entry(self.name)
                .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))))
        })
    }

    /// Adds `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 if never recorded).
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A last-write-wins floating-point value (e.g. a rate computed at the end
/// of a sweep).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Gauge {
    /// Creates a gauge handle (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| {
            *lock_registry()
                .gauges
                .entry(self.name)
                .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0f64.to_bits()))))
        })
    }

    /// Stores `value` (no-op while disabled).
    #[inline]
    pub fn set(&self, value: f64) {
        if enabled() {
            self.cell().store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell().load(Ordering::Relaxed))
    }
}

// ---------------------------------------------------------------------------
// Histogram cell (shared by Histogram and Span)
// ---------------------------------------------------------------------------

/// Lock-free histogram storage: exponential power-of-two buckets plus
/// count/sum/min/max, all atomics.
pub(crate) struct HistogramCell {
    unit: &'static str,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
}

impl HistogramCell {
    fn new(unit: &'static str) -> Self {
        HistogramCell {
            unit,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits
            .store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits
            .store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }

    fn record(&self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |sum| sum + value);
        atomic_f64_update(&self.min_bits, |min| min.min(value));
        atomic_f64_update(&self.max_bits, |max| max.max(value));
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// `None` if nothing has been recorded.
    fn snapshot(&self) -> Option<HistogramSnapshot> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        let mut buckets = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount {
                    le: bucket_upper_edge(i),
                    count: n,
                });
            }
        }
        Some(HistogramSnapshot {
            unit: self.unit.to_string(),
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: f64::from_bits(self.min_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
            buckets,
        })
    }
}

/// CAS loop applying `f` to an f64 stored as bits.
fn atomic_f64_update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut current = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(current)).to_bits();
        match bits.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Bucket `i` covers `[2^(i-OFFSET), 2^(i-OFFSET+1))`; values below the
/// range land in bucket 0, values at or above `2^34` in the last bucket.
fn bucket_index(value: f64) -> usize {
    if value <= 0.0 {
        return 0;
    }
    let exponent = value.log2().floor() as i64 + BUCKET_OFFSET as i64;
    exponent.clamp(0, BUCKET_COUNT as i64 - 1) as usize
}

/// Inclusive upper edge of bucket `i`; `+inf` for the overflow bucket.
fn bucket_upper_edge(i: usize) -> f64 {
    if i + 1 >= BUCKET_COUNT {
        f64::INFINITY
    } else {
        f64::from(i as i32 - BUCKET_OFFSET + 1).exp2()
    }
}

impl std::fmt::Debug for HistogramCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramCell")
            .field("unit", &self.unit)
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn histogram_cell(name: &'static str, unit: &'static str) -> &'static HistogramCell {
    lock_registry()
        .histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(HistogramCell::new(unit))))
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A fixed-bucket distribution of plain values (iteration counts,
/// residuals, deviations…).
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramCell>,
}

impl Histogram {
    /// Creates a histogram handle (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistogramCell {
        self.cell.get_or_init(|| histogram_cell(self.name, ""))
    }

    /// Records one observation (no-op while disabled; non-finite values are
    /// dropped).
    #[inline]
    pub fn record(&self, value: f64) {
        if enabled() {
            self.cell().record(value);
        }
    }
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

/// A scoped wall-clock timer. [`Span::enter`] returns a guard that records
/// the elapsed seconds into the span's histogram when dropped.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    cell: OnceLock<&'static HistogramCell>,
}

impl Span {
    /// Creates a span handle (registration happens on first use).
    pub const fn new(name: &'static str) -> Self {
        Span {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistogramCell {
        self.cell
            .get_or_init(|| histogram_cell(self.name, "seconds"))
    }

    /// Starts timing; the returned guard records on drop. While disabled
    /// the guard is inert and the clock is never read.
    #[inline]
    pub fn enter(&self) -> SpanGuard {
        if enabled() {
            SpanGuard {
                timing: Some((self.cell(), Instant::now())),
            }
        } else {
            SpanGuard { timing: None }
        }
    }

    /// Records an externally measured duration, in seconds.
    #[inline]
    pub fn record_seconds(&self, seconds: f64) {
        if enabled() {
            self.cell().record(seconds);
        }
    }
}

/// RAII guard of an entered [`Span`].
#[derive(Debug)]
pub struct SpanGuard {
    timing: Option<(&'static HistogramCell, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((cell, start)) = self.timing.take() {
            cell.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_COUNTER: Counter = Counter::new("test.counter");
    static TEST_COUNTER_ALIAS: Counter = Counter::new("test.counter");
    static TEST_GAUGE: Gauge = Gauge::new("test.gauge");
    static TEST_HIST: Histogram = Histogram::new("test.hist");
    static TEST_SPAN: Span = Span::new("test.span");

    #[test]
    fn disabled_metrics_record_nothing() {
        let _lock = SESSION_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        set_enabled(false);
        TEST_COUNTER.inc();
        TEST_GAUGE.set(3.5);
        TEST_HIST.record(1.0);
        let _span = TEST_SPAN.enter();
        assert_eq!(TEST_COUNTER.get(), 0);
        assert_eq!(TEST_GAUGE.get(), 0.0);
    }

    #[test]
    fn same_name_statics_share_a_cell() {
        let session = session();
        TEST_COUNTER.add(2);
        TEST_COUNTER_ALIAS.add(3);
        let snap = session.snapshot();
        assert_eq!(snap.counters["test.counter"], 5);
    }

    #[test]
    fn histogram_statistics_are_exact() {
        let session = session();
        for v in [1.0, 2.0, 4.0, 0.5] {
            TEST_HIST.record(v);
        }
        TEST_HIST.record(f64::NAN); // dropped
        let snap = session.snapshot();
        let hist = &snap.histograms["test.hist"];
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum, 7.5);
        assert_eq!(hist.min, 0.5);
        assert_eq!(hist.max, 4.0);
        assert_eq!(hist.mean(), 7.5 / 4.0);
        assert_eq!(hist.buckets.iter().map(|b| b.count).sum::<u64>(), 4);
    }

    #[test]
    fn span_guard_times_scope() {
        let session = session();
        {
            let _g = TEST_SPAN.enter();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = session.snapshot();
        let span = &snap.histograms["test.span"];
        assert_eq!(span.count, 1);
        assert_eq!(span.unit, "seconds");
        assert!(span.sum >= 0.002, "span too short: {}", span.sum);
    }

    #[test]
    fn reset_zeroes_everything() {
        let session = session();
        TEST_COUNTER.inc();
        TEST_HIST.record(1.0);
        TEST_GAUGE.set(9.0);
        reset();
        let snap = session.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn bucket_indexing_is_monotonic() {
        let mut last = 0;
        for exp in -40..44 {
            let idx = bucket_index((exp as f64).exp2());
            assert!(idx >= last);
            last = idx;
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKET_COUNT - 1);
        // Every value falls strictly below its bucket's upper edge.
        for v in [1e-12, 0.003, 1.0, 17.0, 1e9, 1e30] {
            let idx = bucket_index(v);
            assert!(v < bucket_upper_edge(idx) || idx == BUCKET_COUNT - 1);
        }
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let session = session();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        TEST_COUNTER.inc();
                        TEST_HIST.record(1.0);
                    }
                });
            }
        });
        let snap = session.snapshot();
        assert_eq!(snap.counters["test.counter"], 4000);
        assert_eq!(snap.histograms["test.hist"].count, 4000);
        assert_eq!(snap.histograms["test.hist"].sum, 4000.0);
    }
}
