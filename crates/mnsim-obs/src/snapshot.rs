//! Point-in-time metric snapshots with hand-rolled JSON and CSV export
//! (the workspace is offline, so no `serde`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram bucket: `count` observations at or below `le`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCount {
    /// Upper edge of the bucket (`+inf` for the overflow bucket).
    pub le: f64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Aggregated view of one histogram or span.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Unit of the recorded values (`"seconds"` for spans, empty for plain
    /// histograms).
    pub unit: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Non-empty buckets in increasing edge order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`q ∈ [0, 1]`), 0.0 for an empty histogram.
    ///
    /// Interpolation contract (pinned by test): the continuous target rank
    /// is `q · count`; the answer lands in the first bucket whose
    /// cumulative count reaches that rank, linearly interpolated between
    /// the bucket's lower and upper edge by the fractional position of the
    /// rank inside the bucket, then clamped to the observed `[min, max]`.
    /// The first data bucket's lower edge and the overflow bucket's upper
    /// edge are taken from `min`/`max`, so single-bucket histograms answer
    /// exactly within the observed range.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cumulative = 0u64;
        let mut previous_edge: Option<f64> = None;
        for bucket in &self.buckets {
            let next = cumulative + bucket.count;
            if bucket.count > 0 && next as f64 >= target {
                let hi = if bucket.le.is_finite() {
                    bucket.le
                } else {
                    self.max
                };
                // Power-of-two buckets: the lower edge is half the upper,
                // except the first data bucket which starts at `min`.
                let lo = match previous_edge {
                    _ if cumulative == 0 => self.min,
                    Some(edge) => edge,
                    None => self.min,
                };
                let fraction = (target - cumulative as f64) / bucket.count as f64;
                return (lo + fraction * (hi - lo)).clamp(self.min, self.max);
            }
            cumulative = next;
            previous_edge = Some(bucket.le);
        }
        self.max
    }

    /// Median estimate (see [`Self::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Self::quantile`]).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Self::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// Everything the registry knew at snapshot time. Attachable to
/// `mnsim_core::simulate::Report` and exportable as JSON or CSV.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms and spans by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Convenience counter lookup (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes to a self-contained JSON document.
    ///
    /// Non-finite numbers are encoded as `null` (JSON has no `inf`/`nan`),
    /// which only occurs for the overflow bucket edge.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        write_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        write_map(&mut out, self.gauges.iter(), |out, v| {
            write_json_number(out, *v);
        });
        out.push_str("},\n  \"histograms\": {");
        write_map(&mut out, self.histograms.iter(), |out, hist| {
            let _ = write!(out, "{{\"unit\": ");
            write_json_string(out, &hist.unit);
            let _ = write!(out, ", \"count\": {}, \"sum\": ", hist.count);
            write_json_number(out, hist.sum);
            out.push_str(", \"min\": ");
            write_json_number(out, hist.min);
            out.push_str(", \"max\": ");
            write_json_number(out, hist.max);
            out.push_str(", \"mean\": ");
            write_json_number(out, hist.mean());
            out.push_str(", \"p50\": ");
            write_json_number(out, hist.p50());
            out.push_str(", \"p95\": ");
            write_json_number(out, hist.p95());
            out.push_str(", \"p99\": ");
            write_json_number(out, hist.p99());
            out.push_str(", \"buckets\": [");
            for (i, bucket) in hist.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"le\": ");
                write_json_number(out, bucket.le);
                let _ = write!(out, ", \"count\": {}}}", bucket.count);
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Serializes to CSV: one row per metric with the header
    /// `kind,name,unit,count,sum,min,max,mean,p50,p95,p99`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,unit,count,sum,min,max,mean,p50,p95,p99\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{name},,{value},,,,,,,");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},,,{value},,,,,,");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},{},{},{},{},{},{},{},{},{}",
                hist.unit,
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.mean(),
                hist.p50(),
                hist.p95(),
                hist.p99()
            );
        }
        out
    }
}

/// Writes `"key": <value>` pairs with comma separation.
fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_json_string(out, key);
        out.push_str(": ");
        write_value(out, value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// JSON string literal with the standard escapes (shared with
/// [`crate::live`]'s NDJSON writer).
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON number or `null` for non-finite values (shared with
/// [`crate::live`]'s NDJSON writer).
pub(crate) fn write_json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps full precision and always includes a decimal point
        // or exponent, so the output parses back to the identical f64.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_json;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.count".into(), 42);
        snap.gauges.insert("b.rate".into(), 1234.5);
        snap.histograms.insert(
            "c.time".into(),
            HistogramSnapshot {
                unit: "seconds".into(),
                count: 3,
                sum: 0.6,
                min: 0.1,
                max: 0.3,
                buckets: vec![
                    BucketCount { le: 0.25, count: 2 },
                    BucketCount {
                        le: f64::INFINITY,
                        count: 1,
                    },
                ],
            },
        );
        snap
    }

    #[test]
    fn json_is_valid_and_contains_metrics() {
        let json = sample().to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"a.count\": 42"));
        assert!(json.contains("\"b.rate\": 1234.5"));
        assert!(json.contains("\"unit\": \"seconds\""));
        assert!(json.contains("\"le\": null")); // +inf encoded as null
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        validate_json(&snap.to_json()).unwrap();
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 metrics
        assert!(csv.starts_with("kind,name,unit,count,sum,min,max,mean,p50,p95,p99\n"));
        assert!(csv.contains("counter,a.count,,42"));
        assert!(csv.contains("histogram,c.time,seconds,3"));
        // Every row carries the same number of fields as the header.
        let columns = csv.lines().next().unwrap().split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), columns, "row {line:?}");
        }
    }

    #[test]
    fn json_exports_percentiles() {
        let json = sample().to_json();
        validate_json(&json).unwrap();
        for key in ["\"p50\": ", "\"p95\": ", "\"p99\": "] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// Pins the quantile interpolation contract documented on
    /// [`HistogramSnapshot::quantile`].
    #[test]
    fn quantile_interpolation_is_pinned() {
        // 10 observations: 4 in (min=1.0, le=2.0], 6 in (2.0, le=4.0],
        // max observed 3.5.
        let hist = HistogramSnapshot {
            unit: String::new(),
            count: 10,
            sum: 25.0,
            min: 1.0,
            max: 3.5,
            buckets: vec![
                BucketCount { le: 2.0, count: 4 },
                BucketCount { le: 4.0, count: 6 },
            ],
        };
        // p50: target rank 5.0 falls in the second bucket (cumulative 4
        // before it), fraction (5-4)/6 between edges [2.0, 4.0].
        let expected_p50 = 2.0 + (1.0 / 6.0) * 2.0;
        assert!((hist.p50() - expected_p50).abs() < 1e-12);
        // p25: target rank 2.5 in the first bucket, interpolated between
        // min=1.0 and le=2.0: 1.0 + (2.5/4)*1.0.
        assert!((hist.quantile(0.25) - 1.625).abs() < 1e-12);
        // p99: target rank 9.9 → fraction (9.9-4)/6 of [2.0, 4.0] would be
        // 3.9667, clamped to max=3.5.
        assert!((hist.p99() - 3.5).abs() < 1e-12);
        // Extremes clamp to the observed range.
        assert_eq!(hist.quantile(0.0), 1.0);
        assert_eq!(hist.quantile(1.0), 3.5);
        // Empty histogram answers 0.
        let empty = HistogramSnapshot {
            unit: String::new(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: vec![],
        };
        assert_eq!(empty.p95(), 0.0);
        // An overflow-bucket quantile interpolates toward `max`.
        let tail = HistogramSnapshot {
            unit: String::new(),
            count: 2,
            sum: 30.0,
            min: 10.0,
            max: 20.0,
            buckets: vec![
                BucketCount { le: 16.0, count: 1 },
                BucketCount {
                    le: f64::INFINITY,
                    count: 1,
                },
            ],
        };
        // p99: rank 1.98 in overflow bucket, edges [16.0, max=20.0],
        // fraction 0.98 → 19.92.
        assert!((tail.p99() - 19.92).abs() < 1e-9);
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        assert_eq!(sample().counter("a.count"), 42);
        assert_eq!(sample().counter("missing"), 0);
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
