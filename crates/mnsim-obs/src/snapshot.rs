//! Point-in-time metric snapshots with hand-rolled JSON and CSV export
//! (the workspace is offline, so no `serde`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One histogram bucket: `count` observations at or below `le`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCount {
    /// Upper edge of the bucket (`+inf` for the overflow bucket).
    pub le: f64,
    /// Observations in the bucket.
    pub count: u64,
}

/// Aggregated view of one histogram or span.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Unit of the recorded values (`"seconds"` for spans, empty for plain
    /// histograms).
    pub unit: String,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Non-empty buckets in increasing edge order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything the registry knew at snapshot time. Attachable to
/// `mnsim_core::simulate::Report` and exportable as JSON or CSV.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms and spans by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Convenience counter lookup (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes to a self-contained JSON document.
    ///
    /// Non-finite numbers are encoded as `null` (JSON has no `inf`/`nan`),
    /// which only occurs for the overflow bucket edge.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        write_map(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\n  \"gauges\": {");
        write_map(&mut out, self.gauges.iter(), |out, v| {
            write_json_number(out, *v);
        });
        out.push_str("},\n  \"histograms\": {");
        write_map(&mut out, self.histograms.iter(), |out, hist| {
            let _ = write!(out, "{{\"unit\": ");
            write_json_string(out, &hist.unit);
            let _ = write!(out, ", \"count\": {}, \"sum\": ", hist.count);
            write_json_number(out, hist.sum);
            out.push_str(", \"min\": ");
            write_json_number(out, hist.min);
            out.push_str(", \"max\": ");
            write_json_number(out, hist.max);
            out.push_str(", \"mean\": ");
            write_json_number(out, hist.mean());
            out.push_str(", \"buckets\": [");
            for (i, bucket) in hist.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"le\": ");
                write_json_number(out, bucket.le);
                let _ = write!(out, ", \"count\": {}}}", bucket.count);
            }
            out.push_str("]}");
        });
        out.push_str("}\n}\n");
        out
    }

    /// Serializes to CSV: one row per metric with the header
    /// `kind,name,unit,count,sum,min,max,mean`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,unit,count,sum,min,max,mean\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter,{name},,{value},,,,");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},,,{value},,,");
        }
        for (name, hist) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},{},{},{},{},{},{}",
                hist.unit,
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.mean()
            );
        }
        out
    }
}

/// Writes `"key": <value>` pairs with comma separation.
fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_json_string(out, key);
        out.push_str(": ");
        write_value(out, value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON number or `null` for non-finite values.
fn write_json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` keeps full precision and always includes a decimal point
        // or exponent, so the output parses back to the identical f64.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate_json;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("a.count".into(), 42);
        snap.gauges.insert("b.rate".into(), 1234.5);
        snap.histograms.insert(
            "c.time".into(),
            HistogramSnapshot {
                unit: "seconds".into(),
                count: 3,
                sum: 0.6,
                min: 0.1,
                max: 0.3,
                buckets: vec![
                    BucketCount { le: 0.25, count: 2 },
                    BucketCount {
                        le: f64::INFINITY,
                        count: 1,
                    },
                ],
            },
        );
        snap
    }

    #[test]
    fn json_is_valid_and_contains_metrics() {
        let json = sample().to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"a.count\": 42"));
        assert!(json.contains("\"b.rate\": 1234.5"));
        assert!(json.contains("\"unit\": \"seconds\""));
        assert!(json.contains("\"le\": null")); // +inf encoded as null
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        validate_json(&snap.to_json()).unwrap();
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 metrics
        assert!(csv.starts_with("kind,name,unit,"));
        assert!(csv.contains("counter,a.count,,42"));
        assert!(csv.contains("histogram,c.time,seconds,3"));
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        assert_eq!(sample().counter("a.count"), 42);
        assert_eq!(sample().counter("missing"), 0);
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
