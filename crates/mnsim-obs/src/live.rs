//! Streaming progress telemetry: typed campaign events as NDJSON plus a
//! periodic counter/gauge sampler.
//!
//! The post-hoc snapshot ([`crate::snapshot`]) and trace ([`crate::trace`])
//! exports answer "what happened" *after* a run ends; long campaigns
//! (fault Monte-Carlo, DSE sweeps, deadline-bounded runs) also need to be
//! watchable *while they run*. This module provides that live view:
//!
//! * **Typed progress events.** Instrumented wave loops emit
//!   [`LiveEvent`]s — campaign started/finished, wave completed (with ETA
//!   and throughput), checkpoint written, deadline approaching, solver
//!   guard tripped — serialized as one JSON object per line (NDJSON) to an
//!   optional file sink, flushed per event so `tail -f` works, plus an
//!   optional human progress line on stderr.
//! * **Periodic sampling.** On each emission, if at least
//!   [`LiveConfig::sample_period`] has elapsed since the last sample, the
//!   metric registry is snapshotted and the counter *deltas* and current
//!   gauge values are pushed into a bounded ring buffer (and written
//!   inline as an `"event":"sample"` line). The series is returned by
//!   [`LiveSession::finish`] as a [`SampleSeries`], exportable as NDJSON
//!   or CSV.
//!
//! # Cost contract
//!
//! Like the metric registry and the trace subsystem, live telemetry is
//! **off by default and cheap when off**: every public emission helper
//! first reads one relaxed atomic and returns. Event construction,
//! serialization, the hub mutex, and the sampler are only ever touched
//! inside an active session. Emission rate is bounded by the wave
//! granularity (a handful of events per second at most), so the enabled
//! cost is negligible next to the simulated work.
//!
//! # Determinism contract
//!
//! Event **contents that count work** — the `done`/`total` of
//! `wave_completed`, the totals of `campaign_started` /
//! `campaign_finished`, the number of `wave_completed` events in a clean
//! run — are bit-stable across thread counts: waves are carved from the
//! item total only (see [`wave_grain`]), never from the worker count.
//! Timestamps (`t_s`), rates (`items_per_s`), ETAs (`eta_s`), `sample`
//! lines, and the timing-gated `deadline_approaching` event vary run to
//! run and are excluded from the contract. `guard_tripped` events are
//! deterministic as a multiset (the same solves trip the same guards) but
//! their interleaving with other events depends on scheduling.
//!
//! # Examples
//!
//! ```
//! use mnsim_obs as obs;
//!
//! let metrics = obs::session(); // the sampler reads the metric registry
//! let live = obs::live::session(obs::live::LiveConfig::default()).unwrap();
//! obs::live::campaign_started("demo", 4, 0);
//! obs::live::wave_completed(2, 4, None);
//! obs::live::wave_completed(4, 4, None);
//! obs::live::campaign_finished(4, 4, "complete");
//! let report = live.finish();
//! assert_eq!(report.events, 4);
//! for line in &report.lines {
//!     obs::parse_json(line).unwrap();
//! }
//! drop(metrics);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt::{self, Write as _};
use std::sync::Arc;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::snapshot::{write_json_number, write_json_string};

static LIVE_ENABLED: AtomicBool = AtomicBool::new(false);
static LIVE_SESSION_LOCK: Mutex<()> = Mutex::new(());
static HUB: Mutex<Option<Hub>> = Mutex::new(None);

/// Target number of waves a live-instrumented campaign is split into when
/// no checkpoint policy dictates its own cadence (see [`wave_grain`]).
const TARGET_WAVES: usize = 8;

/// `true` if a live telemetry session is active.
#[inline]
pub fn enabled() -> bool {
    LIVE_ENABLED.load(Ordering::Relaxed)
}

/// Wave length for a campaign of `total` items when live telemetry wants
/// mid-run progress events.
///
/// Returns `usize::MAX` while live telemetry is disabled (one wave — the
/// exact legacy open-loop run), and otherwise a grain derived **only**
/// from `total` (about `TARGET_WAVES` waves), never from the thread
/// count — so the number of `wave_completed` events and their
/// `done`/`total` contents are identical at every thread count.
pub fn wave_grain(total: usize) -> usize {
    if enabled() {
        total.div_ceil(TARGET_WAVES).max(1)
    } else {
        usize::MAX
    }
}

/// An in-process subscriber to the live NDJSON stream: the callback
/// receives every emitted line, **on the emitting thread**, before it is
/// written to the sink. This is how a serving front end routes campaign
/// events to the client whose job is running on that thread (the
/// `mnsim-serve` session server registers one tap for its lifetime and
/// dispatches on a worker-thread-local request id).
#[derive(Clone)]
pub struct LiveTap(Arc<dyn Fn(&str) + Send + Sync>);

impl LiveTap {
    /// Wraps `f` as a stream tap.
    pub fn new(f: impl Fn(&str) + Send + Sync + 'static) -> Self {
        LiveTap(Arc::new(f))
    }

    /// Invokes the tap on one NDJSON line.
    fn call(&self, line: &str) {
        (self.0)(line);
    }
}

impl fmt::Debug for LiveTap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LiveTap(..)")
    }
}

/// Configuration of a live telemetry session.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// NDJSON sink path (`--live <path>`); `None` keeps the stream
    /// in-memory only (still returned by [`LiveSession::finish`]).
    pub path: Option<String>,
    /// Write a human progress line to stderr on campaign/wave events
    /// (`--progress`).
    pub progress: bool,
    /// Minimum interval between registry samples; sampling is
    /// opportunistic (checked on each event emission — no background
    /// thread), so actual spacing is at least this.
    pub sample_period: Duration,
    /// Maximum NDJSON lines (events + samples) kept/written per session;
    /// excess emissions are counted in [`LiveReport::dropped`]. Only
    /// enforced while [`LiveConfig::retain`] is on — an un-retained
    /// stream has no buffer to bound.
    pub capacity: usize,
    /// Ring-buffer capacity of the sample time series (oldest dropped).
    pub sample_capacity: usize,
    /// Keep every emitted line in memory for [`LiveReport::lines`]
    /// (default). Long-running servers turn this off: the tap and the
    /// file sink still receive every line, but nothing accumulates and
    /// the [`LiveConfig::capacity`] bound never starts dropping events.
    pub retain: bool,
    /// In-process subscriber receiving every line on the emitting thread.
    pub tap: Option<LiveTap>,
}

impl Default for LiveConfig {
    /// No file sink, no progress lines, 500 ms sample period, 65 536-line
    /// stream bound, 1 024-point sample ring, retained lines, no tap.
    fn default() -> Self {
        LiveConfig {
            path: None,
            progress: false,
            sample_period: Duration::from_millis(500),
            capacity: 65_536,
            sample_capacity: 1_024,
            retain: true,
            tap: None,
        }
    }
}

impl LiveConfig {
    /// Sets the NDJSON sink path.
    #[must_use]
    pub fn to_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Enables the human stderr progress line.
    #[must_use]
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// Sets the minimum sampling interval.
    #[must_use]
    pub fn with_sample_period(mut self, period: Duration) -> Self {
        self.sample_period = period;
        self
    }

    /// Registers an in-process tap receiving every line as it is emitted.
    #[must_use]
    pub fn with_tap(mut self, tap: LiveTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Controls in-memory retention of the stream (see
    /// [`LiveConfig::retain`]).
    #[must_use]
    pub fn with_retain(mut self, retain: bool) -> Self {
        self.retain = retain;
        self
    }
}

/// A typed progress event of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveEvent {
    /// A campaign began (possibly resuming from a checkpoint).
    CampaignStarted {
        /// Campaign label (`"fault_mc"`, `"dse_sweep"`, …).
        campaign: String,
        /// Items the campaign will evaluate in total.
        total: usize,
        /// Items already complete from a resumed checkpoint.
        resumed: usize,
    },
    /// A wave of items completed cleanly.
    WaveCompleted {
        /// Items complete so far (including resumed ones).
        done: usize,
        /// Items requested in total.
        total: usize,
        /// Estimated seconds to completion at the current rate.
        eta_s: f64,
        /// Throughput since the campaign started, items per second.
        items_per_s: f64,
    },
    /// A checkpoint file was written.
    CheckpointWritten {
        /// The checkpoint path.
        path: String,
        /// Items persisted as complete.
        completed: usize,
    },
    /// The projected completion time exceeds the remaining deadline
    /// budget (timing-gated; excluded from the determinism contract).
    DeadlineApproaching {
        /// Seconds left before the deadline.
        remaining_s: f64,
        /// Estimated seconds to completion at the current rate.
        eta_s: f64,
    },
    /// A solver health guard cut a recovery-ladder rung short.
    GuardTripped {
        /// The rung that was cut short (`"base"`, `"relaxed-cg"`, …).
        stage: String,
        /// The guard that fired (`"non-finite"`, `"stagnated"`).
        guard: String,
    },
    /// The campaign stopped; always the final event of a campaign, on
    /// every exit path (complete, interrupted, or failed).
    CampaignFinished {
        /// Items complete at exit.
        done: usize,
        /// Items requested in total.
        total: usize,
        /// `"complete"`, `"interrupted"`, or `"failed"`.
        outcome: String,
    },
}

/// One periodic sample of the metric registry.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePoint {
    /// Seconds since the live session opened.
    pub t_s: f64,
    /// Counter increments since the previous sample (zero deltas
    /// omitted).
    pub counters: BTreeMap<String, u64>,
    /// Current gauge values.
    pub gauges: BTreeMap<String, f64>,
}

/// The ring-buffered time series captured by the periodic sampler.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleSeries {
    /// Samples in capture order (oldest first; the ring drops from the
    /// front when full).
    pub points: Vec<SamplePoint>,
}

impl SampleSeries {
    /// `true` if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of captured samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Serializes the series as NDJSON (one `"event":"sample"` object per
    /// line, same shape as the inline stream lines).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for point in &self.points {
            out.push_str(&sample_line(point));
            out.push('\n');
        }
        out
    }

    /// Serializes the series as CSV with the header
    /// `t_s,kind,name,value` — one row per counter delta and gauge value.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,kind,name,value\n");
        for point in &self.points {
            for (name, delta) in &point.counters {
                let _ = writeln!(out, "{:?},counter,{name},{delta}", point.t_s);
            }
            for (name, value) in &point.gauges {
                let _ = writeln!(out, "{:?},gauge,{name},{value:?}", point.t_s);
            }
        }
        out
    }
}

/// What a live session collected, returned by [`LiveSession::finish`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LiveReport {
    /// NDJSON lines emitted (events + inline samples).
    pub events: u64,
    /// Emissions dropped after the stream bound was reached.
    pub dropped: u64,
    /// The sampler's time series.
    pub samples: SampleSeries,
    /// The full NDJSON stream, one line per entry (what the sink
    /// received).
    pub lines: Vec<String>,
}

/// Session-internal state behind the hub mutex.
struct Hub {
    started: Instant,
    sink: Option<BufWriter<File>>,
    sink_failed: bool,
    progress: bool,
    retain: bool,
    tap: Option<LiveTap>,
    capacity: usize,
    emitted: u64,
    dropped: u64,
    lines: Vec<String>,
    sample_period: Duration,
    sample_capacity: usize,
    last_sample: Instant,
    prev_counters: BTreeMap<String, u64>,
    samples: VecDeque<SamplePoint>,
    /// Label of the most recent `campaign_started`, for progress lines.
    label: String,
    /// When the current campaign started and how many items it resumed
    /// with — the rate baseline for ETA computation.
    campaign_started_at: Instant,
    campaign_base: usize,
}

/// An exclusive live telemetry window (mirrors [`crate::session`] /
/// [`crate::trace::session`]): events stream to the configured sink until
/// [`LiveSession::finish`] (or drop) tears the session down.
#[derive(Debug)]
pub struct LiveSession {
    _guard: MutexGuard<'static, ()>,
}

/// Opens an exclusive live telemetry session.
///
/// The file sink (when [`LiveConfig::path`] is set) is created eagerly so
/// an unwritable path fails up front rather than silently losing the
/// stream. The sampler reads the **metric registry**, so callers that
/// want non-empty samples should also open [`crate::session`] (before
/// this one — both front ends follow that order).
///
/// # Errors
///
/// Returns a message naming the sink path when it cannot be created.
pub fn session(config: LiveConfig) -> Result<LiveSession, String> {
    let guard = LIVE_SESSION_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let sink = match &config.path {
        Some(path) => Some(BufWriter::new(File::create(path).map_err(|e| {
            format!("cannot create live telemetry sink `{path}`: {e}")
        })?)),
        None => None,
    };
    let now = Instant::now();
    *lock_hub() = Some(Hub {
        started: now,
        sink,
        sink_failed: false,
        progress: config.progress,
        retain: config.retain,
        tap: config.tap,
        capacity: config.capacity,
        emitted: 0,
        dropped: 0,
        lines: Vec::new(),
        sample_period: config.sample_period,
        sample_capacity: config.sample_capacity.max(1),
        last_sample: now,
        prev_counters: BTreeMap::new(),
        samples: VecDeque::new(),
        label: String::from("campaign"),
        campaign_started_at: now,
        campaign_base: 0,
    });
    LIVE_ENABLED.store(true, Ordering::Relaxed);
    Ok(LiveSession { _guard: guard })
}

impl LiveSession {
    /// Ends the session and returns everything it collected. The sink has
    /// already received (and been flushed after) every line.
    pub fn finish(self) -> LiveReport {
        teardown()
        // `self` drops here; `Drop` finds the hub gone and is a no-op.
    }
}

impl Drop for LiveSession {
    fn drop(&mut self) {
        let _ = teardown();
    }
}

fn lock_hub() -> MutexGuard<'static, Option<Hub>> {
    HUB.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Disables emission and drains the hub into a [`LiveReport`].
fn teardown() -> LiveReport {
    LIVE_ENABLED.store(false, Ordering::Relaxed);
    let Some(mut hub) = lock_hub().take() else {
        return LiveReport::default();
    };
    if let Some(sink) = &mut hub.sink {
        let _ = sink.flush();
    }
    LiveReport {
        events: hub.emitted,
        dropped: hub.dropped,
        samples: SampleSeries {
            points: hub.samples.into_iter().collect(),
        },
        lines: hub.lines,
    }
}

// ---------------------------------------------------------------------------
// Emission helpers (the instrumented call sites)
// ---------------------------------------------------------------------------

/// Emits [`LiveEvent::CampaignStarted`] (no-op while disabled).
pub fn campaign_started(campaign: &str, total: usize, resumed: usize) {
    if !enabled() {
        return;
    }
    emit(LiveEvent::CampaignStarted {
        campaign: campaign.to_string(),
        total,
        resumed,
    });
}

/// Emits [`LiveEvent::WaveCompleted`] with ETA and throughput computed
/// from the campaign's start baseline, plus
/// [`LiveEvent::DeadlineApproaching`] when the projection exceeds
/// `deadline_remaining` (no-op while disabled).
pub fn wave_completed(done: usize, total: usize, deadline_remaining: Option<Duration>) {
    if !enabled() {
        return;
    }
    let mut guard = lock_hub();
    let Some(hub) = guard.as_mut() else {
        return;
    };
    let elapsed = hub
        .campaign_started_at
        .elapsed()
        .as_secs_f64()
        .max(1e-9);
    let fresh = done.saturating_sub(hub.campaign_base);
    let items_per_s = fresh as f64 / elapsed;
    let eta_s = if items_per_s > 0.0 {
        total.saturating_sub(done) as f64 / items_per_s
    } else {
        f64::INFINITY
    };
    emit_locked(
        hub,
        &LiveEvent::WaveCompleted {
            done,
            total,
            eta_s,
            items_per_s,
        },
    );
    if let Some(remaining) = deadline_remaining {
        let remaining_s = remaining.as_secs_f64();
        if eta_s.is_finite() && eta_s > remaining_s {
            emit_locked(hub, &LiveEvent::DeadlineApproaching { remaining_s, eta_s });
        }
    }
}

/// Emits [`LiveEvent::CheckpointWritten`] (no-op while disabled).
pub fn checkpoint_written(path: &str, completed: usize) {
    if !enabled() {
        return;
    }
    emit(LiveEvent::CheckpointWritten {
        path: path.to_string(),
        completed,
    });
}

/// Emits [`LiveEvent::GuardTripped`] (no-op while disabled).
pub fn guard_tripped(stage: &str, guard: &str) {
    if !enabled() {
        return;
    }
    emit(LiveEvent::GuardTripped {
        stage: stage.to_string(),
        guard: guard.to_string(),
    });
}

/// Emits the final [`LiveEvent::CampaignFinished`] for a campaign
/// (no-op while disabled). `outcome` is `"complete"`, `"interrupted"`, or
/// `"failed"`.
pub fn campaign_finished(done: usize, total: usize, outcome: &str) {
    if !enabled() {
        return;
    }
    emit(LiveEvent::CampaignFinished {
        done,
        total,
        outcome: outcome.to_string(),
    });
}

/// Emits a pre-built event into the active session (no-op while
/// disabled).
pub fn emit(event: LiveEvent) {
    if !enabled() {
        return;
    }
    let mut guard = lock_hub();
    if let Some(hub) = guard.as_mut() {
        emit_locked(hub, &event);
    }
}

fn emit_locked(hub: &mut Hub, event: &LiveEvent) {
    if let LiveEvent::CampaignStarted {
        campaign, resumed, ..
    } = event
    {
        hub.label = campaign.clone();
        hub.campaign_started_at = Instant::now();
        hub.campaign_base = *resumed;
    }
    let t_s = hub.started.elapsed().as_secs_f64();
    push_line(hub, event_line(t_s, event));
    if hub.progress {
        progress_line(hub, event);
    }
    maybe_sample(hub);
}

/// Appends one NDJSON line to the tap, the in-memory stream, and the
/// sink (flushing, so `tail -f` sees it immediately), honoring the
/// stream bound. With retention off only the tap and sink see the line —
/// nothing accumulates and the bound never drops.
fn push_line(hub: &mut Hub, line: String) {
    if hub.retain && hub.emitted >= hub.capacity as u64 {
        hub.dropped += 1;
        return;
    }
    hub.emitted += 1;
    if let Some(tap) = &hub.tap {
        tap.call(&line);
    }
    if let Some(sink) = &mut hub.sink {
        if !hub.sink_failed {
            let failed = writeln!(sink, "{line}").is_err() || sink.flush().is_err();
            if failed {
                // Keep the campaign running; the in-memory stream (and
                // the report) still carry the events.
                hub.sink_failed = true;
                eprintln!("live telemetry: sink write failed; further lines kept in memory only");
            }
        }
    }
    if hub.retain {
        hub.lines.push(line);
    }
}

/// Human stderr progress line for the campaign/wave events.
fn progress_line(hub: &Hub, event: &LiveEvent) {
    match event {
        LiveEvent::CampaignStarted {
            campaign,
            total,
            resumed,
        } => {
            eprintln!("[{campaign}] started: {total} items ({resumed} resumed)");
        }
        LiveEvent::WaveCompleted {
            done,
            total,
            eta_s,
            items_per_s,
        } => {
            let pct = *done as f64 / (*total).max(1) as f64 * 100.0;
            eprintln!(
                "[{}] {done}/{total} ({pct:.1}%) · {items_per_s:.1} items/s · eta {eta_s:.1}s",
                hub.label
            );
        }
        LiveEvent::DeadlineApproaching { remaining_s, eta_s } => {
            eprintln!(
                "[{}] deadline approaching: {remaining_s:.1}s left, eta {eta_s:.1}s",
                hub.label
            );
        }
        LiveEvent::CampaignFinished {
            done,
            total,
            outcome,
        } => {
            eprintln!("[{}] finished: {done}/{total} ({outcome})", hub.label);
        }
        LiveEvent::CheckpointWritten { .. } | LiveEvent::GuardTripped { .. } => {}
    }
}

/// Samples the metric registry if the period elapsed.
fn maybe_sample(hub: &mut Hub) {
    if hub.last_sample.elapsed() < hub.sample_period {
        return;
    }
    hub.last_sample = Instant::now();
    let snap = crate::snapshot();
    let mut deltas = BTreeMap::new();
    for (name, &value) in &snap.counters {
        let delta = value.saturating_sub(hub.prev_counters.get(name).copied().unwrap_or(0));
        if delta > 0 {
            deltas.insert(name.clone(), delta);
        }
    }
    hub.prev_counters = snap.counters;
    let point = SamplePoint {
        t_s: hub.started.elapsed().as_secs_f64(),
        counters: deltas,
        gauges: snap.gauges,
    };
    if hub.samples.len() >= hub.sample_capacity {
        hub.samples.pop_front();
    }
    push_line(hub, sample_line(&point));
    hub.samples.push_back(point);
}

// ---------------------------------------------------------------------------
// NDJSON serialization
// ---------------------------------------------------------------------------

fn event_line(t_s: f64, event: &LiveEvent) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"t_s\": ");
    write_json_number(&mut out, t_s);
    out.push_str(", \"event\": ");
    match event {
        LiveEvent::CampaignStarted {
            campaign,
            total,
            resumed,
        } => {
            out.push_str("\"campaign_started\", \"campaign\": ");
            write_json_string(&mut out, campaign);
            let _ = write!(out, ", \"total\": {total}, \"resumed\": {resumed}");
        }
        LiveEvent::WaveCompleted {
            done,
            total,
            eta_s,
            items_per_s,
        } => {
            let _ = write!(
                out,
                "\"wave_completed\", \"done\": {done}, \"total\": {total}, \"eta_s\": "
            );
            write_json_number(&mut out, *eta_s);
            out.push_str(", \"items_per_s\": ");
            write_json_number(&mut out, *items_per_s);
        }
        LiveEvent::CheckpointWritten { path, completed } => {
            out.push_str("\"checkpoint_written\", \"path\": ");
            write_json_string(&mut out, path);
            let _ = write!(out, ", \"completed\": {completed}");
        }
        LiveEvent::DeadlineApproaching { remaining_s, eta_s } => {
            out.push_str("\"deadline_approaching\", \"remaining_s\": ");
            write_json_number(&mut out, *remaining_s);
            out.push_str(", \"eta_s\": ");
            write_json_number(&mut out, *eta_s);
        }
        LiveEvent::GuardTripped { stage, guard } => {
            out.push_str("\"guard_tripped\", \"stage\": ");
            write_json_string(&mut out, stage);
            out.push_str(", \"guard\": ");
            write_json_string(&mut out, guard);
        }
        LiveEvent::CampaignFinished {
            done,
            total,
            outcome,
        } => {
            let _ = write!(out, "\"campaign_finished\", \"done\": {done}, \"total\": {total}");
            out.push_str(", \"outcome\": ");
            write_json_string(&mut out, outcome);
        }
    }
    out.push('}');
    out
}

fn sample_line(point: &SamplePoint) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"t_s\": ");
    write_json_number(&mut out, point.t_s);
    out.push_str(", \"event\": \"sample\", \"counters\": {");
    for (i, (name, delta)) in point.counters.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_string(&mut out, name);
        let _ = write!(out, ": {delta}");
    }
    out.push_str("}, \"gauges\": {");
    for (i, (name, value)) in point.gauges.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_json_string(&mut out, name);
        out.push_str(": ");
        write_json_number(&mut out, *value);
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;

    /// All live tests funnel through the metrics session lock so they
    /// serialize against each other and against anything else touching
    /// the global hub.
    fn locked_session(config: LiveConfig) -> (crate::Session, LiveSession) {
        let metrics = crate::session();
        let live = session(config).expect("in-memory live session opens");
        (metrics, live)
    }

    #[test]
    fn disabled_helpers_are_noops_and_stream_parses_when_enabled() {
        let metrics = crate::session();
        // Disabled: nothing panics, nothing is recorded.
        assert!(!enabled());
        campaign_started("noop", 4, 0);
        wave_completed(2, 4, None);
        checkpoint_written("nowhere.json", 2);
        guard_tripped("base", "stagnated");
        campaign_finished(4, 4, "complete");
        assert_eq!(wave_grain(64), usize::MAX);

        let live = session(LiveConfig::default()).expect("session opens");
        assert!(enabled());
        assert_eq!(wave_grain(64), 8);
        assert_eq!(wave_grain(1), 1);
        assert_eq!(wave_grain(9), 2);
        campaign_started("fault_mc", 8, 2);
        wave_completed(5, 8, None);
        checkpoint_written("ckpt.json", 5);
        guard_tripped("base", "non-finite");
        campaign_finished(8, 8, "complete");
        let report = live.finish();
        assert!(!enabled());
        assert!(report.events >= 5, "events={}", report.events);
        assert_eq!(report.dropped, 0);
        for line in &report.lines {
            let value = parse_json(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert!(value.get("event").is_some(), "{line}");
            assert!(value.get("t_s").is_some(), "{line}");
        }
        let wave = report
            .lines
            .iter()
            .find(|l| l.contains("wave_completed"))
            .expect("wave event present");
        let value = parse_json(wave).expect("wave line parses");
        assert_eq!(value.get("done").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(value.get("total").and_then(|v| v.as_f64()), Some(8.0));
        assert!(value.get("eta_s").is_some());
        assert!(value.get("items_per_s").is_some());
        drop(metrics);
    }

    #[test]
    fn tap_sees_every_line_and_retain_off_keeps_nothing() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
        let sink = Arc::clone(&seen);
        // A bound far below the emission count: with retention off it
        // must not drop anything.
        let mut config = LiveConfig::default()
            .with_retain(false)
            .with_tap(LiveTap::new(move |line| {
                sink.lock().unwrap().push(line.to_string());
            }));
        config.capacity = 2;
        let (metrics, live) = locked_session(config);
        campaign_started("tapped", 4, 0);
        wave_completed(2, 4, None);
        wave_completed(4, 4, None);
        campaign_finished(4, 4, "complete");
        let report = live.finish();
        assert_eq!(report.dropped, 0, "retain-off streams never drop");
        assert!(report.lines.is_empty(), "retain-off keeps no lines");
        assert_eq!(report.events, 4);
        let tapped = seen.lock().unwrap();
        assert_eq!(tapped.len(), 4, "{tapped:?}");
        for line in tapped.iter() {
            let value = parse_json(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert!(value.get("event").is_some(), "{line}");
        }
        assert!(tapped[0].contains("campaign_started"));
        assert!(tapped[3].contains("campaign_finished"));
        drop(metrics);
    }

    #[test]
    fn deadline_projection_emits_approaching_event() {
        let (metrics, live) = locked_session(LiveConfig::default());
        campaign_started("slow", 1_000, 0);
        // One item done: the ETA for 999 more at this rate dwarfs a 1 ms
        // budget, so the deadline event must fire.
        std::thread::sleep(Duration::from_millis(2));
        wave_completed(1, 1_000, Some(Duration::from_millis(1)));
        let report = live.finish();
        assert!(
            report.lines.iter().any(|l| l.contains("deadline_approaching")),
            "{:?}",
            report.lines
        );
        drop(metrics);
    }

    #[test]
    fn sampler_captures_counter_deltas_and_exports() {
        static SAMPLED: crate::Counter = crate::Counter::new("live.test.sampled");
        let (metrics, live) = locked_session(
            LiveConfig::default().with_sample_period(Duration::ZERO),
        );
        SAMPLED.add(3);
        campaign_started("sampled", 2, 0);
        SAMPLED.add(4);
        wave_completed(2, 2, None);
        let report = live.finish();
        assert!(!report.samples.is_empty());
        let total: u64 = report
            .samples
            .points
            .iter()
            .filter_map(|p| p.counters.get("live.test.sampled"))
            .sum();
        assert_eq!(total, 7, "{:?}", report.samples);
        for line in report.samples.to_ndjson().lines() {
            parse_json(line).expect("sample NDJSON parses");
        }
        let csv = report.samples.to_csv();
        assert!(csv.starts_with("t_s,kind,name,value\n"));
        assert!(csv.contains(",counter,live.test.sampled,"));
        drop(metrics);
    }

    #[test]
    fn stream_bound_drops_and_counts_excess() {
        let (metrics, live) = locked_session(LiveConfig {
            capacity: 2,
            sample_period: Duration::from_secs(3600),
            ..LiveConfig::default()
        });
        for i in 0..5 {
            checkpoint_written("ckpt.json", i);
        }
        let report = live.finish();
        assert_eq!(report.lines.len(), 2);
        assert_eq!(report.events, 2);
        assert_eq!(report.dropped, 3);
        drop(metrics);
    }

    #[test]
    fn file_sink_receives_flushed_lines() {
        let path = std::env::temp_dir().join(format!(
            "mnsim_live_sink_{}.ndjson",
            std::process::id()
        ));
        let path_str = path.to_string_lossy().to_string();
        let (metrics, live) = locked_session(LiveConfig::default().to_path(&path_str));
        campaign_started("sink", 1, 0);
        campaign_finished(1, 1, "complete");
        let report = live.finish();
        let on_disk = std::fs::read_to_string(&path).expect("sink file exists");
        let disk_lines: Vec<&str> = on_disk.lines().collect();
        assert_eq!(disk_lines.len(), report.lines.len());
        for (disk, mem) in disk_lines.iter().zip(&report.lines) {
            assert_eq!(disk, mem);
        }
        let _ = std::fs::remove_file(&path);
        drop(metrics);
    }
}
