//! Hierarchical structured tracing: a lock-light, thread-aware event
//! buffer of typed events (span begin/end, instants, counter samples,
//! module-perf attributions) with explicit parent/child span IDs.
//!
//! Where the metric registry ([`crate::Counter`] & friends) answers *how
//! often* and *how long in aggregate*, the trace subsystem answers *where
//! in the hierarchy*: a simulation run yields a tree that mirrors the
//! paper's structure — run → layer → bank → unit → module — and parallel
//! work (fault-sim trials, DSE chunks) lands in per-thread lanes that stay
//! attributed to the spawning span through explicit parent IDs.
//!
//! # Design
//!
//! * **Off by default, one relaxed atomic when off.** Every entry point
//!   first reads [`enabled`]; a disabled [`span`] never reads the clock,
//!   never allocates, and never touches a lock.
//! * **Lock-light when on.** Each thread buffers events in a
//!   thread-local `Vec` and only takes the global sink mutex once per
//!   `FLUSH_THRESHOLD` events (and at thread exit), so tracing a
//!   fault-sim worker pool never serializes the workers on a shared lock.
//! * **Bounded.** The sink is capped ([`DEFAULT_CAPACITY`] events);
//!   overflow drops the newest events and counts them, so a runaway sweep
//!   degrades to an incomplete trace instead of unbounded memory.
//! * **Self-contained events.** `End` events repeat the span's name,
//!   level and parent, so exporters never need cross-event joins to
//!   recover the tree.
//!
//! # Collection contract
//!
//! [`session`] opens an exclusive trace window (its own lock, independent
//! of the metrics [`crate::session`]); [`Session::finish`] disables
//! tracing, flushes the calling thread's buffer and drains the sink.
//! Worker threads flush their buffers when they exit, so **join every
//! traced worker before calling `finish`** (all in-repo parallelism uses
//! `std::thread::scope`, which guarantees this). Events still buffered in
//! a live thread at `finish` time are lost to that session.
//!
//! # Example
//!
//! ```
//! use mnsim_obs::trace;
//!
//! let session = trace::session();
//! {
//!     let _run = trace::span("run", trace::Level::Run);
//!     let _layer = trace::span_at("layer", trace::Level::Layer, 0);
//!     trace::module_perf("crossbar", 1e-9, 2e-12);
//! }
//! let t = session.finish();
//! assert_eq!(t.events.len(), 5); // 2 begins + 2 ends + 1 module sample
//! trace::validate_chrome_trace(&t.to_chrome_json()).unwrap();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::json::{parse_json, JsonValue};

/// Events a thread buffers locally before taking the sink lock.
const FLUSH_THRESHOLD: usize = 256;

/// Default sink capacity (events) before overflow drops the newest.
pub const DEFAULT_CAPACITY: usize = 1 << 22;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_LANE: AtomicU64 = AtomicU64::new(0);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// `true` if trace recording is globally enabled.
#[inline]
pub fn enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// The hierarchy level a span or sample belongs to, mirroring the paper's
/// Table-I structure plus the execution lanes this repo adds on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// A whole simulation / exploration run.
    Run,
    /// One neuromorphic layer (== one computation bank descriptor).
    Layer,
    /// Level-2: a computation bank.
    Bank,
    /// Level-3: a computation unit.
    Unit,
    /// A leaf module (crossbar / DAC / ADC / adder tree / pooling / neuron).
    Module,
    /// A pipeline stage of the top-level flow (accuracy, propagate, …).
    Stage,
    /// One Monte-Carlo fault trial.
    Trial,
    /// One parallel work chunk (DSE / fault-sim worker).
    Chunk,
    /// Anything else.
    Other,
}

impl Level {
    /// Stable lowercase name (used as the Chrome-trace `cat` field).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Run => "run",
            Level::Layer => "layer",
            Level::Bank => "bank",
            Level::Unit => "unit",
            Level::Module => "module",
            Level::Stage => "stage",
            Level::Trial => "trial",
            Level::Chunk => "chunk",
            Level::Other => "other",
        }
    }
}

/// What one [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened.
    Begin,
    /// Span closed.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled value attributed to the enclosing span.
    Counter,
    /// A module performance attribution: `value` carries the module's
    /// latency contribution in seconds, `value2` its dynamic energy in
    /// joules (both straight from the `ModulePerf` the report uses).
    ModulePerf,
}

/// One trace event. `End` events repeat `name`/`level`/`parent` so the
/// record is self-contained.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event type.
    pub kind: EventKind,
    /// Static label; rendered as `name[index]` when `index >= 0`.
    pub name: &'static str,
    /// Optional index (layer number, trial number, …); `-1` for none.
    pub index: i64,
    /// Hierarchy level.
    pub level: Level,
    /// Span ID (`Begin`/`End`), or the enclosing span for samples.
    pub id: u64,
    /// Parent span ID (0 = root).
    pub parent: u64,
    /// Thread lane (0 = first thread to record in the session).
    pub lane: u64,
    /// Nanoseconds since the process trace epoch.
    pub t_ns: u64,
    /// Sample payload (counter value, module latency seconds).
    pub value: f64,
    /// Second payload (module energy joules); 0.0 otherwise.
    pub value2: f64,
}

impl Event {
    /// `name[index]` or plain `name`.
    pub fn label(&self) -> String {
        if self.index >= 0 {
            format!("{}[{}]", self.name, self.index)
        } else {
            self.name.to_string()
        }
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn sink() -> &'static Mutex<Vec<Event>> {
    static SINK: OnceLock<Mutex<Vec<Event>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_sink() -> MutexGuard<'static, Vec<Event>> {
    sink().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Per-thread buffer + span stack. Flushed into the sink at threshold and
/// on thread exit (drop).
struct LocalBuf {
    generation: u64,
    lane: u64,
    stack: Vec<u64>,
    buf: Vec<Event>,
}

impl LocalBuf {
    fn new() -> Self {
        LocalBuf {
            generation: u64::MAX,
            lane: 0,
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// Re-syncs with the current session (lanes and span stacks reset per
    /// session so exports are deterministic for deterministic workloads).
    fn sync(&mut self) {
        let generation = GENERATION.load(Ordering::Relaxed);
        if self.generation != generation {
            self.generation = generation;
            self.lane = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
            self.stack.clear();
            self.buf.clear();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = lock_sink();
        let capacity = CAPACITY.load(Ordering::Relaxed);
        let room = capacity.saturating_sub(sink.len());
        if self.buf.len() > room {
            DROPPED.fetch_add((self.buf.len() - room) as u64, Ordering::Relaxed);
            self.buf.truncate(room);
        }
        sink.append(&mut self.buf);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        if self.generation == GENERATION.load(Ordering::Relaxed) {
            self.flush();
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf::new());
}

fn with_local<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> R {
    LOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        local.sync();
        f(&mut local)
    })
}

fn push_event(local: &mut LocalBuf, event: Event) {
    local.buf.push(event);
    if local.buf.len() >= FLUSH_THRESHOLD {
        local.flush();
    }
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII guard of an open span; records the `End` event on drop. Inert
/// when created while tracing is disabled.
#[derive(Debug)]
#[must_use = "dropping the guard immediately produces a zero-length span"]
pub struct SpanGuard {
    token: Option<SpanToken>,
}

#[derive(Debug)]
struct SpanToken {
    id: u64,
    parent: u64,
    name: &'static str,
    index: i64,
    level: Level,
}

impl SpanGuard {
    /// The span ID (0 for an inert guard). Pass to [`span_under`] to
    /// attribute work on other threads to this span.
    pub fn id(&self) -> u64 {
        self.token.as_ref().map_or(0, |t| t.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            let t_ns = now_ns();
            with_local(|local| {
                // The stack may have been cleared by a new session opening
                // while this guard was alive; only pop our own frame.
                if local.stack.last() == Some(&token.id) {
                    local.stack.pop();
                }
                push_event(
                    local,
                    Event {
                        kind: EventKind::End,
                        name: token.name,
                        index: token.index,
                        level: token.level,
                        id: token.id,
                        parent: token.parent,
                        lane: local.lane,
                        t_ns,
                        value: 0.0,
                        value2: 0.0,
                    },
                );
                // Closing a lane's outermost span flushes the lane. Worker
                // threads (scoped pools in dse / fault_sim) may be observed
                // as finished before their TLS destructors run, so the
                // drop-time flush alone could land after `Session::finish`
                // has already drained the sink.
                if local.stack.is_empty() {
                    local.flush();
                }
            });
        }
    }
}

fn open_span(name: &'static str, level: Level, index: i64, parent: Option<u64>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { token: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let t_ns = now_ns();
    let token = with_local(|local| {
        let parent = parent.unwrap_or_else(|| local.stack.last().copied().unwrap_or(0));
        local.stack.push(id);
        push_event(
            local,
            Event {
                kind: EventKind::Begin,
                name,
                index,
                level,
                id,
                parent,
                lane: local.lane,
                t_ns,
                value: 0.0,
                value2: 0.0,
            },
        );
        SpanToken {
            id,
            parent,
            name,
            index,
            level,
        }
    });
    SpanGuard { token: Some(token) }
}

/// Opens a span under the current thread's innermost open span.
#[inline]
pub fn span(name: &'static str, level: Level) -> SpanGuard {
    if !enabled() {
        return SpanGuard { token: None };
    }
    open_span(name, level, -1, None)
}

/// Opens an indexed span (`name[index]`) under the innermost open span.
#[inline]
pub fn span_at(name: &'static str, level: Level, index: i64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { token: None };
    }
    open_span(name, level, index, None)
}

/// Opens a span under an **explicit** parent — the cross-thread entry
/// point: capture [`current_span`] (or a guard's [`SpanGuard::id`]) before
/// spawning and hand it to the worker.
#[inline]
pub fn span_under(name: &'static str, level: Level, index: i64, parent: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { token: None };
    }
    open_span(name, level, index, Some(parent))
}

/// The innermost open span on this thread (0 if none / disabled).
pub fn current_span() -> u64 {
    if !enabled() {
        return 0;
    }
    with_local(|local| local.stack.last().copied().unwrap_or(0))
}

// ---------------------------------------------------------------------------
// Lane allocation
// ---------------------------------------------------------------------------

/// Reserves `count` consecutive lanes and returns the first one.
///
/// By default every thread is lazily assigned the next free lane the
/// first time it records an event, so lane numbers depend on which worker
/// happens to touch the trace first. A worker pool that wants *stable*
/// lane numbering (worker `w` always renders on the same lane) reserves a
/// block up front on the spawning thread and hands `base + w` to each
/// worker via [`pin_lane`].
///
/// Returns 0 without reserving anything while tracing is disabled.
pub fn reserve_lanes(count: u64) -> u64 {
    if !enabled() || count == 0 {
        return 0;
    }
    NEXT_LANE.fetch_add(count, Ordering::Relaxed)
}

/// Pins the calling thread to `lane` for the rest of the current session.
///
/// Use with a block from [`reserve_lanes`]: the spawning thread reserves
/// one lane per worker, and each worker pins its own before recording
/// anything. Pinning after the thread has already recorded events moves
/// only the *subsequent* events; a new [`session`] clears the pin (lanes
/// are session-scoped). No-op while tracing is disabled.
pub fn pin_lane(lane: u64) {
    if !enabled() {
        return;
    }
    with_local(|local| local.lane = lane);
}

fn push_sample(kind: EventKind, name: &'static str, level: Level, value: f64, value2: f64) {
    let t_ns = now_ns();
    with_local(|local| {
        let parent = local.stack.last().copied().unwrap_or(0);
        push_event(
            local,
            Event {
                kind,
                name,
                index: -1,
                level,
                id: parent,
                parent,
                lane: local.lane,
                t_ns,
                value,
                value2,
            },
        );
    });
}

/// Records a point-in-time marker attributed to the enclosing span.
#[inline]
pub fn instant(name: &'static str, level: Level, value: f64) {
    if enabled() {
        push_sample(EventKind::Instant, name, level, value, 0.0);
    }
}

/// Records a counter sample attributed to the enclosing span.
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if enabled() {
        push_sample(EventKind::Counter, name, Level::Other, value, 0.0);
    }
}

/// Records a module performance attribution: the module's latency
/// contribution (seconds) and dynamic energy (joules), straight from the
/// `ModulePerf` record the report aggregates.
#[inline]
pub fn module_perf(name: &'static str, latency_seconds: f64, energy_joules: f64) {
    if enabled() {
        push_sample(
            EventKind::ModulePerf,
            name,
            Level::Module,
            latency_seconds,
            energy_joules,
        );
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

static TRACE_SESSION_LOCK: Mutex<()> = Mutex::new(());

/// An exclusive tracing window. Independent of the metrics
/// [`crate::session`] — the two can be nested freely.
#[derive(Debug)]
pub struct Session {
    _guard: MutexGuard<'static, ()>,
}

/// Opens an exclusive trace session: takes the trace lock, clears the
/// sink, resets span IDs / lanes / drop counts, and enables recording.
pub fn session() -> Session {
    session_with_capacity(DEFAULT_CAPACITY)
}

/// [`session`] with a custom event capacity.
pub fn session_with_capacity(capacity: usize) -> Session {
    let guard = TRACE_SESSION_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    debug_assert!(
        !enabled(),
        "trace::session() opened while tracing is already enabled"
    );
    lock_sink().clear();
    DROPPED.store(0, Ordering::Relaxed);
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    NEXT_SPAN_ID.store(1, Ordering::Relaxed);
    NEXT_LANE.store(0, Ordering::Relaxed);
    // Invalidate every thread's cached lane / stack / buffered events.
    GENERATION.fetch_add(1, Ordering::Relaxed);
    TRACE_ENABLED.store(true, Ordering::Relaxed);
    Session { _guard: guard }
}

impl Session {
    /// Disables tracing and returns everything recorded. Join traced
    /// worker threads first (see the module docs).
    pub fn finish(self) -> Trace {
        TRACE_ENABLED.store(false, Ordering::Relaxed);
        with_local(LocalBuf::flush);
        let mut events = std::mem::take(&mut *lock_sink());
        // Stable sort on the timestamp alone: a same-timestamp tie must
        // keep the per-lane emission order (sorting by id as well could
        // move an `End` before a later-opened span's `Begin` and break the
        // per-lane stack discipline).
        events.sort_by_key(|e| e.t_ns);
        Trace {
            events,
            dropped: DROPPED.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// The collected trace and its exporters
// ---------------------------------------------------------------------------

/// A finished trace: events in timestamp order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// All collected events, in timestamp order (per-lane emission order
    /// preserved for same-timestamp ties).
    pub events: Vec<Event>,
    /// Events dropped to the capacity cap.
    pub dropped: u64,
}

/// A span reconstructed from its begin/end pair.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    label: String,
    name: &'static str,
    level: Level,
    parent: u64,
    lane: u64,
    start_ns: u64,
    end_ns: u64,
    children_ns: u64,
}

impl Node {
    fn total_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    fn self_ns(&self) -> u64 {
        self.total_ns().saturating_sub(self.children_ns)
    }
}

impl Trace {
    /// First event timestamp (the export origin), 0 for an empty trace.
    fn t0(&self) -> u64 {
        self.events.iter().map(|e| e.t_ns).min().unwrap_or(0)
    }

    /// Reconstructs the span tree: id → node, with per-node child time
    /// accumulated for self-time computation. Unmatched begins (span still
    /// open at finish) are closed at the last observed timestamp.
    fn nodes(&self) -> BTreeMap<u64, Node> {
        let mut nodes: BTreeMap<u64, Node> = BTreeMap::new();
        let last_ns = self.events.iter().map(|e| e.t_ns).max().unwrap_or(0);
        for event in &self.events {
            match event.kind {
                EventKind::Begin => {
                    nodes.insert(
                        event.id,
                        Node {
                            label: event.label(),
                            name: event.name,
                            level: event.level,
                            parent: event.parent,
                            lane: event.lane,
                            start_ns: event.t_ns,
                            end_ns: last_ns,
                            children_ns: 0,
                        },
                    );
                }
                EventKind::End => {
                    if let Some(node) = nodes.get_mut(&event.id) {
                        node.end_ns = event.t_ns;
                    }
                }
                _ => {}
            }
        }
        let spans: Vec<(u64, u64, u64)> = nodes
            .iter()
            .map(|(&id, n)| (id, n.parent, n.total_ns()))
            .collect();
        for (_, parent, total) in spans {
            if let Some(parent_node) = nodes.get_mut(&parent) {
                parent_node.children_ns += total;
            }
        }
        nodes
    }

    /// Serializes to Chrome trace-event JSON (the object form with a
    /// `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Timestamps are microseconds with nanosecond precision, normalized
    /// so the first event sits at `ts == 0`. Span begin/end map to
    /// `B`/`E` phases, instants to `i`, counters and module samples to
    /// `C`. Each lane becomes a `tid` with a thread-name metadata record.
    pub fn to_chrome_json(&self) -> String {
        let t0 = self.t0();
        let ts = |t_ns: u64| (t_ns - t0) as f64 / 1000.0;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut lanes: Vec<u64> = self.events.iter().map(|e| e.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for lane in &lanes {
            push_record(&mut out, &mut first, |out| {
                let _ = write!(
                    out,
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
                     \"args\":{{\"name\":\"lane-{lane}\"}}}}"
                );
            });
        }
        for event in &self.events {
            let label = event.label();
            match event.kind {
                EventKind::Begin | EventKind::End => {
                    let ph = if event.kind == EventKind::Begin { "B" } else { "E" };
                    push_record(&mut out, &mut first, |out| {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{label}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\
                             \"ts\":{ts:.3},\"pid\":1,\"tid\":{tid},\
                             \"args\":{{\"id\":{id},\"parent\":{parent}}}}}",
                            cat = event.level.as_str(),
                            ts = ts(event.t_ns),
                            tid = event.lane,
                            id = event.id,
                            parent = event.parent,
                        );
                    });
                }
                EventKind::Instant => {
                    push_record(&mut out, &mut first, |out| {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{label}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                             \"ts\":{ts:.3},\"pid\":1,\"tid\":{tid},\
                             \"args\":{{\"value\":{value}}}}}",
                            cat = event.level.as_str(),
                            ts = ts(event.t_ns),
                            tid = event.lane,
                            value = JsonNum(event.value),
                        );
                    });
                }
                EventKind::Counter => {
                    push_record(&mut out, &mut first, |out| {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{label}\",\"cat\":\"{cat}\",\"ph\":\"C\",\
                             \"ts\":{ts:.3},\"pid\":1,\"tid\":{tid},\
                             \"args\":{{\"value\":{value}}}}}",
                            cat = event.level.as_str(),
                            ts = ts(event.t_ns),
                            tid = event.lane,
                            value = JsonNum(event.value),
                        );
                    });
                }
                EventKind::ModulePerf => {
                    push_record(&mut out, &mut first, |out| {
                        let _ = write!(
                            out,
                            "{{\"name\":\"{label}\",\"cat\":\"module\",\"ph\":\"C\",\
                             \"ts\":{ts:.3},\"pid\":1,\"tid\":{tid},\
                             \"args\":{{\"time_s\":{time},\"energy_j\":{energy}}}}}",
                            ts = ts(event.t_ns),
                            tid = event.lane,
                            time = JsonNum(event.value),
                            energy = JsonNum(event.value2),
                        );
                    });
                }
            }
        }
        let _ = writeln!(
            out,
            "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped
        );
        out
    }

    /// Serializes to folded-stacks text (`path;to;span <self_ns>` per
    /// line), directly consumable by `inferno` / `flamegraph.pl`.
    pub fn to_folded(&self) -> String {
        let nodes = self.nodes();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for (id, node) in &nodes {
            let mut path = vec![node.label.clone()];
            let mut cursor = node.parent;
            let mut hops = 0;
            while cursor != 0 && hops < 64 {
                match nodes.get(&cursor) {
                    Some(parent) => {
                        path.push(parent.label.clone());
                        cursor = parent.parent;
                    }
                    None => break,
                }
                hops += 1;
            }
            path.reverse();
            let _ = id;
            *folded.entry(path.join(";")).or_insert(0) += node.self_ns();
        }
        let mut out = String::new();
        for (path, self_ns) in folded {
            let _ = writeln!(out, "{path} {self_ns}");
        }
        out
    }

    /// Aggregates the trace into a [`TraceSummary`].
    pub fn summary(&self) -> TraceSummary {
        let nodes = self.nodes();
        let mut levels: BTreeMap<String, LevelStats> = BTreeMap::new();
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        let mut root_ns = 0u64;
        for node in nodes.values() {
            if node.parent == 0 || !nodes.contains_key(&node.parent) {
                root_ns += node.total_ns();
            }
            let level = levels.entry(node.level.as_str().to_string()).or_default();
            level.spans += 1;
            level.total_ns += node.total_ns();
            level.self_ns += node.self_ns();
            let span = spans
                .entry(node.name.to_string())
                .or_insert_with(|| SpanStats {
                    level: node.level.as_str().to_string(),
                    ..SpanStats::default()
                });
            span.count += 1;
            span.total_ns += node.total_ns();
            span.self_ns += node.self_ns();
            span.max_ns = span.max_ns.max(node.total_ns());
        }
        let mut modules: BTreeMap<String, ModuleStats> = BTreeMap::new();
        for event in &self.events {
            if event.kind == EventKind::ModulePerf {
                let module = modules.entry(event.name.to_string()).or_default();
                module.samples += 1;
                module.time_s += event.value;
                module.energy_j += event.value2;
            }
        }
        TraceSummary {
            root_ns,
            levels,
            spans,
            modules,
            events: self.events.len(),
            dropped: self.dropped,
        }
    }

    /// Per-level **wall-clock** self time: the union of every span's
    /// self-time intervals (its own duration minus its children's
    /// intervals), merged across lanes, in nanoseconds per
    /// [`Level::as_str`] key.
    ///
    /// Contrast with [`TraceSummary::levels`]' `self_ns`, which *sums*
    /// self time over spans — on a parallel run N workers busy for 1 ms
    /// each sum to N ms of CPU time but only ~1 ms of wall time here.
    /// For any level, `wall ≤ summed self_ns`, with equality on a serial
    /// (non-overlapping) trace.
    pub fn level_self_wall_ns(&self) -> BTreeMap<String, u64> {
        let nodes = self.nodes();
        let mut child_intervals: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        for node in nodes.values() {
            child_intervals
                .entry(node.parent)
                .or_default()
                .push((node.start_ns, node.end_ns));
        }
        let mut per_level: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
        for (id, node) in &nodes {
            let children = child_intervals.get(id).map_or(&[][..], Vec::as_slice);
            let mut own = subtract_intervals((node.start_ns, node.end_ns), children);
            per_level
                .entry(node.level.as_str().to_string())
                .or_default()
                .append(&mut own);
        }
        per_level
            .into_iter()
            .map(|(level, intervals)| (level, union_ns(intervals)))
            .collect()
    }
}

/// `span` minus the union of `children`, as a list of disjoint intervals.
fn subtract_intervals(span: (u64, u64), children: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut clipped: Vec<(u64, u64)> = children
        .iter()
        .map(|&(s, e)| (s.max(span.0), e.min(span.1)))
        .filter(|&(s, e)| s < e)
        .collect();
    clipped.sort_unstable();
    let mut out = Vec::new();
    let mut cursor = span.0;
    for (s, e) in clipped {
        if s > cursor {
            out.push((cursor, s));
        }
        cursor = cursor.max(e);
    }
    if cursor < span.1 {
        out.push((cursor, span.1));
    }
    out
}

/// Total length of the union of `intervals`, in nanoseconds.
fn union_ns(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut open: Option<(u64, u64)> = None;
    for (s, e) in intervals {
        match open {
            Some((os, oe)) if s <= oe => open = Some((os, oe.max(e))),
            Some((os, oe)) => {
                total += oe - os;
                open = Some((s, e));
            }
            None => open = Some((s, e)),
        }
    }
    if let Some((os, oe)) = open {
        total += oe - os;
    }
    total
}

fn push_record(out: &mut String, first: &mut bool, write: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    write(out);
}

/// `Display` wrapper printing an f64 as a JSON number (`null` if
/// non-finite, full round-trip precision otherwise).
struct JsonNum(f64);

impl std::fmt::Display for JsonNum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_finite() {
            write!(f, "{:?}", self.0)
        } else {
            write!(f, "null")
        }
    }
}

// ---------------------------------------------------------------------------
// TraceSummary
// ---------------------------------------------------------------------------

/// Per-level aggregate times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Spans recorded at the level.
    pub spans: u64,
    /// Sum of wall-clock durations (children included).
    pub total_ns: u64,
    /// Sum of self times (children excluded).
    pub self_ns: u64,
}

/// Per-span-name aggregate times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// The level the span was recorded at.
    pub level: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of wall-clock durations (children included).
    pub total_ns: u64,
    /// Sum of self times (children excluded).
    pub self_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
}

/// Per-module modeled-performance attribution (from [`module_perf`]
/// samples — modeled nanoseconds/picojoules, not wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModuleStats {
    /// Samples recorded.
    pub samples: u64,
    /// Summed modeled latency contribution, seconds.
    pub time_s: f64,
    /// Summed modeled dynamic energy, joules.
    pub energy_j: f64,
}

/// Aggregated view of a [`Trace`]: per-level and per-span self/total
/// wall-clock time plus per-module modeled latency/energy attribution.
/// Attachable to `mnsim_core::simulate::Report`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSummary {
    /// Summed duration of root spans (the run's wall-clock).
    pub root_ns: u64,
    /// Per-level stats keyed by [`Level::as_str`].
    pub levels: BTreeMap<String, LevelStats>,
    /// Per-span-name stats.
    pub spans: BTreeMap<String, SpanStats>,
    /// Per-module modeled latency/energy attribution.
    pub modules: BTreeMap<String, ModuleStats>,
    /// Events in the trace.
    pub events: usize,
    /// Events dropped to the capacity cap.
    pub dropped: u64,
}

impl TraceSummary {
    /// Renders the summary as a human-readable table (the `repro --trace`
    /// walkthrough in the README reads this).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace summary — {} events, {} dropped, root {:.3} ms",
            self.events,
            self.dropped,
            self.root_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>14} {:>14}",
            "level", "spans", "total ms", "self ms"
        );
        for (level, stats) in &self.levels {
            let _ = writeln!(
                out,
                "  {:<10} {:>8} {:>14.3} {:>14.3}",
                level,
                stats.spans,
                stats.total_ns as f64 / 1e6,
                stats.self_ns as f64 / 1e6
            );
        }
        if !self.modules.is_empty() {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>14} {:>14}",
                "module", "samples", "model ns", "model pJ"
            );
            for (module, stats) in &self.modules {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>8} {:>14.3} {:>14.3}",
                    module,
                    stats.samples,
                    stats.time_s * 1e9,
                    stats.energy_j * 1e12
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Chrome-trace validator
// ---------------------------------------------------------------------------

/// Validates a Chrome trace-event JSON document: well-formed JSON, a
/// `traceEvents` array whose records carry the mandatory fields with the
/// right types, monotone non-negative normalized timestamps, and balanced
/// `B`/`E` stack discipline per `tid`.
///
/// # Errors
///
/// Returns a message naming the first violation.
pub fn validate_chrome_trace(input: &str) -> Result<(), String> {
    let root = parse_json(input)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut stacks: BTreeMap<i64, Vec<String>> = BTreeMap::new();
    for (i, record) in events.iter().enumerate() {
        let ph = record
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let name = record
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph == "M" {
            continue; // metadata records carry no timestamp
        }
        let ts = record
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < 0.0 || ts.is_nan() {
            return Err(format!("event {i}: negative ts {ts}"));
        }
        let tid = record
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as i64;
        record
            .get("pid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        match ph {
            "B" => stacks.entry(tid).or_default().push(name),
            "E" => {
                let top = stacks.entry(tid).or_default().pop().ok_or_else(|| {
                    format!("event {i}: E \"{name}\" without open B on tid {tid}")
                })?;
                if top != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes open span \"{top}\" on tid {tid}"
                    ));
                }
            }
            "i" | "C" | "X" => {}
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) left open: {:?}",
                stack.len(),
                stack
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracing_records_nothing() {
        let _lock = TRACE_SESSION_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        TRACE_ENABLED.store(false, Ordering::Relaxed);
        lock_sink().clear();
        {
            let guard = span("noop", Level::Run);
            assert_eq!(guard.id(), 0);
            counter("noop.counter", 1.0);
            module_perf("noop.module", 1.0, 1.0);
        }
        with_local(LocalBuf::flush);
        assert!(lock_sink().is_empty());
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn spans_nest_and_balance() {
        let session = session();
        {
            let run = span("run", Level::Run);
            assert_eq!(current_span(), run.id());
            {
                let layer = span_at("layer", Level::Layer, 0);
                assert_eq!(current_span(), layer.id());
                counter("points", 3.0);
            }
            assert_eq!(current_span(), run.id());
        }
        let trace = session.finish();
        assert_eq!(trace.dropped, 0);
        let begins: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .collect();
        let ends: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::End)
            .collect();
        assert_eq!(begins.len(), 2);
        assert_eq!(ends.len(), 2);
        // The layer's parent is the run.
        let run_id = begins[0].id;
        assert_eq!(begins[1].parent, run_id);
        // The counter sample is attributed to the layer.
        let sample = trace
            .events
            .iter()
            .find(|e| e.kind == EventKind::Counter)
            .unwrap();
        assert_eq!(sample.parent, begins[1].id);
    }

    #[test]
    fn cross_thread_spans_attach_to_explicit_parent() {
        let session = session();
        let parent_id;
        {
            let run = span("run", Level::Run);
            parent_id = run.id();
            std::thread::scope(|scope| {
                for t in 0..3i64 {
                    scope.spawn(move || {
                        let _trial = span_under("trial", Level::Trial, t, parent_id);
                    });
                }
            });
        }
        let trace = session.finish();
        let trials: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.name == "trial")
            .collect();
        assert_eq!(trials.len(), 3);
        for trial in &trials {
            assert_eq!(trial.parent, parent_id);
            assert_ne!(trial.lane, 0); // workers get their own lanes
        }
    }

    #[test]
    fn reserved_lanes_pin_workers_deterministically() {
        let session = session();
        let base = reserve_lanes(3);
        std::thread::scope(|scope| {
            for w in 0..3i64 {
                scope.spawn(move || {
                    pin_lane(base + w as u64);
                    let _chunk = span_at("chunk", Level::Chunk, w);
                });
            }
        });
        let trace = session.finish();
        for w in 0..3i64 {
            let begin = trace
                .events
                .iter()
                .find(|e| e.kind == EventKind::Begin && e.name == "chunk" && e.index == w)
                .expect("chunk span recorded");
            // Worker w always renders on lane base + w, regardless of which
            // thread touched the trace first.
            assert_eq!(begin.lane, base + w as u64, "worker {w}");
        }

        // Outside a session both calls degrade to no-ops.
        let _lock = TRACE_SESSION_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        TRACE_ENABLED.store(false, Ordering::Relaxed);
        assert_eq!(reserve_lanes(4), 0);
        pin_lane(17);
    }

    #[test]
    fn capacity_cap_counts_drops() {
        let session = session_with_capacity(8);
        for _ in 0..100 {
            let _s = span("tick", Level::Other);
        }
        let trace = session.finish();
        assert!(trace.events.len() <= 8);
        assert_eq!(trace.events.len() as u64 + trace.dropped, 200);
    }

    #[test]
    fn chrome_export_validates_and_folded_sums_to_root() {
        let session = session();
        {
            let _run = span("run", Level::Run);
            {
                let _layer = span_at("layer", Level::Layer, 0);
                module_perf("crossbar", 2e-9, 3e-12);
            }
            instant("checkpoint", Level::Stage, 1.0);
        }
        let trace = session.finish();
        let chrome = trace.to_chrome_json();
        validate_chrome_trace(&chrome).unwrap();
        assert!(chrome.contains("\"layer[0]\""));
        assert!(chrome.contains("\"time_s\":2e-9"));

        let folded = trace.to_folded();
        assert!(folded.contains("run;layer[0] "));
        let folded_total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        let summary = trace.summary();
        assert_eq!(folded_total, summary.root_ns);
    }

    #[test]
    fn summary_aggregates_levels_and_modules() {
        let session = session();
        {
            let _run = span("run", Level::Run);
            for i in 0..2 {
                let _layer = span_at("layer", Level::Layer, i);
                module_perf("adc", 1e-9, 4e-12);
                module_perf("adc", 1e-9, 4e-12);
            }
        }
        let trace = session.finish();
        let summary = trace.summary();
        assert_eq!(summary.levels["run"].spans, 1);
        assert_eq!(summary.levels["layer"].spans, 2);
        assert_eq!(summary.spans["layer"].count, 2);
        let adc = &summary.modules["adc"];
        assert_eq!(adc.samples, 4);
        assert!((adc.time_s - 4e-9).abs() < 1e-18);
        assert!((adc.energy_j - 16e-12).abs() < 1e-18);
        // Self times telescope to the root duration.
        let self_sum: u64 = summary.levels.values().map(|l| l.self_ns).sum();
        assert_eq!(self_sum, summary.root_ns);
        assert!(!summary.to_table().is_empty());
    }

    #[test]
    fn serial_wall_equals_summed_self_time() {
        let session = session();
        {
            let _run = span("run", Level::Run);
            for i in 0..2 {
                let _layer = span_at("layer", Level::Layer, i);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let trace = session.finish();
        let wall = trace.level_self_wall_ns();
        let summary = trace.summary();
        // Sequential spans never overlap: the interval union degenerates to
        // the plain sum for every level.
        for (level, stats) in &summary.levels {
            assert_eq!(wall[level], stats.self_ns, "level {level}");
        }
    }

    #[test]
    fn parallel_lanes_merge_to_less_wall_than_cpu() {
        let session = session();
        let parent_id;
        {
            let run = span("run", Level::Run);
            parent_id = run.id();
            std::thread::scope(|scope| {
                for w in 0..3i64 {
                    scope.spawn(move || {
                        let _chunk = span_under("chunk", Level::Chunk, w, parent_id);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    });
                }
            });
        }
        let trace = session.finish();
        let wall = trace.level_self_wall_ns();
        let summary = trace.summary();
        let cpu = summary.levels["chunk"].self_ns;
        // Three concurrent 20 ms spans: ~60 ms of summed (CPU) time but
        // only ~20 ms of merged wall time.
        assert!(wall["chunk"] <= cpu);
        assert!(
            wall["chunk"] < cpu - cpu / 3,
            "expected overlap: wall {} !< cpu {}",
            wall["chunk"],
            cpu
        );
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        for (doc, why) in [
            ("{}", "no traceEvents"),
            ("{\"traceEvents\": 3}", "not an array"),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":0}]}",
                "E without B",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0}]}",
                "unclosed span",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0},\
                 {\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":0}]}",
                "mismatched close",
            ),
            (
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":0}]}",
                "missing ts",
            ),
        ] {
            assert!(validate_chrome_trace(doc).is_err(), "accepted: {why}");
        }
    }
}
