//! A minimal JSON validity checker (RFC 8259 grammar, no value
//! materialization) so tests and tools can reject malformed metric dumps
//! without pulling in a JSON library.

/// Validates that `input` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first violation.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !bytes
                                .get(*pos + k)
                                .is_some_and(u8::is_ascii_hexdigit)
                            {
                                return Err(format!(
                                    "bad \\u escape at byte {}",
                                    *pos - 1
                                ));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("unescaped control byte at {}", *pos));
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {}", *pos));
    }
    // JSON forbids leading zeros like "01".
    if int_digits > 1 && bytes[if bytes[start] == b'-' { start + 1 } else { start }] == b'0' {
        return Err(format!("leading zero at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    Ok(())
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"hi \\u00e9\"",
            r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": 1.0e8}"#,
            " { \"k\" : [ ] } ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "{'single': 1}",
            "NaN",
        ] {
            assert!(validate_json(doc).is_err(), "accepted: {doc}");
        }
    }
}
