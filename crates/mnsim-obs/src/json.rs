//! A minimal JSON checker and reader (RFC 8259 grammar) so tests and
//! tools can reject malformed metric dumps — and the trace validator and
//! benchmark-comparison mode can *read* documents back — without pulling
//! in a JSON library.

/// A materialized JSON value (see [`parse_json`]). Object keys keep
/// insertion order; duplicate keys keep the last value on lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, widened to `f64`.
    Number(f64),
    /// A string with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if this is a number that
    /// round-trips exactly through `u64` (handy for the integer fields of
    /// live telemetry events: `done`, `total`, `completed`, …).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses exactly one well-formed JSON value into a [`JsonValue`].
///
/// # Errors
///
/// Returns a message naming the byte offset of the first violation.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Validates that `input` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first violation.
pub fn validate_json(input: &str) -> Result<(), String> {
    parse_json(input).map(|_| ())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b't') => parse_literal(bytes, pos, b"true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
        None => Err(format!("unexpected end of input at byte {}", *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening '"'
    let mut out = String::new();
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => {
                        out.push('"');
                        *pos += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        *pos += 1;
                    }
                    Some(b'/') => {
                        out.push('/');
                        *pos += 1;
                    }
                    Some(b'b') => {
                        out.push('\u{8}');
                        *pos += 1;
                    }
                    Some(b'f') => {
                        out.push('\u{c}');
                        *pos += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        *pos += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        *pos += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        *pos += 1;
                    }
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, pos)?;
                        let scalar = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: require the paired low half.
                            if bytes.get(*pos) == Some(&b'\\')
                                && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 1;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "unpaired surrogate before byte {}",
                                        *pos
                                    ));
                                }
                                0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                return Err(format!("unpaired surrogate before byte {}", *pos));
                            }
                        } else if (0xDC00..0xE000).contains(&unit) {
                            return Err(format!("unpaired surrogate before byte {}", *pos));
                        } else {
                            unit
                        };
                        out.push(
                            char::from_u32(scalar)
                                .ok_or_else(|| format!("bad code point before byte {}", *pos))?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            c if c < 0x20 => {
                return Err(format!("unescaped control byte at {}", *pos));
            }
            _ => {
                // Copy one UTF-8 code point (input is &str, so boundaries
                // are trustworthy).
                let width = utf8_width(c);
                let end = (*pos + width).min(bytes.len());
                out.push_str(std::str::from_utf8(&bytes[*pos..end]).map_err(|_| {
                    format!("invalid UTF-8 at byte {}", *pos)
                })?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".into())
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses the `XXXX` of a `\u` escape; `pos` sits on the `u` on entry.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let mut unit = 0u32;
    for k in 1..=4 {
        let digit = bytes
            .get(*pos + k)
            .filter(|b| b.is_ascii_hexdigit())
            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos - 1))?;
        unit = unit * 16 + (*digit as char).to_digit(16).unwrap_or(0);
    }
    *pos += 5;
    Ok(unit)
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(literal) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {}", *pos));
    }
    // JSON forbids leading zeros like "01".
    if int_digits > 1 && bytes[if bytes[start] == b'-' { start + 1 } else { start }] == b'0' {
        return Err(format!("leading zero at byte {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected fraction digits at byte {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(format!("expected exponent digits at byte {}", *pos));
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("unparseable number at byte {start}"))
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e-3",
            "\"hi \\u00e9\"",
            r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": 1.0e8}"#,
            " { \"k\" : [ ] } ",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn parses_values_back() {
        let doc = r#"{"a": [1, -2.5e2, {"b": null}], "c": "x\ny", "ok": true}"#;
        let value = parse_json(doc).unwrap();
        let a = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-250.0));
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(value.get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(value.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("missing"), None);
        assert_eq!(value.as_object().unwrap().len(), 3);
    }

    #[test]
    fn decodes_unicode_escapes() {
        assert_eq!(
            parse_json("\"caf\\u00e9 \\ud83d\\ude00\"").unwrap(),
            JsonValue::String("café 😀".into())
        );
        assert!(parse_json("\"\\ud83d alone\"").is_err()); // unpaired surrogate
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "01",
            "1.",
            "nul",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "{'single': 1}",
            "NaN",
        ] {
            assert!(validate_json(doc).is_err(), "accepted: {doc}");
        }
    }
}
