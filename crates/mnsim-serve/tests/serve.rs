//! End-to-end tests of the session server over a real unix socket:
//! handshake and schema rejection, cache-hit speedup, in-flight
//! deduplication, concurrent-client bit-identity, eviction under a tiny
//! budget, backpressure, and the metrics artifact.
//!
//! Every test boots its own server (on its own socket path) inside this
//! process. The server owns the process-global obs metrics + live
//! sessions, so the tests serialize through one lock.

use std::io::{BufRead, BufReader, Write};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mnsim_core::fault_sim::FaultConfig;
use mnsim_core::report::report_json;
use mnsim_core::{Config, ExecOptions, Simulator};
use mnsim_obs::{parse_json, JsonValue};
use mnsim_serve::client::Client;
use mnsim_serve::server::{connect_stream, serve, ServeOptions};
use mnsim_tech::fault::FaultRates;

static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SERVER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn socket_path(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("mnsim_serve_{tag}_{}.sock", std::process::id()))
        .to_string_lossy()
        .to_string()
}

/// Boots a server on `path`, runs `body`, then shuts the server down
/// (via a dedicated client) and joins it.
fn with_server<T>(options: ServeOptions, body: impl FnOnce(&str) -> T) -> T {
    let path = options.socket.clone().expect("tests use socket mode");
    let server = std::thread::spawn(move || serve(options));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !std::path::Path::new(&path).exists() {
        if server.is_finished() {
            panic!("server exited early: {:?}", server.join());
        }
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The socket file exists slightly before accept() runs; connects are
    // retried below via Client::connect's error propagation.
    //
    // The body runs under catch_unwind so a failing assertion still shuts
    // the server down — a leaked server holds the process-global obs
    // session and would starve every later test in this binary.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&path)));
    let mut stopper = Client::connect(&path).expect("shutdown client connects");
    stopper.shutdown().expect("shutdown request sends");
    server
        .join()
        .expect("server thread joins")
        .expect("server exits cleanly");
    match result {
        Ok(value) => value,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

fn options(tag: &str) -> ServeOptions {
    ServeOptions {
        socket: Some(socket_path(tag)),
        workers: 2,
        ..ServeOptions::default()
    }
}

/// The response's embedded result, as raw JSON text.
fn result_text(response: &str) -> &str {
    let start = response
        .find("\"result\":")
        .expect("response carries a result")
        + "\"result\":".len();
    // The result runs to the closing brace of the response object.
    &response[start..response.len() - 1]
}

fn cache_kind(response: &str) -> String {
    parse_json(response)
        .expect("response parses")
        .get("cache")
        .and_then(JsonValue::as_str)
        .expect("response carries a cache kind")
        .to_string()
}

fn assert_ok(response: &str) {
    let value = parse_json(response).expect("response parses");
    assert_eq!(
        value.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{response}"
    );
}

const FAULT_REQ: &str = r#"{"type":"request","id":1,"op":"fault_mc","mlp":[64,32],"trials":12,"seed":7,"rate":0.02}"#;

#[test]
fn handshake_rejects_schema_mismatch_with_typed_error() {
    let _guard = lock();
    with_server(options("handshake"), |path| {
        // A well-behaved client handshakes fine.
        drop(Client::connect(path).expect("matching version connects"));

        // A mismatched version gets a typed `schema_mismatch` error.
        let mut stream = connect_stream(path).expect("raw stream connects");
        writeln!(stream, "{{\"type\":\"hello\",\"schema_version\":999}}").unwrap();
        stream.flush().unwrap();
        let mut reply = String::new();
        BufReader::new(&stream).read_line(&mut reply).unwrap();
        let value = parse_json(reply.trim()).expect("rejection parses");
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("schema_mismatch"),
            "{reply}"
        );
        // The connection closes after the rejection.
        let mut rest = String::new();
        let n = BufReader::new(&stream).read_line(&mut rest).unwrap();
        assert_eq!(n, 0, "connection stays open after rejection: {rest:?}");
    });
}

#[test]
fn ping_stats_and_typed_request_errors() {
    let _guard = lock();
    with_server(options("ops"), |path| {
        let mut client = Client::connect(path).expect("connects");
        let pong = client
            .call(r#"{"type":"request","id":1,"op":"ping"}"#)
            .unwrap();
        assert_ok(&pong.response);
        assert!(pong.response.contains("\"pong\":true"), "{}", pong.response);

        let stats = client
            .call(r#"{"type":"request","id":2,"op":"stats"}"#)
            .unwrap();
        assert_ok(&stats.response);
        assert!(stats.response.contains("\"cache\""), "{}", stats.response);

        // Unsupported op: typed error, connection stays usable.
        let bad = client
            .call(r#"{"type":"request","id":3,"op":"warp"}"#)
            .unwrap();
        assert!(bad.response.contains("unsupported_op"), "{}", bad.response);

        // Config error: the full typed ConfigError list rides the wire.
        let invalid = client
            .call(r#"{"type":"request","id":4,"op":"simulate","config":"Crossbar_Size = 100\n"}"#)
            .unwrap();
        let value = parse_json(&invalid.response).unwrap();
        let error = value.get("error").expect("typed error payload");
        assert_eq!(
            error.get("code").and_then(JsonValue::as_str),
            Some("config")
        );
        assert!(
            error.get("errors").and_then(JsonValue::as_array).is_some(),
            "{}",
            invalid.response
        );

        // Still alive afterwards.
        let again = client
            .call(r#"{"type":"request","id":5,"op":"ping"}"#)
            .unwrap();
        assert_ok(&again.response);
    });
}

#[test]
fn second_identical_request_hits_the_cache_and_is_faster() {
    let _guard = lock();
    with_server(options("speedup"), |path| {
        let mut client = Client::connect(path).expect("connects");

        let start = Instant::now();
        let first = client.call(FAULT_REQ).unwrap();
        let first_elapsed = start.elapsed();
        assert_ok(&first.response);
        assert_eq!(cache_kind(&first.response), "miss");
        // The fault campaign streams progress events while evaluating.
        assert!(
            first.events.iter().any(|e| e.contains("campaign_started")),
            "{:?}",
            first.events
        );
        assert!(
            first.events.iter().any(|e| e.contains("campaign_finished")),
            "{:?}",
            first.events
        );

        let start = Instant::now();
        let second = client.call(FAULT_REQ).unwrap();
        let second_elapsed = start.elapsed();
        assert_ok(&second.response);
        assert_eq!(cache_kind(&second.response), "hit");
        assert!(second.events.is_empty(), "hits evaluate nothing");

        // Bit-identical payloads, and the hit must be at least twice as
        // fast as the evaluation (in practice it is orders of magnitude).
        assert_eq!(result_text(&first.response), result_text(&second.response));
        assert!(
            second_elapsed * 2 <= first_elapsed,
            "hit not >=2x faster: first={first_elapsed:?} second={second_elapsed:?}"
        );

        // The wire result embeds the canonical report of a local run.
        let local = Simulator::new(Config::fully_connected_mlp(&[64, 32]).unwrap())
            .faults(FaultConfig {
                rates: FaultRates::stuck_at(0.02),
                trials: 12,
                seed: 7,
                ..FaultConfig::default()
            })
            .options(ExecOptions::default())
            .run()
            .unwrap();
        assert!(
            first.response.contains(&report_json(&local)),
            "wire result differs from local evaluation"
        );
    });
}

#[test]
fn pipelined_identical_requests_share_one_evaluation() {
    let _guard = lock();
    let mut opts = options("dedup");
    opts.workers = 1;
    with_server(opts, |path| {
        let mut client = Client::connect(path).expect("connects");
        let req1 = r#"{"type":"request","id":10,"op":"fault_mc","mlp":[64,32],"trials":16,"seed":3,"rate":0.02}"#;
        let req2 = r#"{"type":"request","id":11,"op":"fault_mc","mlp":[64,32],"trials":16,"seed":3,"rate":0.02}"#;
        client.send_line(req1).unwrap();
        client.send_line(req2).unwrap();

        let mut responses = Vec::new();
        while responses.len() < 2 {
            let line = client.recv_line().unwrap().expect("server stays up");
            let value = parse_json(&line).unwrap();
            if value.get("type").and_then(JsonValue::as_str) == Some("response") {
                responses.push(line);
            }
        }
        for response in &responses {
            assert_ok(response);
        }
        // The owner reports the evaluation; the duplicate shares it.
        assert_eq!(cache_kind(&responses[0]), "miss", "{}", responses[0]);
        assert_eq!(cache_kind(&responses[1]), "shared", "{}", responses[1]);
        assert_eq!(result_text(&responses[0]), result_text(&responses[1]));

        let stats = client
            .call(r#"{"type":"request","id":12,"op":"stats"}"#)
            .unwrap();
        let value = parse_json(&stats.response).unwrap();
        let server_stats = value.get("result").and_then(|r| r.get("server")).unwrap();
        assert_eq!(
            server_stats.get("dedup_joined").and_then(JsonValue::as_u64),
            Some(1),
            "{}",
            stats.response
        );
        assert_eq!(
            server_stats.get("jobs_completed").and_then(JsonValue::as_u64),
            Some(1),
            "{}",
            stats.response
        );
    });
}

/// Satellite 4, part 1: N concurrent clients submitting overlapping
/// fingerprints all get bit-identical results; exactly one `miss` per
/// distinct fingerprint; the dedup counter equals the `shared` count.
#[test]
fn concurrent_clients_get_bit_identical_results() {
    let _guard = lock();
    with_server(options("concurrent"), |path| {
        const CLIENTS: usize = 4;
        const PER_CLIENT: usize = 4;
        // Two distinct fingerprints, interleaved per client.
        let configs = ["[64,32]", "[96,48]"];
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let path = path.to_string();
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect(&path).expect("connects");
                let mut responses = Vec::new();
                for i in 0..PER_CLIENT {
                    let mlp = configs[(c + i) % configs.len()];
                    let req = format!(
                        "{{\"type\":\"request\",\"id\":{i},\"op\":\"simulate\",\"mlp\":{mlp}}}"
                    );
                    let outcome = client.call(&req).expect("call completes");
                    responses.push((mlp, outcome.response));
                }
                responses
            }));
        }
        let all: Vec<(&str, String)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread joins"))
            .collect();
        assert_eq!(all.len(), CLIENTS * PER_CLIENT);

        let mut miss = 0usize;
        let mut shared = 0usize;
        for (mlp, response) in &all {
            assert_ok(response);
            match cache_kind(response).as_str() {
                "miss" => miss += 1,
                "shared" => shared += 1,
                "hit" => {}
                other => panic!("unexpected cache kind {other}: {response}"),
            }
            // Every response for a fingerprint is byte-identical to the
            // local evaluation of that config.
            let dims: Vec<usize> = match *mlp {
                "[64,32]" => vec![64, 32],
                _ => vec![96, 48],
            };
            let local = Simulator::new(Config::fully_connected_mlp(&dims).unwrap())
                .run()
                .unwrap();
            assert!(
                response.contains(&report_json(&local)),
                "response for {mlp} differs from local evaluation"
            );
        }
        assert_eq!(miss, configs.len(), "one evaluation per fingerprint");

        let mut client = Client::connect(path).expect("stats client connects");
        let stats = client
            .call(r#"{"type":"request","id":99,"op":"stats"}"#)
            .unwrap();
        let value = parse_json(&stats.response).unwrap();
        let server_stats = value.get("result").and_then(|r| r.get("server")).unwrap();
        assert_eq!(
            server_stats.get("dedup_joined").and_then(JsonValue::as_u64),
            Some(shared as u64),
            "dedup counter equals duplicates joined: {}",
            stats.response
        );
    });
}

/// Satellite 4, part 2: a pathologically small budget evicts every
/// artifact immediately, yet never corrupts an in-flight job — every
/// response is still correct and bit-identical.
#[test]
fn tiny_cache_budget_never_corrupts_results() {
    let _guard = lock();
    let mut opts = options("evict");
    opts.cache_bytes = 1;
    with_server(opts, |path| {
        let local = Simulator::new(Config::fully_connected_mlp(&[64, 32]).unwrap())
            .run()
            .unwrap();
        let local_json = report_json(&local);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let path = path.to_string();
            let local_json = local_json.clone();
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect(&path).expect("connects");
                for i in 0..3 {
                    let req = format!(
                        "{{\"type\":\"request\",\"id\":{i},\"op\":\"simulate\",\"mlp\":[64,32]}}"
                    );
                    let outcome = client.call(&req).expect("call completes");
                    assert_ok(&outcome.response);
                    // Never a stale hit (everything evicts), never wrong.
                    assert_ne!(cache_kind(&outcome.response), "hit");
                    assert!(
                        outcome.response.contains(&local_json),
                        "evicting cache corrupted a result: {}",
                        outcome.response
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().expect("client thread joins");
        }
        let mut client = Client::connect(path).expect("connects");
        let stats = client
            .call(r#"{"type":"request","id":50,"op":"stats"}"#)
            .unwrap();
        let value = parse_json(&stats.response).unwrap();
        let cache = value.get("result").and_then(|r| r.get("cache")).unwrap();
        assert!(
            cache.get("evictions").and_then(JsonValue::as_u64).unwrap() > 0,
            "tiny budget must evict: {}",
            stats.response
        );
    });
}

#[test]
fn overflowing_a_client_queue_returns_backpressure() {
    let _guard = lock();
    let mut opts = options("backpressure");
    opts.workers = 1;
    opts.max_pending_per_client = 1;
    with_server(opts, |path| {
        let mut client = Client::connect(path).expect("connects");
        // A slow job occupies the single pending slot...
        client.send_line(FAULT_REQ).unwrap();
        // ... so a second, distinct job (different fingerprint — identical
        // ones would dedup-join) must be rejected with a typed error.
        client
            .send_line(r#"{"type":"request","id":2,"op":"simulate","mlp":[96,48]}"#)
            .unwrap();
        let mut responses = Vec::new();
        while responses.len() < 2 {
            let line = client.recv_line().unwrap().expect("server stays up");
            let value = parse_json(&line).unwrap();
            if value.get("type").and_then(JsonValue::as_str) == Some("response") {
                responses.push(line);
            }
        }
        // The rejection arrives first (the fault job is still running).
        let value = parse_json(&responses[0]).unwrap();
        assert_eq!(value.get("id").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(JsonValue::as_str),
            Some("backpressure"),
            "{}",
            responses[0]
        );
        assert_ok(&responses[1]);
    });
}

#[test]
fn shutdown_writes_the_metrics_artifact() {
    let _guard = lock();
    let metrics_path = std::env::temp_dir()
        .join(format!("mnsim_serve_metrics_{}.json", std::process::id()))
        .to_string_lossy()
        .to_string();
    let mut opts = options("metrics");
    opts.metrics_path = Some(metrics_path.clone());
    with_server(opts, |path| {
        let mut client = Client::connect(path).expect("connects");
        let first = client.call(FAULT_REQ).unwrap();
        assert_ok(&first.response);
        let second = client.call(FAULT_REQ).unwrap();
        assert_eq!(cache_kind(&second.response), "hit");
    });
    let snapshot = std::fs::read_to_string(&metrics_path).expect("metrics artifact written");
    let value = parse_json(&snapshot).expect("metrics artifact parses");
    let counters = value.get("counters").expect("counters section");
    for counter in [
        "serve.requests",
        "serve.responses",
        "serve.jobs.completed",
        "cache.artifact.hits",
        "cache.artifact.inserts",
    ] {
        let count = counters.get(counter).and_then(JsonValue::as_u64);
        assert!(
            count.unwrap_or(0) > 0,
            "counter {counter} missing/zero in {snapshot}"
        );
    }
    let _ = std::fs::remove_file(&metrics_path);
}
