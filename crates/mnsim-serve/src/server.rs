//! The session server: worker pool, fairness queue, in-flight
//! deduplication, and the cross-request artifact cache.
//!
//! # Architecture
//!
//! One [`serve`] call owns the whole process lifecycle:
//!
//! * a **listener** (unix socket, or the process's stdio when
//!   [`ServeOptions::socket`] is `None`) accepting line-delimited JSON
//!   clients after a [`SCHEMA_VERSION`] handshake;
//! * one **reader thread per client** parsing requests and either
//!   answering immediately (`ping`, `stats`, cache hits, typed errors,
//!   backpressure rejections) or enqueueing a job;
//! * a small **worker pool** draining the job queues with per-client
//!   round-robin fairness, evaluating through
//!   [`Session`](mnsim_core::simulator::Session) so every finished
//!   artifact lands in the shared [`ArtifactCache`];
//! * a process-wide **live-telemetry tap** routing the campaign progress
//!   NDJSON of whichever job a worker is running to every client waiting
//!   on that job's fingerprint, as `event` lines.
//!
//! # Deduplication and fairness
//!
//! Jobs are keyed by the same FNV config fingerprint the cache and the
//! checkpoint layer use. A request whose fingerprint is already being
//! evaluated **joins** the in-flight job instead of spawning a second
//! evaluation: the owner's response reports `"cache":"miss"`, every
//! joiner gets the bit-identical result with `"cache":"shared"` (results
//! are deterministic at any thread count, so sharing is observationally
//! equivalent to re-running). Each client has its own FIFO queue and the
//! workers rotate across clients, so one client's burst cannot starve
//! another; a client exceeding [`ServeOptions::max_pending_per_client`]
//! queued jobs gets a typed `backpressure` error instead of unbounded
//! buffering.
//!
//! # Shutdown
//!
//! `SIGTERM`, `SIGINT`, a client `shutdown` message, or stdin EOF (in
//! stdio mode) all trigger the same path: reject *new* submissions with
//! `shutting_down`, drain every already-accepted job (queued and
//! executing) so its waiters still get their responses, join the
//! workers, write the metrics snapshot (when configured), and exit
//! cleanly. Piping a request batch followed by a `shutdown` line through
//! stdio therefore behaves as a one-shot batch evaluator.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use mnsim_core::cache::{Artifact, ArtifactCache};
use mnsim_core::config::Config;
use mnsim_core::dse::{Constraints, DesignSpace, DseResult};
use mnsim_core::error::CoreError;
use mnsim_core::fault_sim::FaultConfig;
use mnsim_core::report::report_json;
use mnsim_core::simulate::Report;
use mnsim_core::validate::ValidationRow;
use mnsim_core::{ExecOptions, Simulator};
use mnsim_obs as obs;
use mnsim_obs::live::{LiveConfig, LiveTap};

use crate::protocol::{
    error_line, event_line, hello_ok_line, interconnects_from_nm, parse_request, push_json_string,
    response_line, ConfigSpec, ErrorCode, Op, Request, WireError, SCHEMA_VERSION,
};

static SERVE_REQUESTS: obs::Counter = obs::Counter::new("serve.requests");
static SERVE_RESPONSES: obs::Counter = obs::Counter::new("serve.responses");
static SERVE_DEDUP_JOINED: obs::Counter = obs::Counter::new("serve.dedup.joined");
static SERVE_JOBS_COMPLETED: obs::Counter = obs::Counter::new("serve.jobs.completed");
static SERVE_BACKPRESSURE: obs::Counter = obs::Counter::new("serve.backpressure.rejected");
static SERVE_CLIENTS: obs::Counter = obs::Counter::new("serve.clients.accepted");
static SERVE_QUEUE_DEPTH: obs::Gauge = obs::Gauge::new("serve.queue.depth");

/// Configuration of one [`serve`] lifecycle.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix-socket path to listen on; `None` serves one client over the
    /// process's stdin/stdout (the `repro serve` default for piping).
    pub socket: Option<String>,
    /// Worker threads draining the job queue (`0` = 2).
    pub workers: usize,
    /// Artifact-cache byte budget
    /// ([`ArtifactCache::DEFAULT_BUDGET`] when 0).
    pub cache_bytes: usize,
    /// Queued-job bound per client before `backpressure` errors.
    pub max_pending_per_client: usize,
    /// Worker-thread count *inside* each evaluation (`0` = auto). The
    /// result is bit-identical for every choice.
    pub threads_per_job: usize,
    /// Write the final metrics snapshot (counters/gauges/histograms
    /// JSON) here on shutdown.
    pub metrics_path: Option<String>,
    /// Mirror the live-telemetry NDJSON stream to this file (events are
    /// always routed to waiting clients regardless).
    pub live_path: Option<String>,
}

impl Default for ServeOptions {
    /// Stdio transport, 2 workers, default cache budget, 16 pending
    /// jobs per client, auto threads per job, no artifact files.
    fn default() -> Self {
        ServeOptions {
            socket: None,
            workers: 2,
            cache_bytes: 0,
            max_pending_per_client: 16,
            threads_per_job: 0,
            metrics_path: None,
            live_path: None,
        }
    }
}

/// The evaluation payload of one queued job.
enum JobOp {
    Run {
        config: Config,
        faults: Option<FaultConfig>,
    },
    Validate {
        config: Config,
        matrices: usize,
        inputs_per_matrix: usize,
        seed: u64,
    },
    Dse {
        config: Config,
        space: DesignSpace,
        constraints: Constraints,
    },
}

/// One unit of queued work, owned by the client that submitted it.
struct Job {
    client: u64,
    key: u64,
    op: JobOp,
}

/// A response destination for one request: the submitting client's
/// writer and the request id to echo.
struct Waiter {
    writer: Arc<ClientWriter>,
    id: u64,
}

/// Serialized write half of one client connection. Lines are written
/// whole and flushed under the lock, so responses and events from
/// different threads never interleave mid-line; write errors are
/// swallowed (a vanished client just stops receiving).
struct ClientWriter {
    inner: Mutex<Box<dyn Write + Send>>,
}

impl ClientWriter {
    fn new(writer: Box<dyn Write + Send>) -> Self {
        ClientWriter {
            inner: Mutex::new(writer),
        }
    }

    fn send(&self, line: &str) {
        let mut guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(guard, "{line}");
        let _ = guard.flush();
    }
}

/// Queue/dedup state behind the shared mutex.
#[derive(Default)]
struct State {
    /// Per-client FIFO job queues.
    queues: BTreeMap<u64, VecDeque<Job>>,
    /// Round-robin order over client ids.
    rr: Vec<u64>,
    /// Next round-robin index to try.
    next: usize,
    /// Fingerprint → everyone waiting on that evaluation (owner first).
    inflight: HashMap<u64, Vec<Waiter>>,
    /// Per-client queued + executing job count (owners only; joiners
    /// ride the owner's job).
    pending: HashMap<u64, usize>,
}

impl State {
    fn queued(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    /// Pops the next job in round-robin client order.
    fn pop_next(&mut self) -> Option<Job> {
        let n = self.rr.len();
        for i in 0..n {
            let idx = (self.next + i) % n;
            let cid = self.rr[idx];
            if let Some(job) = self.queues.get_mut(&cid).and_then(VecDeque::pop_front) {
                self.next = (idx + 1) % n;
                return Some(job);
            }
        }
        None
    }
}

/// Everything the reader, worker, and tap threads share.
struct Shared {
    state: Mutex<State>,
    ready: Condvar,
    cache: Arc<ArtifactCache>,
    shutdown: AtomicBool,
    threads_per_job: usize,
    // Local mirrors of the obs counters, readable by the `stats` op
    // (the obs registry only exposes whole snapshots).
    requests: AtomicU64,
    responses: AtomicU64,
    dedup_joined: AtomicU64,
    jobs_completed: AtomicU64,
    backpressure_rejected: AtomicU64,
}

impl Shared {
    fn new(options: &ServeOptions) -> Self {
        let budget = if options.cache_bytes == 0 {
            ArtifactCache::DEFAULT_BUDGET
        } else {
            options.cache_bytes
        };
        Shared {
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
            cache: Arc::new(ArtifactCache::with_budget(budget)),
            shutdown: AtomicBool::new(false),
            threads_per_job: options.threads_per_job,
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            dedup_joined: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            backpressure_rejected: AtomicU64::new(0),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn respond(&self, writer: &ClientWriter, line: &str) {
        writer.send(line);
        self.responses.fetch_add(1, Ordering::Relaxed);
        SERVE_RESPONSES.inc();
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Signal handling (no external crates: raw libc `signal` symbol)
// ---------------------------------------------------------------------------

static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one atomic store; the accept/stdio loop polls.
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
    }
}

// ---------------------------------------------------------------------------
// Result serialization
// ---------------------------------------------------------------------------

fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        use std::fmt::Write as _;
        let _ = write!(out, "{value:?}");
    } else {
        out.push_str("null");
    }
}

fn simulate_result_json(report: &Report) -> String {
    format!("{{\"report\":{}}}", report_json(report))
}

fn validate_result_json(rows: &[ValidationRow]) -> String {
    let mut out = String::from("{\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"metric\":");
        push_json_string(&mut out, &row.metric);
        out.push_str(",\"mnsim\":");
        write_json_f64(&mut out, row.mnsim);
        out.push_str(",\"circuit\":");
        write_json_f64(&mut out, row.circuit);
        out.push_str(",\"unit\":");
        push_json_string(&mut out, row.unit);
        out.push_str(",\"relative_error\":");
        write_json_f64(&mut out, row.relative_error());
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn dse_result_json(result: &DseResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"evaluated\":");
    let _ = write!(out, "{}", result.evaluated);
    out.push_str(",\"feasible\":[");
    for (i, point) in result.feasible.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&report_json(&point.report));
    }
    out.push_str("]}");
    out
}

fn stats_result_json(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let cache = shared.cache.stats();
    let mut out = String::from("{\"cache\":{");
    let _ = write!(
        out,
        "\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"bytes\":{},\"entries\":{},\"budget\":{}}}",
        cache.hits,
        cache.misses,
        cache.insertions,
        cache.evictions,
        cache.bytes,
        cache.entries,
        cache.budget,
    );
    let _ = write!(
        out,
        ",\"server\":{{\"requests\":{},\"responses\":{},\"dedup_joined\":{},\
         \"jobs_completed\":{},\"backpressure_rejected\":{}}}}}",
        shared.requests.load(Ordering::Relaxed),
        shared.responses.load(Ordering::Relaxed),
        shared.dedup_joined.load(Ordering::Relaxed),
        shared.jobs_completed.load(Ordering::Relaxed),
        shared.backpressure_rejected.load(Ordering::Relaxed),
    );
    out
}

fn artifact_result_json(artifact: &Artifact) -> Option<String> {
    match artifact {
        Artifact::Report(report) => Some(simulate_result_json(report)),
        Artifact::Validation(rows) => Some(validate_result_json(rows)),
        Artifact::DseFront(result) => Some(dse_result_json(result)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Request handling (reader threads)
// ---------------------------------------------------------------------------

/// Builds the config of a compute op, mapping failures onto the wire.
fn build_config(spec: &ConfigSpec) -> Result<Config, WireError> {
    spec.build().map_err(|e| WireError::from_core(&e))
}

/// Turns a submitted op into its job payload + fingerprint, or answers
/// inline (`Err` carries the typed failure).
fn prepare_job(shared: &Shared, op: Op) -> Result<(u64, JobOp), WireError> {
    match op {
        Op::Simulate { config, faults } => {
            let config = build_config(&config)?;
            let faults = faults.map(|spec| spec.to_fault_config());
            let mut sim = Simulator::new(config.clone());
            if let Some(fault_config) = faults.clone() {
                sim = sim.faults(fault_config);
            }
            let key = sim
                .into_session_with(Arc::clone(&shared.cache))
                .run_fingerprint();
            Ok((key, JobOp::Run { config, faults }))
        }
        Op::Validate {
            config,
            matrices,
            inputs_per_matrix,
            seed,
        } => {
            let config = build_config(&config)?;
            let key = Simulator::new(config.clone())
                .into_session_with(Arc::clone(&shared.cache))
                .validate_fingerprint(matrices, inputs_per_matrix, seed);
            Ok((
                key,
                JobOp::Validate {
                    config,
                    matrices,
                    inputs_per_matrix,
                    seed,
                },
            ))
        }
        Op::Dse {
            config,
            crossbar_sizes,
            parallelism,
            interconnects_nm,
            max_crossbar_error,
        } => {
            let config = build_config(&config)?;
            let space = DesignSpace {
                crossbar_sizes,
                parallelism_degrees: parallelism,
                interconnects: interconnects_from_nm(&interconnects_nm)?,
            };
            let constraints = Constraints {
                max_crossbar_error,
                max_area_mm2: None,
                max_power_w: None,
            };
            let key = Simulator::new(config.clone())
                .into_session_with(Arc::clone(&shared.cache))
                .explore_fingerprint(&space, &constraints);
            Ok((
                key,
                JobOp::Dse {
                    config,
                    space,
                    constraints,
                },
            ))
        }
        Op::Ping | Op::Stats => unreachable!("answered inline"),
    }
}

/// Handles one submitted request on a reader thread: answer inline when
/// possible (ping/stats/hit/error/backpressure), otherwise enqueue or
/// join an in-flight job.
fn handle_submit(
    shared: &Shared,
    writer: &Arc<ClientWriter>,
    client: u64,
    max_pending: usize,
    id: u64,
    op: Op,
) {
    match op {
        Op::Ping => {
            shared.respond(writer, &response_line(id, "none", None, "{\"pong\":true}"));
            return;
        }
        Op::Stats => {
            let stats = stats_result_json(shared);
            shared.respond(writer, &response_line(id, "none", None, &stats));
            return;
        }
        _ => {}
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        let err = WireError::new(ErrorCode::ShuttingDown, "server is shutting down");
        shared.respond(writer, &error_line(Some(id), &err));
        return;
    }
    let (key, job_op) = match prepare_job(shared, op) {
        Ok(prepared) => prepared,
        Err(err) => {
            shared.respond(writer, &error_line(Some(id), &err));
            return;
        }
    };
    // Serve directly from the cache when the artifact already exists.
    if let Some(artifact) = shared.cache.get(key) {
        if let Some(result) = artifact_result_json(&artifact) {
            shared.respond(writer, &response_line(id, "hit", Some(key), &result));
            return;
        }
    }
    let mut state = shared.lock_state();
    if let Some(waiters) = state.inflight.get_mut(&key) {
        // Identical request already evaluating (or queued): join it.
        waiters.push(Waiter {
            writer: Arc::clone(writer),
            id,
        });
        shared.dedup_joined.fetch_add(1, Ordering::Relaxed);
        SERVE_DEDUP_JOINED.inc();
        return;
    }
    let pending = state.pending.entry(client).or_insert(0);
    if *pending >= max_pending {
        drop(state);
        shared.backpressure_rejected.fetch_add(1, Ordering::Relaxed);
        SERVE_BACKPRESSURE.inc();
        let err = WireError::new(
            ErrorCode::Backpressure,
            format!("client has {max_pending} jobs pending; retry after one completes"),
        );
        shared.respond(writer, &error_line(Some(id), &err));
        return;
    }
    *pending += 1;
    state.inflight.insert(
        key,
        vec![Waiter {
            writer: Arc::clone(writer),
            id,
        }],
    );
    if !state.rr.contains(&client) {
        state.rr.push(client);
    }
    state
        .queues
        .entry(client)
        .or_default()
        .push_back(Job { client, key, op: job_op });
    SERVE_QUEUE_DEPTH.set(state.queued() as f64);
    drop(state);
    shared.ready.notify_one();
}

/// Serves one client connection: handshake, then a request loop until
/// EOF or a `shutdown` message. `global_shutdown` is `true` when a
/// `shutdown` message from this client should stop the whole server
/// (always the case today — the protocol has no per-client detach).
fn serve_client(
    shared: &Arc<Shared>,
    reader: impl std::io::Read,
    writer: Arc<ClientWriter>,
    client: u64,
    max_pending: usize,
) {
    let mut lines = BufReader::new(reader).lines();
    // Handshake: the first line must be a matching `hello`.
    match lines.next() {
        Some(Ok(line)) => match parse_request(&line) {
            Ok(Request::Hello { schema_version }) if schema_version == SCHEMA_VERSION => {
                writer.send(&hello_ok_line());
            }
            Ok(Request::Hello { schema_version }) => {
                let err = WireError::new(
                    ErrorCode::SchemaMismatch,
                    format!(
                        "server speaks schema_version {SCHEMA_VERSION}, client sent \
                         {schema_version}"
                    ),
                );
                writer.send(&error_line(None, &err));
                return;
            }
            Ok(_) => {
                let err = WireError::new(
                    ErrorCode::SchemaMismatch,
                    "connection must open with a `hello` handshake",
                );
                writer.send(&error_line(None, &err));
                return;
            }
            Err(err) => {
                writer.send(&error_line(None, &err));
                return;
            }
        },
        _ => return,
    }
    for line in lines {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        SERVE_REQUESTS.inc();
        match parse_request(&line) {
            Ok(Request::Submit { id, op }) => {
                handle_submit(shared, &writer, client, max_pending, id, op);
            }
            Ok(Request::Hello { .. }) => writer.send(&hello_ok_line()),
            Ok(Request::Shutdown) => {
                shared.request_shutdown();
                break;
            }
            Err(err) => {
                // Best effort: echo the id when the line carried one.
                let id = obs::parse_json(line.trim())
                    .ok()
                    .and_then(|v| v.get("id").and_then(|i| i.as_u64()));
                shared.respond(&writer, &error_line(id, &err));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

thread_local! {
    /// Fingerprint of the job this worker thread is currently
    /// evaluating; the process-wide live tap uses it to route event
    /// lines to that job's waiters.
    static CURRENT_JOB: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// Executes one job's evaluation (on the worker thread).
fn execute(shared: &Shared, op: &JobOp) -> Result<String, CoreError> {
    let options = ExecOptions::with_threads(shared.threads_per_job);
    match op {
        JobOp::Run { config, faults } => {
            let mut sim = Simulator::new(config.clone()).options(options);
            if let Some(fault_config) = faults.clone() {
                sim = sim.faults(fault_config);
            }
            let report = sim.into_session_with(Arc::clone(&shared.cache)).run()?;
            Ok(simulate_result_json(&report))
        }
        JobOp::Validate {
            config,
            matrices,
            inputs_per_matrix,
            seed,
        } => {
            let rows = Simulator::new(config.clone())
                .options(options)
                .into_session_with(Arc::clone(&shared.cache))
                .validate(*matrices, *inputs_per_matrix, *seed)?;
            Ok(validate_result_json(&rows))
        }
        JobOp::Dse {
            config,
            space,
            constraints,
        } => {
            let result = Simulator::new(config.clone())
                .options(options)
                .into_session_with(Arc::clone(&shared.cache))
                .explore(space, constraints)?;
            Ok(dse_result_json(&result))
        }
    }
}

/// The worker loop: round-robin pop, evaluate, respond to every waiter.
fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if let Some(job) = state.pop_next() {
                    SERVE_QUEUE_DEPTH.set(state.queued() as f64);
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (next, _) = shared
                    .ready
                    .wait_timeout(state, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                state = next;
            }
        };
        let Some(job) = job else { return };
        CURRENT_JOB.with(|c| c.set(Some(job.key)));
        let outcome = execute(&shared, &job.op);
        CURRENT_JOB.with(|c| c.set(None));
        let waiters = {
            let mut state = shared.lock_state();
            if let Some(count) = state.pending.get_mut(&job.client) {
                *count = count.saturating_sub(1);
            }
            state.inflight.remove(&job.key).unwrap_or_default()
        };
        // Count the job before responding: a client that has its response
        // in hand must observe `jobs_completed` covering its own job in a
        // follow-up `stats` request.
        shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        SERVE_JOBS_COMPLETED.inc();
        match outcome {
            Ok(result) => {
                for (i, waiter) in waiters.iter().enumerate() {
                    let cache = if i == 0 { "miss" } else { "shared" };
                    shared.respond(
                        &waiter.writer,
                        &response_line(waiter.id, cache, Some(job.key), &result),
                    );
                }
            }
            Err(err) => {
                let wire = WireError::from_core(&err);
                for waiter in &waiters {
                    shared.respond(&waiter.writer, &error_line(Some(waiter.id), &wire));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server lifecycle
// ---------------------------------------------------------------------------

/// Runs the session server until shutdown (signal, `shutdown` message,
/// or stdio EOF). Blocks the calling thread for the server's lifetime.
///
/// The server owns the process-wide metrics and live-telemetry sessions
/// for its whole life: per-job `metrics`/`trace` attachments are
/// disabled (they are per-run artifacts, excluded from cached results
/// anyway), and campaign progress events stream to waiting clients via
/// the live tap.
///
/// # Errors
///
/// Returns a message when the socket cannot be bound or an artifact
/// sink cannot be created. Evaluation failures are per-request wire
/// errors, never a server exit.
pub fn serve(options: ServeOptions) -> Result<(), String> {
    let shared = Arc::new(Shared::new(&options));

    // Metrics first, then live — the sampler reads the metric registry.
    let metrics_session = obs::session();
    let tap_shared = Arc::clone(&shared);
    let tap = LiveTap::new(move |line| {
        let Some(key) = CURRENT_JOB.with(|c| c.get()) else {
            return;
        };
        let waiters: Vec<(Arc<ClientWriter>, u64)> = {
            let state = tap_shared.lock_state();
            state
                .inflight
                .get(&key)
                .map(|ws| ws.iter().map(|w| (Arc::clone(&w.writer), w.id)).collect())
                .unwrap_or_default()
        };
        for (writer, id) in waiters {
            writer.send(&event_line(id, line));
        }
    });
    let mut live_config = LiveConfig::default().with_tap(tap).with_retain(false);
    live_config.path = options.live_path.clone();
    let live_session = obs::live::session(live_config)?;

    let workers: Vec<_> = (0..options.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(shared))
        })
        .collect();

    install_signal_handlers();
    let max_pending = options.max_pending_per_client.max(1);

    match &options.socket {
        Some(path) => {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind unix socket `{path}`: {e}"))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("cannot poll unix socket `{path}`: {e}"))?;
            eprintln!("mnsim-serve: listening on {path} (schema_version {SCHEMA_VERSION})");
            let mut client_seq = 0u64;
            loop {
                if SIGNALLED.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        client_seq += 1;
                        SERVE_CLIENTS.inc();
                        let client = client_seq;
                        let shared = Arc::clone(&shared);
                        let write_half = stream
                            .try_clone()
                            .map(|s| Arc::new(ClientWriter::new(Box::new(s))));
                        let Ok(writer) = write_half else { continue };
                        std::thread::spawn(move || {
                            serve_client(&shared, stream, writer, client, max_pending);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            }
            shared.request_shutdown();
            // Workers drain every accepted job before exiting (only *new*
            // submissions are rejected once the flag is set), so a batch
            // piped ahead of a shutdown line is answered in full.
            for worker in workers {
                let _ = worker.join();
            }
            let _ = std::fs::remove_file(path);
        }
        None => {
            // Stdio mode: one client, read on this thread. EOF = goodbye.
            SERVE_CLIENTS.inc();
            let writer = Arc::new(ClientWriter::new(Box::new(std::io::stdout())));
            serve_client(&shared, std::io::stdin(), writer, 1, max_pending);
            shared.request_shutdown();
            for worker in workers {
                let _ = worker.join();
            }
        }
    }

    let report = live_session.finish();
    if report.dropped > 0 {
        eprintln!("mnsim-serve: live stream dropped {} lines", report.dropped);
    }
    if let Some(path) = &options.metrics_path {
        let snapshot = metrics_session.snapshot().to_json();
        std::fs::write(path, snapshot)
            .map_err(|e| format!("cannot write metrics snapshot `{path}`: {e}"))?;
    }
    drop(metrics_session);
    eprintln!("mnsim-serve: shut down cleanly");
    Ok(())
}

// Unix-socket helpers used by the tests and the `repro client` mode.

/// Connects a raw client stream to a serving socket (test/CLI helper).
///
/// # Errors
///
/// Propagates the connect failure as a message.
pub fn connect_stream(path: &str) -> Result<UnixStream, String> {
    UnixStream::connect(path).map_err(|e| format!("cannot connect to `{path}`: {e}"))
}
