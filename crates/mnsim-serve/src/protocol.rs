//! The versioned, line-delimited JSON wire protocol.
//!
//! Every message is one JSON object on one line (NDJSON). A connection
//! opens with a handshake — the client sends `hello` carrying its
//! [`SCHEMA_VERSION`], the server answers `hello_ok` or a typed
//! `schema_mismatch` error and closes — and then carries any number of
//! requests, identified by client-chosen `id`s. The server interleaves
//! three message types back:
//!
//! | line | meaning |
//! |---|---|
//! | `{"type":"hello_ok","schema_version":1}` | handshake accepted |
//! | `{"type":"response","id":N,"ok":true,"cache":K,"fingerprint":H,"result":{…}}` | a request completed |
//! | `{"type":"response","id":N,"ok":false,"error":{"code":C,"message":M,…}}` | a request failed |
//! | `{"type":"event","id":N,"data":{…}}` | streamed progress for request `N` |
//!
//! `cache` reports how the result was obtained: `"miss"` (evaluated for
//! this request), `"hit"` (served from the artifact cache), `"shared"`
//! (deduplicated onto another client's identical in-flight request), or
//! `"none"` (not a cacheable operation). `fingerprint` is the FNV-1a
//! config fingerprint in hex — the cache/dedup key. `event` lines carry
//! the live-telemetry NDJSON events (`campaign_started`,
//! `wave_completed`, …) of the evaluation serving request `N`, so
//! long-running fault campaigns and DSE sweeps stream progress instead
//! of replying only at completion.
//!
//! Error payloads are typed: `code` is one of [`ErrorCode`], and
//! configuration failures carry the full [`ConfigError`] list
//! (`field_path` / `reason` / `allowed`) so a client can render every
//! violation at once.

use std::fmt::Write as _;

use mnsim_core::checkpoint::hex_u64;
use mnsim_core::config::Config;
use mnsim_core::error::{ConfigError, CoreError};
use mnsim_core::fault_sim::FaultConfig;
use mnsim_obs::{parse_json, JsonValue};
use mnsim_tech::fault::FaultRates;
use mnsim_tech::interconnect::InterconnectNode;

/// Protocol schema version. Bumped on any wire-incompatible change; the
/// handshake rejects clients speaking a different version with a typed
/// `schema_mismatch` error.
pub const SCHEMA_VERSION: u64 = 1;

/// One parsed client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// The handshake opener: `{"type":"hello","schema_version":1}`.
    Hello {
        /// The client's protocol version.
        schema_version: u64,
    },
    /// A work submission: `{"type":"request","id":N,"op":…,…}`.
    Submit {
        /// Client-chosen request id, echoed on every response/event.
        id: u64,
        /// The operation to perform.
        op: Op,
    },
    /// Ask the server to stop accepting work and exit cleanly:
    /// `{"type":"shutdown"}`.
    Shutdown,
}

/// The operation of a [`Request::Submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness probe; answers immediately.
    Ping,
    /// A full behavior-level simulation, optionally with a fault
    /// campaign attached. The result embeds the canonical report JSON.
    Simulate {
        /// The configuration to evaluate.
        config: ConfigSpec,
        /// Fault-injection campaign parameters, if any.
        faults: Option<FaultSpec>,
    },
    /// Model-vs-circuit validation (Table II rows).
    Validate {
        /// The configuration to validate.
        config: ConfigSpec,
        /// Random weight matrices to sample.
        matrices: usize,
        /// Input vectors per matrix.
        inputs_per_matrix: usize,
        /// Sampling seed.
        seed: u64,
    },
    /// A design-space exploration sweep.
    Dse {
        /// The base configuration.
        config: ConfigSpec,
        /// Crossbar sizes to sweep.
        crossbar_sizes: Vec<usize>,
        /// Parallelism degrees to sweep.
        parallelism: Vec<usize>,
        /// Interconnect nodes (nm) to sweep.
        interconnects_nm: Vec<u32>,
        /// Feasibility bound on the single-crossbar error rate.
        max_crossbar_error: Option<f64>,
    },
    /// Server/cache effectiveness counters; answers immediately.
    Stats,
}

/// How a request names its configuration: inline Table-I text
/// (`"config": "Crossbar_Size = 128\n…"`) or an MLP shorthand
/// (`"mlp": [256, 128]`).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigSpec {
    /// Table I `key = value` text, parsed by `Config::from_text`.
    Text(String),
    /// Fully-connected layer sizes for `Config::fully_connected_mlp`.
    Mlp(Vec<usize>),
}

impl ConfigSpec {
    /// Materializes the [`Config`].
    ///
    /// # Errors
    ///
    /// Propagates `Config` parse/validation errors.
    pub fn build(&self) -> Result<Config, CoreError> {
        match self {
            ConfigSpec::Text(text) => Config::from_text(text),
            ConfigSpec::Mlp(dims) => Config::fully_connected_mlp(dims),
        }
    }
}

/// Wire shape of a fault campaign, mirroring [`FaultConfig`] with the
/// `repro faultmc` CLI's flat single-rate convention.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Monte-Carlo trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Stuck-at-HRS defect rate.
    pub rate: f64,
    /// Spare rows per crossbar.
    pub spare_rows: usize,
    /// Bank retirement threshold.
    pub retire_threshold: f64,
    /// Input vectors per surviving trial.
    pub inputs_per_trial: usize,
}

impl FaultSpec {
    /// Converts to the core [`FaultConfig`] (no checkpoint — server
    /// evaluations are cached, not checkpointed).
    pub fn to_fault_config(&self) -> FaultConfig {
        FaultConfig {
            rates: FaultRates::stuck_at(self.rate),
            trials: self.trials,
            seed: self.seed,
            spare_rows: self.spare_rows,
            retire_threshold: self.retire_threshold,
            inputs_per_trial: self.inputs_per_trial,
            checkpoint: None,
        }
    }
}

impl Default for FaultSpec {
    /// Mirrors [`FaultConfig::default`]'s campaign parameters.
    fn default() -> Self {
        let d = FaultConfig::default();
        FaultSpec {
            trials: d.trials,
            seed: d.seed,
            rate: 0.01,
            spare_rows: d.spare_rows,
            retire_threshold: d.retire_threshold,
            inputs_per_trial: d.inputs_per_trial,
        }
    }
}

/// Typed protocol error classes (the `code` field of error payloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Handshake version mismatch; the connection closes after this.
    SchemaMismatch,
    /// The line was not valid JSON or not a valid message shape.
    Malformed,
    /// The `op` is not one this server understands.
    UnsupportedOp,
    /// Configuration validation failed; `errors` lists every violation.
    Config,
    /// The client has too many requests pending; retry after one
    /// completes.
    Backpressure,
    /// The evaluation was cancelled.
    Cancelled,
    /// The evaluation hit its deadline.
    Deadline,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// An internal evaluation failure.
    Internal,
}

impl ErrorCode {
    /// The wire identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::SchemaMismatch => "schema_mismatch",
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedOp => "unsupported_op",
            ErrorCode::Config => "config",
            ErrorCode::Backpressure => "backpressure",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Deadline => "deadline",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed error payload ready for the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// The error class.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// Per-field violations for [`ErrorCode::Config`] errors.
    pub config_errors: Vec<ConfigError>,
}

impl WireError {
    /// A payload with no per-field detail.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            config_errors: Vec::new(),
        }
    }

    /// Maps a [`CoreError`] onto the wire, preserving the typed
    /// [`ConfigError`] list where one exists.
    pub fn from_core(err: &CoreError) -> Self {
        match err {
            CoreError::Config { errors } => WireError {
                code: ErrorCode::Config,
                message: err.to_string(),
                config_errors: errors.clone(),
            },
            CoreError::InvalidConfig { parameter, reason } => WireError {
                code: ErrorCode::Config,
                message: err.to_string(),
                config_errors: vec![ConfigError {
                    field_path: (*parameter).to_string(),
                    reason: reason.clone(),
                    allowed: String::new(),
                }],
            },
            CoreError::ConfigParse { .. } | CoreError::EmptyDesignSpace { .. } => {
                WireError::new(ErrorCode::Config, err.to_string())
            }
            CoreError::Cancelled { .. } => WireError::new(ErrorCode::Cancelled, err.to_string()),
            CoreError::DeadlineExceeded { .. } => {
                WireError::new(ErrorCode::Deadline, err.to_string())
            }
            other => WireError::new(ErrorCode::Internal, other.to_string()),
        }
    }
}

/// Appends a JSON string literal (RFC 8259 escaping).
pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The server's handshake acknowledgement.
pub fn hello_ok_line() -> String {
    format!("{{\"type\":\"hello_ok\",\"schema_version\":{SCHEMA_VERSION}}}")
}

/// The client's handshake opener.
pub fn hello_line() -> String {
    format!("{{\"type\":\"hello\",\"schema_version\":{SCHEMA_VERSION}}}")
}

/// A failure response. `id` is `None` when the failing line carried no
/// usable request id (malformed JSON, handshake rejection).
pub fn error_line(id: Option<u64>, err: &WireError) -> String {
    let mut out = String::from("{\"type\":\"response\",");
    match id {
        Some(id) => {
            let _ = write!(out, "\"id\":{id},");
        }
        None => out.push_str("\"id\":null,"),
    }
    out.push_str("\"ok\":false,\"error\":{\"code\":");
    push_json_string(&mut out, err.code.as_str());
    out.push_str(",\"message\":");
    push_json_string(&mut out, &err.message);
    if !err.config_errors.is_empty() {
        out.push_str(",\"errors\":[");
        for (i, e) in err.config_errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"field_path\":");
            push_json_string(&mut out, &e.field_path);
            out.push_str(",\"reason\":");
            push_json_string(&mut out, &e.reason);
            out.push_str(",\"allowed\":");
            push_json_string(&mut out, &e.allowed);
            out.push('}');
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

/// A success response. `result_json` must already be a well-formed JSON
/// value; it is embedded verbatim. `fingerprint` is omitted for
/// non-cacheable operations (`None`).
pub fn response_line(id: u64, cache: &str, fingerprint: Option<u64>, result_json: &str) -> String {
    let mut out = String::from("{\"type\":\"response\",");
    let _ = write!(out, "\"id\":{id},\"ok\":true,\"cache\":");
    push_json_string(&mut out, cache);
    if let Some(fp) = fingerprint {
        out.push_str(",\"fingerprint\":");
        push_json_string(&mut out, &hex_u64(fp));
    }
    out.push_str(",\"result\":");
    out.push_str(result_json);
    out.push('}');
    out
}

/// A streamed progress event for request `id`. `data_json` is one
/// live-telemetry NDJSON line, embedded verbatim.
pub fn event_line(id: u64, data_json: &str) -> String {
    let mut out = String::from("{\"type\":\"event\",");
    let _ = write!(out, "\"id\":{id},\"data\":");
    out.push_str(data_json);
    out.push('}');
    out
}

fn malformed(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::Malformed, message)
}

fn get_usize(value: &JsonValue, key: &str) -> Result<Option<usize>, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| malformed(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_u64(value: &JsonValue, key: &str) -> Result<Option<u64>, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| malformed(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_f64(value: &JsonValue, key: &str) -> Result<Option<f64>, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| malformed(format!("`{key}` must be a number"))),
    }
}

fn get_usize_array(value: &JsonValue, key: &str) -> Result<Option<Vec<usize>>, WireError> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| malformed(format!("`{key}` must be an array")))?;
            items
                .iter()
                .map(|item| {
                    item.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| malformed(format!("`{key}` entries must be integers")))
                })
                .collect::<Result<Vec<usize>, WireError>>()
                .map(Some)
        }
    }
}

fn parse_config_spec(value: &JsonValue) -> Result<ConfigSpec, WireError> {
    if let Some(text) = value.get("config") {
        let text = text
            .as_str()
            .ok_or_else(|| malformed("`config` must be a Table-I text string"))?;
        return Ok(ConfigSpec::Text(text.to_string()));
    }
    if let Some(dims) = get_usize_array(value, "mlp")? {
        return Ok(ConfigSpec::Mlp(dims));
    }
    Err(malformed(
        "request needs a configuration: `config` (Table-I text) or `mlp` (layer sizes)",
    ))
}

fn parse_fault_spec(value: &JsonValue) -> Result<FaultSpec, WireError> {
    let defaults = FaultSpec::default();
    Ok(FaultSpec {
        trials: get_usize(value, "trials")?.unwrap_or(defaults.trials),
        seed: get_u64(value, "seed")?.unwrap_or(defaults.seed),
        rate: get_f64(value, "rate")?.unwrap_or(defaults.rate),
        spare_rows: get_usize(value, "spare_rows")?.unwrap_or(defaults.spare_rows),
        retire_threshold: get_f64(value, "retire_threshold")?.unwrap_or(defaults.retire_threshold),
        inputs_per_trial: get_usize(value, "inputs_per_trial")?
            .unwrap_or(defaults.inputs_per_trial),
    })
}

/// Parses one request line into its typed form.
///
/// # Errors
///
/// Returns a typed [`WireError`] (code `malformed` or `unsupported_op`)
/// describing the first problem found; the caller echoes it back with
/// the request id when one was readable.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value = parse_json(line.trim()).map_err(|e| malformed(format!("invalid JSON: {e}")))?;
    let kind = value
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| malformed("missing `type`"))?;
    match kind {
        "hello" => {
            let schema_version = get_u64(&value, "schema_version")?
                .ok_or_else(|| malformed("hello needs `schema_version`"))?;
            Ok(Request::Hello { schema_version })
        }
        "shutdown" => Ok(Request::Shutdown),
        "request" => {
            let id =
                get_u64(&value, "id")?.ok_or_else(|| malformed("request needs a numeric `id`"))?;
            let op_name = value
                .get("op")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| malformed("request needs an `op` string"))?;
            let op = match op_name {
                "ping" => Op::Ping,
                "stats" => Op::Stats,
                "simulate" => Op::Simulate {
                    config: parse_config_spec(&value)?,
                    faults: None,
                },
                "fault_mc" => Op::Simulate {
                    config: parse_config_spec(&value)?,
                    faults: Some(parse_fault_spec(&value)?),
                },
                "validate" => Op::Validate {
                    config: parse_config_spec(&value)?,
                    matrices: get_usize(&value, "matrices")?.unwrap_or(2),
                    inputs_per_matrix: get_usize(&value, "inputs")?.unwrap_or(2),
                    seed: get_u64(&value, "seed")?.unwrap_or(0),
                },
                "dse" => Op::Dse {
                    config: parse_config_spec(&value)?,
                    crossbar_sizes: get_usize_array(&value, "crossbar_sizes")?
                        .unwrap_or_else(|| vec![64, 128, 256]),
                    parallelism: get_usize_array(&value, "parallelism")?
                        .unwrap_or_else(|| vec![1, 2, 4]),
                    interconnects_nm: get_usize_array(&value, "interconnects_nm")?
                        .map(|v| v.into_iter().map(|n| n as u32).collect())
                        .unwrap_or_else(|| vec![22]),
                    max_crossbar_error: get_f64(&value, "max_crossbar_error")?,
                },
                other => {
                    return Err(WireError::new(
                        ErrorCode::UnsupportedOp,
                        format!(
                            "unknown op `{other}` (supported: ping, simulate, fault_mc, \
                             validate, dse, stats)"
                        ),
                    ))
                }
            };
            Ok(Request::Submit { id, op })
        }
        other => Err(malformed(format!(
            "unknown message type `{other}` (expected hello, request, or shutdown)"
        ))),
    }
}

/// Resolves the interconnect node list of a DSE op.
///
/// # Errors
///
/// Returns a `config`-class error for an unknown node.
pub fn interconnects_from_nm(nm: &[u32]) -> Result<Vec<InterconnectNode>, WireError> {
    nm.iter()
        .map(|&n| {
            InterconnectNode::from_nanometers(n).map_err(|e| WireError {
                code: ErrorCode::Config,
                message: e.to_string(),
                config_errors: vec![ConfigError {
                    field_path: "interconnects_nm".into(),
                    reason: format!("{n} nm is not a known node"),
                    allowed: "18, 22, 28, 36, 45, 65, 90".into(),
                }],
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_lines_round_trip() {
        let hello = parse_request(&hello_line()).unwrap();
        assert_eq!(
            hello,
            Request::Hello {
                schema_version: SCHEMA_VERSION
            }
        );
        assert!(hello_ok_line().contains("\"hello_ok\""));
    }

    #[test]
    fn parses_each_op() {
        let r = parse_request(r#"{"type":"request","id":7,"op":"simulate","mlp":[64,32]}"#);
        match r.unwrap() {
            Request::Submit {
                id: 7,
                op: Op::Simulate { config, faults },
            } => {
                assert_eq!(config, ConfigSpec::Mlp(vec![64, 32]));
                assert!(faults.is_none());
            }
            other => panic!("{other:?}"),
        }

        let r = parse_request(
            r#"{"type":"request","id":1,"op":"fault_mc","mlp":[64,32],"trials":5,"rate":0.05}"#,
        );
        match r.unwrap() {
            Request::Submit {
                op: Op::Simulate {
                    faults: Some(spec), ..
                },
                ..
            } => {
                assert_eq!(spec.trials, 5);
                assert_eq!(spec.rate, 0.05);
                assert_eq!(spec.inputs_per_trial, FaultSpec::default().inputs_per_trial);
            }
            other => panic!("{other:?}"),
        }

        let r = parse_request(
            r#"{"type":"request","id":2,"op":"dse","config":"Crossbar_Size = 64\n","crossbar_sizes":[64,128],"parallelism":[1,2],"interconnects_nm":[22,28]}"#,
        );
        match r.unwrap() {
            Request::Submit {
                op:
                    Op::Dse {
                        crossbar_sizes,
                        interconnects_nm,
                        ..
                    },
                ..
            } => {
                assert_eq!(crossbar_sizes, vec![64, 128]);
                assert_eq!(interconnects_nm, vec![22, 28]);
            }
            other => panic!("{other:?}"),
        }

        assert!(matches!(
            parse_request(r#"{"type":"request","id":3,"op":"stats"}"#).unwrap(),
            Request::Submit { op: Op::Stats, .. }
        ));
        assert!(matches!(
            parse_request(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
    }

    #[test]
    fn malformed_and_unsupported_are_typed() {
        assert_eq!(
            parse_request("not json").unwrap_err().code,
            ErrorCode::Malformed
        );
        assert_eq!(
            parse_request(r#"{"type":"request","id":1,"op":"warp"}"#)
                .unwrap_err()
                .code,
            ErrorCode::UnsupportedOp
        );
        assert_eq!(
            parse_request(r#"{"type":"request","id":1,"op":"simulate"}"#)
                .unwrap_err()
                .code,
            ErrorCode::Malformed
        );
    }

    #[test]
    fn error_line_embeds_config_errors() {
        let err = WireError {
            code: ErrorCode::Config,
            message: "bad".into(),
            config_errors: vec![ConfigError {
                field_path: "Crossbar_Size".into(),
                reason: "100 is not a power of two".into(),
                allowed: "powers of two".into(),
            }],
        };
        let line = error_line(Some(4), &err);
        let value = parse_json(&line).unwrap();
        assert_eq!(value.get("id").and_then(JsonValue::as_u64), Some(4));
        let error = value.get("error").unwrap();
        assert_eq!(
            error.get("code").and_then(JsonValue::as_str),
            Some("config")
        );
        let errors = error.get("errors").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            errors[0].get("field_path").and_then(JsonValue::as_str),
            Some("Crossbar_Size")
        );
    }

    #[test]
    fn response_and_event_lines_are_valid_json() {
        let line = response_line(9, "hit", Some(0xdead_beef), r#"{"report":{"x":1}}"#);
        let value = parse_json(&line).unwrap();
        assert_eq!(value.get("cache").and_then(JsonValue::as_str), Some("hit"));
        assert!(value
            .get("fingerprint")
            .and_then(JsonValue::as_str)
            .unwrap()
            .starts_with("0x"));
        let line = event_line(9, r#"{"event":"wave_completed","done":3}"#);
        let value = parse_json(&line).unwrap();
        assert_eq!(
            value
                .get("data")
                .and_then(|d| d.get("event"))
                .and_then(JsonValue::as_str),
            Some("wave_completed")
        );
    }

    #[test]
    fn core_errors_map_to_typed_payloads() {
        let err = CoreError::Config {
            errors: vec![ConfigError {
                field_path: "Trials".into(),
                reason: "zero".into(),
                allowed: ">= 1".into(),
            }],
        };
        let wire = WireError::from_core(&err);
        assert_eq!(wire.code, ErrorCode::Config);
        assert_eq!(wire.config_errors.len(), 1);

        let wire = WireError::from_core(&CoreError::DeadlineExceeded {
            completed: 1,
            total: 4,
            checkpoint: None,
        });
        assert_eq!(wire.code, ErrorCode::Deadline);
    }
}
