//! # mnsim-serve — simulation as a service
//!
//! A persistent session server for the MNSIM platform: instead of paying
//! configuration parsing, system preparation, and full re-evaluation on
//! every CLI invocation, a long-running server process keeps a
//! cross-request [`ArtifactCache`](mnsim_core::cache::ArtifactCache) of
//! finished reports, validation tables, and DSE fronts — keyed by the
//! same FNV config fingerprints the checkpoint layer uses — and answers
//! repeated or concurrent identical requests from it.
//!
//! The wire protocol ([`protocol`]) is deliberately dependency-free:
//! versioned line-delimited JSON over a unix socket or stdio, with a
//! `schema_version` handshake, client-chosen request ids, typed error
//! payloads (reusing [`ConfigError`](mnsim_core::error::ConfigError)
//! field paths), and streamed progress events that ride the
//! `mnsim-obs` live-telemetry NDJSON machinery unchanged.
//!
//! The server ([`server`]) runs requests on a small worker pool with
//! per-client round-robin fairness and per-client backpressure,
//! deduplicates identical in-flight requests onto one evaluation
//! (every waiter gets the same bit-identical result — results are
//! deterministic at any thread count), and evicts least-recently-used
//! artifacts under a configurable memory budget.
//!
//! The client ([`client`]) is a thin synchronous helper used by
//! `repro client` and the integration tests.
//!
//! ```no_run
//! use mnsim_serve::server::{serve, ServeOptions};
//!
//! let options = ServeOptions {
//!     socket: Some("/tmp/mnsim.sock".into()),
//!     ..ServeOptions::default()
//! };
//! serve(options).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{ErrorCode, Op, Request, WireError, SCHEMA_VERSION};
pub use server::{serve, ServeOptions};
