//! A thin synchronous client for the session server.
//!
//! Wraps a unix-socket connection with the [`SCHEMA_VERSION`] handshake
//! and a line-oriented call helper. Used by `repro client` and the
//! integration tests; applications embedding MNSIM directly should use
//! [`Session`](mnsim_core::simulator::Session) instead of going through
//! the wire.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

use mnsim_obs::{parse_json, JsonValue};

use crate::protocol::{hello_line, SCHEMA_VERSION};

/// One handshaken connection to a serving socket.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

/// Everything the server sent back for one request: the streamed
/// progress events (in arrival order) and the final response line.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// `event` lines for this request id, verbatim.
    pub events: Vec<String>,
    /// The `response` line, verbatim.
    pub response: String,
}

impl Client {
    /// Connects to the unix socket at `path` and performs the
    /// handshake.
    ///
    /// # Errors
    ///
    /// Returns a message on connect failure, on a schema-version
    /// rejection (the server's typed error is embedded), or on a
    /// malformed handshake reply.
    pub fn connect(path: &str) -> Result<Client, String> {
        let stream =
            UnixStream::connect(path).map_err(|e| format!("cannot connect to `{path}`: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        client.send_line(&hello_line())?;
        let reply = client
            .recv_line()?
            .ok_or_else(|| "server closed the connection during handshake".to_string())?;
        let value = parse_json(&reply).map_err(|e| format!("bad handshake reply: {e}"))?;
        match value.get("type").and_then(JsonValue::as_str) {
            Some("hello_ok") => {
                let version = value.get("schema_version").and_then(JsonValue::as_u64);
                if version == Some(SCHEMA_VERSION) {
                    Ok(client)
                } else {
                    Err(format!(
                        "server speaks schema_version {version:?}, client {SCHEMA_VERSION}"
                    ))
                }
            }
            _ => Err(format!("handshake rejected: {reply}")),
        }
    }

    /// Writes one protocol line.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure as a message.
    pub fn send_line(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
        self.writer.flush().map_err(|e| format!("send failed: {e}"))
    }

    /// Reads one protocol line; `None` on server EOF.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure as a message.
    pub fn recv_line(&mut self) -> Result<Option<String>, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends `request_line` and reads until its `response` arrives,
    /// collecting the streamed `event` lines on the way. Lines for
    /// other request ids (pipelined calls) are collected too — this
    /// helper is for the one-request-at-a-time pattern; pipelining
    /// callers should drive [`Client::send_line`] /
    /// [`Client::recv_line`] directly.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O failure or server EOF before the
    /// response. A server-side error response is an `Ok` outcome — the
    /// typed payload is in [`CallOutcome::response`].
    pub fn call(&mut self, request_line: &str) -> Result<CallOutcome, String> {
        self.send_line(request_line)?;
        let mut events = Vec::new();
        loop {
            let line = self
                .recv_line()?
                .ok_or_else(|| "server closed the connection before responding".to_string())?;
            let value = parse_json(&line).map_err(|e| format!("bad server line: {e}"))?;
            match value.get("type").and_then(JsonValue::as_str) {
                Some("response") => {
                    return Ok(CallOutcome {
                        events,
                        response: line,
                    })
                }
                _ => events.push(line),
            }
        }
    }

    /// Asks the server to shut down (fire and forget).
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure as a message.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send_line("{\"type\":\"shutdown\"}")
    }
}
