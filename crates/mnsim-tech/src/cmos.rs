//! CMOS process technology database.
//!
//! MNSIM estimates the peripheral (CMOS) circuitry — decoders, adder trees,
//! buffers, neuron circuits, MUXes — from a small set of per-node process
//! parameters, in the same way the original platform consumes CACTI / NVSim /
//! PTM technology files. This module reconstructs such a table for the nodes
//! exercised by the paper's experiments (130, 90, 65, 45, 32 and 22 nm).
//!
//! The absolute values are representative of published PTM/ITRS data; the
//! MNSIM models only depend on them through well-known first-order formulas
//! (`E = C·V²`, FO4-delay multiples, transistor-count × `F²` areas), so the
//! cross-node *trends* — which are what the design-space exploration studies
//! — are faithful.

use crate::error::TechError;
use crate::units::{Area, Capacitance, Energy, Power, Time, Voltage};

/// A CMOS process node supported by the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum CmosNode {
    /// 130 nm (used by the paper's layout validation, Fig. 6).
    N130,
    /// 90 nm (used by the paper's SPICE validation, Table II).
    N90,
    /// 65 nm (used by the PRIME case study, Table VII).
    N65,
    /// 45 nm (used by the large-bank and VGG-16 case studies).
    N45,
    /// 32 nm (used by the ISAAC case study, Table VII).
    N32,
    /// 22 nm (headroom for forward-looking sweeps).
    N22,
}

impl CmosNode {
    /// All nodes in the database, largest feature size first.
    pub const ALL: [CmosNode; 6] = [
        CmosNode::N130,
        CmosNode::N90,
        CmosNode::N65,
        CmosNode::N45,
        CmosNode::N32,
        CmosNode::N22,
    ];

    /// Looks a node up by feature size in nanometres.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownNode`] if the size is not in the database.
    pub fn from_nanometers(nanometers: u32) -> Result<Self, TechError> {
        match nanometers {
            130 => Ok(CmosNode::N130),
            90 => Ok(CmosNode::N90),
            65 => Ok(CmosNode::N65),
            45 => Ok(CmosNode::N45),
            32 => Ok(CmosNode::N32),
            22 => Ok(CmosNode::N22),
            _ => Err(TechError::UnknownNode {
                nanometers,
                database: "cmos",
            }),
        }
    }

    /// The feature size `F` of this node in nanometres.
    pub const fn nanometers(self) -> u32 {
        match self {
            CmosNode::N130 => 130,
            CmosNode::N90 => 90,
            CmosNode::N65 => 65,
            CmosNode::N45 => 45,
            CmosNode::N32 => 32,
            CmosNode::N22 => 22,
        }
    }

    /// The feature size `F` in metres (convenience for area formulas that
    /// use multiples of `F²`).
    pub fn feature_size_m(self) -> f64 {
        self.nanometers() as f64 * 1e-9
    }

    /// The area of one `F²` at this node.
    pub fn f2(self) -> Area {
        let f = self.feature_size_m();
        Area::from_square_meters(f * f)
    }

    /// The full parameter record for this node.
    pub fn params(self) -> CmosParams {
        // Representative PTM/ITRS-style values. Sources of the general
        // trends: PTM bulk CMOS models (Zhao & Cao 2007) and the CACTI
        // technology tables; exact decimals are reconstructed.
        match self {
            CmosNode::N130 => CmosParams::build(self, 1.30, 1.60, 52.0, 0.8),
            CmosNode::N90 => CmosParams::build(self, 1.20, 1.40, 40.0, 1.5),
            CmosNode::N65 => CmosParams::build(self, 1.10, 1.20, 30.0, 3.0),
            CmosNode::N45 => CmosParams::build(self, 1.00, 1.10, 21.0, 6.0),
            CmosNode::N32 => CmosParams::build(self, 0.90, 1.00, 15.0, 12.0),
            CmosNode::N22 => CmosParams::build(self, 0.80, 0.90, 12.0, 20.0),
        }
    }
}

impl std::fmt::Display for CmosNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nm CMOS", self.nanometers())
    }
}

/// Per-node CMOS process parameters consumed by the MNSIM circuit models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosParams {
    /// The node this record describes.
    pub node: CmosNode,
    /// Nominal supply voltage.
    pub vdd: Voltage,
    /// Gate capacitance per micrometre of transistor width.
    pub gate_cap_per_um: Capacitance,
    /// Fan-out-of-4 inverter delay — the canonical logic-speed unit.
    pub fo4_delay: Time,
    /// Sub-threshold leakage power of a minimum-size transistor.
    pub leakage_per_transistor: Power,
    /// Switching energy of a minimum-size 2-input gate (`≈ C·V²`).
    pub gate_energy: Energy,
    /// Layout area of a minimum-size 2-input logic gate.
    pub gate_area: Area,
    /// Layout area of a static D flip-flop (≈ 24 transistors).
    pub dff_area: Area,
    /// Switching energy of a D flip-flop per clock.
    pub dff_energy: Energy,
    /// Layout area of a 1-bit full adder (≈ 28 transistors).
    pub full_adder_area: Area,
    /// Switching energy of a 1-bit full adder per operation.
    pub full_adder_energy: Energy,
    /// Propagation delay of a 1-bit full adder (carry path, ≈ 2 FO4).
    pub full_adder_delay: Time,
}

impl CmosParams {
    /// Derives the full record from the four primary per-node numbers.
    ///
    /// * `vdd_v` — supply voltage in volts,
    /// * `cgate_ff_um` — gate capacitance in fF/µm,
    /// * `fo4_ps` — FO4 delay in picoseconds,
    /// * `leak_nw` — leakage per minimum transistor in nanowatts.
    ///
    /// Derived quantities use first-order digital-design rules:
    /// gate switching energy `≈ Ceff · Vdd²` where `Ceff` is the gate cap of
    /// ~3 minimum-width transistors; layout areas are transistor counts
    /// scaled by a routed-cell factor of ~40 F² per transistor pair (a
    /// standard-cell-density figure).
    fn build(node: CmosNode, vdd_v: f64, cgate_ff_um: f64, fo4_ps: f64, leak_nw: f64) -> Self {
        let vdd = Voltage::from_volts(vdd_v);
        let gate_cap_per_um = Capacitance::from_femtofarads(cgate_ff_um);
        let fo4_delay = Time::from_picoseconds(fo4_ps);
        let leakage_per_transistor = Power::from_nanowatts(leak_nw);

        // Minimum transistor width ≈ 2F; effective switched cap of a 2-input
        // gate ≈ 3 transistor gates + local wire ≈ 4 × Cgate(2F).
        let f_um = node.nanometers() as f64 * 1e-3;
        let c_min = Capacitance::from_femtofarads(cgate_ff_um * 2.0 * f_um);
        let c_gate_eff = c_min * 4.0;
        let gate_energy = Energy::from_joules(c_gate_eff.farads() * vdd_v * vdd_v);

        // Standard-cell density: ~20 F² of routed area per transistor.
        let per_transistor = node.f2() * 20.0;
        let gate_area = per_transistor * 4.0; // 2-input NAND/NOR: 4 transistors
        let dff_area = per_transistor * 24.0;
        let full_adder_area = per_transistor * 28.0;

        // A DFF toggles ~6 internal nodes; a full adder ~7 gate equivalents.
        let dff_energy = gate_energy * 6.0;
        let full_adder_energy = gate_energy * 7.0;
        let full_adder_delay = fo4_delay * 2.0;

        CmosParams {
            node,
            vdd,
            gate_cap_per_um,
            fo4_delay,
            leakage_per_transistor,
            gate_energy,
            gate_area,
            dff_area,
            dff_energy,
            full_adder_area,
            full_adder_energy,
            full_adder_delay,
        }
    }

    /// Area of an `n`-transistor custom cell at this node's standard-cell
    /// density.
    pub fn transistor_area(&self, transistors: u32) -> Area {
        self.node.f2() * (20.0 * transistors as f64)
    }

    /// Leakage of an `n`-transistor block.
    pub fn leakage(&self, transistors: u32) -> Power {
        self.leakage_per_transistor * transistors as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_nanometers() {
        assert_eq!(CmosNode::from_nanometers(90).unwrap(), CmosNode::N90);
        assert_eq!(CmosNode::from_nanometers(45).unwrap(), CmosNode::N45);
        assert!(matches!(
            CmosNode::from_nanometers(7),
            Err(TechError::UnknownNode { nanometers: 7, .. })
        ));
    }

    #[test]
    fn all_nodes_have_params() {
        for node in CmosNode::ALL {
            let p = node.params();
            assert!(p.vdd.volts() > 0.0, "{node}");
            assert!(p.fo4_delay.seconds() > 0.0, "{node}");
            assert!(p.gate_energy.joules() > 0.0, "{node}");
            assert!(p.gate_area.square_meters() > 0.0, "{node}");
        }
    }

    #[test]
    fn vdd_decreases_with_scaling() {
        let mut prev = f64::INFINITY;
        for node in CmosNode::ALL {
            let vdd = node.params().vdd.volts();
            assert!(vdd < prev, "Vdd must shrink monotonically with the node");
            prev = vdd;
        }
    }

    #[test]
    fn speed_increases_with_scaling() {
        let mut prev = f64::INFINITY;
        for node in CmosNode::ALL {
            let fo4 = node.params().fo4_delay.seconds();
            assert!(fo4 < prev, "FO4 must shrink monotonically with the node");
            prev = fo4;
        }
    }

    #[test]
    fn gate_energy_decreases_with_scaling() {
        let mut prev = f64::INFINITY;
        for node in CmosNode::ALL {
            let e = node.params().gate_energy.joules();
            assert!(e < prev, "gate energy must shrink with the node");
            prev = e;
        }
    }

    #[test]
    fn leakage_increases_with_scaling() {
        // Sub-threshold leakage famously grows as planar CMOS scales down.
        let mut prev = 0.0;
        for node in CmosNode::ALL {
            let l = node.params().leakage_per_transistor.watts();
            assert!(l > prev, "leakage must grow with scaling");
            prev = l;
        }
    }

    #[test]
    fn f2_area_matches_feature_size() {
        let node = CmosNode::N90;
        let f2 = node.f2().square_meters();
        assert!((f2 - 90e-9 * 90e-9).abs() < 1e-25);
    }

    #[test]
    fn adder_is_larger_and_hungrier_than_gate() {
        for node in CmosNode::ALL {
            let p = node.params();
            assert!(p.full_adder_area.square_meters() > p.gate_area.square_meters());
            assert!(p.full_adder_energy.joules() > p.gate_energy.joules());
            assert!(p.dff_area.square_meters() > p.gate_area.square_meters());
        }
    }

    #[test]
    fn transistor_area_scales_linearly() {
        let p = CmosNode::N45.params();
        let a1 = p.transistor_area(10).square_meters();
        let a2 = p.transistor_area(20).square_meters();
        assert!((a2 / a1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_node() {
        assert_eq!(CmosNode::N65.to_string(), "65 nm CMOS");
    }

    #[test]
    fn ordering_follows_declaration() {
        assert!(CmosNode::N130 < CmosNode::N22);
    }
}
