//! Hard-defect models for memristor crossbars.
//!
//! The MNSIM accuracy model covers interconnect error and device *variation*
//! (paper Eqs. 9–16), but fabricated arrays also suffer hard defects that no
//! amount of calibration removes: cells stuck at the high- or low-resistance
//! state (failed forming / permanent filament), whole word or bit lines
//! broken by electromigration or lithography defects, and cells whose
//! resistance has drifted far outside the programmed envelope.
//!
//! This module provides the *technology-level* description of such defects:
//!
//! * [`FaultKind`] — the defect taxonomy,
//! * [`FaultRates`] — per-kind defect probabilities,
//! * [`FaultMap`] — a concrete, replayable assignment of defects to one
//!   `rows × cols` crossbar, generated deterministically from a seed,
//! * a line-oriented text serialization ([`FaultMap::to_text`] /
//!   [`FaultMap::from_text`]) so a map observed in one run can be replayed
//!   bit-identically in another.
//!
//! The circuit layer (`mnsim-circuit`) turns a map into netlist edits
//! (pinned cell resistances, opened wire segments); the network layer
//! (`mnsim-nn`) mirrors the same map onto behavioral weight matrices so both
//! paths see the same silicon.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::TechError;

/// The kinds of hard defect a crossbar cell or line can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// Cell permanently at the high-resistance state (never formed).
    StuckAtHrs,
    /// Cell permanently at the low-resistance state (unbreakable filament).
    StuckAtLrs,
    /// Word line (input row) open at some segment.
    BrokenWordline,
    /// Bit line (output column) open at some segment.
    BrokenBitline,
    /// Cell resistance drifted off the programmed value by a fixed factor.
    DriftedResistance,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::StuckAtHrs => write!(f, "stuck-at-HRS"),
            FaultKind::StuckAtLrs => write!(f, "stuck-at-LRS"),
            FaultKind::BrokenWordline => write!(f, "broken-wordline"),
            FaultKind::BrokenBitline => write!(f, "broken-bitline"),
            FaultKind::DriftedResistance => write!(f, "drifted-resistance"),
        }
    }
}

/// The defect carried by one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellFault {
    /// Pinned to the device's highest resistance.
    StuckAtHrs,
    /// Pinned to the device's lowest resistance.
    StuckAtLrs,
    /// Programmed resistance multiplied by `factor` (> 0).
    Drifted {
        /// Multiplicative resistance drift (log-uniform around 1).
        factor: f64,
    },
}

impl CellFault {
    /// The taxonomy kind of this cell fault.
    pub fn kind(&self) -> FaultKind {
        match self {
            CellFault::StuckAtHrs => FaultKind::StuckAtHrs,
            CellFault::StuckAtLrs => FaultKind::StuckAtLrs,
            CellFault::Drifted { .. } => FaultKind::DriftedResistance,
        }
    }
}

/// Per-kind defect probabilities.
///
/// Cell-level rates (`stuck_at_hrs`, `stuck_at_lrs`, `drifted`) are applied
/// independently per cell; line-level rates (`broken_wordline`,
/// `broken_bitline`) independently per row/column. All rates are clamped to
/// the unit interval by [`FaultRates::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultRates {
    /// Probability a cell is stuck at the high-resistance state.
    pub stuck_at_hrs: f64,
    /// Probability a cell is stuck at the low-resistance state.
    pub stuck_at_lrs: f64,
    /// Probability a cell's resistance has drifted.
    pub drifted: f64,
    /// Maximum |log10| drift of a drifted cell (e.g. `1.0` → up to 10×).
    pub drift_decades: f64,
    /// Probability a word line is broken at a random segment.
    pub broken_wordline: f64,
    /// Probability a bit line is broken at a random segment.
    pub broken_bitline: f64,
}

impl FaultRates {
    /// A uniform stuck-at map: half HRS, half LRS, no line breaks.
    pub fn stuck_at(rate: f64) -> Self {
        FaultRates {
            stuck_at_hrs: rate / 2.0,
            stuck_at_lrs: rate / 2.0,
            ..FaultRates::default()
        }
    }

    /// Validates every rate is a probability and the drift span is sane.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidDeviceParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), TechError> {
        let fields = [
            ("stuck_at_hrs", self.stuck_at_hrs),
            ("stuck_at_lrs", self.stuck_at_lrs),
            ("drifted", self.drifted),
            ("broken_wordline", self.broken_wordline),
            ("broken_bitline", self.broken_bitline),
        ];
        for (name, value) in fields {
            if !(0.0..=1.0).contains(&value) {
                return Err(TechError::InvalidDeviceParameter {
                    parameter: "fault_rates",
                    reason: format!("{name} = {value} is not a probability in [0, 1]"),
                });
            }
        }
        if self.stuck_at_hrs + self.stuck_at_lrs + self.drifted > 1.0 {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "fault_rates",
                reason: format!(
                    "cell-level rates sum to {} > 1",
                    self.stuck_at_hrs + self.stuck_at_lrs + self.drifted
                ),
            });
        }
        if !(0.0..=6.0).contains(&self.drift_decades) {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "fault_rates",
                reason: format!("drift_decades = {} outside 0..=6", self.drift_decades),
            });
        }
        Ok(())
    }
}

/// SplitMix64 — the fault generator's self-contained PRNG.
///
/// Embedded here (rather than depending on an external RNG crate) so a
/// `(seed, rates, geometry)` triple maps to the same [`FaultMap`] on every
/// platform and under every workspace dependency configuration — the
/// determinism the replay serialization guarantees.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A concrete, replayable defect assignment for one `rows × cols` crossbar.
///
/// Cell faults are keyed by `(row, col)`; broken lines record the segment
/// index at which the wire is open (see the crossbar topology in
/// `mnsim-circuit::crossbar`): a word line broken at segment `s` disconnects
/// cells `col >= s` from the driver, a bit line broken at segment `s`
/// disconnects cells `row < s` from the sensing resistor.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultMap {
    /// Word lines of the array this map describes.
    pub rows: usize,
    /// Bit lines of the array this map describes.
    pub cols: usize,
    /// Defective cells by coordinate (deterministic iteration order).
    pub cells: BTreeMap<(usize, usize), CellFault>,
    /// `row → segment` of open word-line segments (`segment ∈ 0..cols`).
    pub broken_wordlines: BTreeMap<usize, usize>,
    /// `col → segment` of open bit-line segments (`segment ∈ 1..rows`,
    /// or `rows` for a detached sense resistor).
    pub broken_bitlines: BTreeMap<usize, usize>,
}

impl FaultMap {
    /// An empty (defect-free) map for a `rows × cols` array.
    pub fn empty(rows: usize, cols: usize) -> Self {
        FaultMap {
            rows,
            cols,
            ..FaultMap::default()
        }
    }

    /// Generates a map by seeded Monte-Carlo draw. The same
    /// `(rows, cols, rates, seed)` always produces the same map.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultRates::validate`] failures.
    pub fn generate(
        rows: usize,
        cols: usize,
        rates: &FaultRates,
        seed: u64,
    ) -> Result<Self, TechError> {
        rates.validate()?;
        let mut rng = SplitMix64::new(seed);
        let mut map = FaultMap::empty(rows, cols);

        for row in 0..rows {
            for col in 0..cols {
                let u = rng.unit();
                // One draw decides the cell's fate: the kinds partition
                // [0, stuck_hrs + stuck_lrs + drifted).
                let fault = if u < rates.stuck_at_hrs {
                    Some(CellFault::StuckAtHrs)
                } else if u < rates.stuck_at_hrs + rates.stuck_at_lrs {
                    Some(CellFault::StuckAtLrs)
                } else if u < rates.stuck_at_hrs + rates.stuck_at_lrs + rates.drifted {
                    // Log-uniform drift in ±drift_decades decades.
                    let exponent = (rng.unit() * 2.0 - 1.0) * rates.drift_decades;
                    Some(CellFault::Drifted {
                        factor: 10f64.powf(exponent),
                    })
                } else {
                    None
                };
                if let Some(fault) = fault {
                    map.cells.insert((row, col), fault);
                }
            }
        }

        for row in 0..rows {
            if rng.unit() < rates.broken_wordline {
                map.broken_wordlines.insert(row, rng.below(cols.max(1)));
            }
        }
        for col in 0..cols {
            if rng.unit() < rates.broken_bitline {
                // Segments 1..rows are inter-cell; `rows` opens the sense leg.
                map.broken_bitlines.insert(col, 1 + rng.below(rows.max(1)));
            }
        }

        Ok(map)
    }

    /// `true` if cell `(row, col)` is cut off from its driver or its sense
    /// resistor by a broken line.
    pub fn is_isolated(&self, row: usize, col: usize) -> bool {
        self.broken_wordlines
            .get(&row)
            .is_some_and(|&seg| col >= seg)
            || self.broken_bitlines.get(&col).is_some_and(|&seg| row < seg)
    }

    /// `true` if column `col`'s sense resistor is detached from the array
    /// (bit line broken at its foot segment).
    pub fn sense_detached(&self, col: usize) -> bool {
        self.broken_bitlines
            .get(&col)
            .is_some_and(|&seg| seg >= self.rows)
    }

    /// `true` if the map carries no defects at all.
    pub fn is_clean(&self) -> bool {
        self.cells.is_empty()
            && self.broken_wordlines.is_empty()
            && self.broken_bitlines.is_empty()
    }

    /// Number of defective cells (stuck or drifted).
    pub fn cell_fault_count(&self) -> usize {
        self.cells.len()
    }

    /// Fraction of the array's cells that are *unusable*: stuck cells plus
    /// every cell isolated by a broken line (double counting removed).
    pub fn defective_cell_fraction(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        let mut dead = 0usize;
        for row in 0..self.rows {
            for col in 0..self.cols {
                let stuck = matches!(
                    self.cells.get(&(row, col)),
                    Some(CellFault::StuckAtHrs | CellFault::StuckAtLrs)
                );
                if stuck || self.is_isolated(row, col) {
                    dead += 1;
                }
            }
        }
        dead as f64 / (self.rows * self.cols) as f64
    }

    /// Rows containing at least one defect (stuck/drifted cell or broken
    /// word line) — the unit of spare-row remapping.
    pub fn defective_rows(&self) -> Vec<usize> {
        let mut rows: Vec<usize> = self
            .cells
            .keys()
            .map(|&(row, _)| row)
            .chain(self.broken_wordlines.keys().copied())
            .collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Drops every fault in `row` — models remapping that row to a spare.
    pub fn clear_row(&mut self, row: usize) {
        self.cells.retain(|&(r, _), _| r != row);
        self.broken_wordlines.remove(&row);
    }

    /// Serializes to the line-oriented replay format parsed by
    /// [`FaultMap::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "faultmap v1 rows={} cols={}", self.rows, self.cols);
        for (&(row, col), fault) in &self.cells {
            match fault {
                CellFault::StuckAtHrs => {
                    let _ = writeln!(out, "cell {row} {col} stuck-hrs");
                }
                CellFault::StuckAtLrs => {
                    let _ = writeln!(out, "cell {row} {col} stuck-lrs");
                }
                CellFault::Drifted { factor } => {
                    let _ = writeln!(out, "cell {row} {col} drift {factor:e}");
                }
            }
        }
        for (&row, &seg) in &self.broken_wordlines {
            let _ = writeln!(out, "wordline {row} {seg}");
        }
        for (&col, &seg) in &self.broken_bitlines {
            let _ = writeln!(out, "bitline {col} {seg}");
        }
        out
    }

    /// Parses the format produced by [`FaultMap::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`TechError::FaultMapParse`] with a 1-based line number for
    /// unknown directives, malformed numbers, or out-of-range coordinates.
    pub fn from_text(text: &str) -> Result<Self, TechError> {
        let parse_err = |line: usize, reason: String| TechError::FaultMapParse { line, reason };
        let mut lines = text.lines().enumerate();

        let (_, header) = lines
            .next()
            .ok_or_else(|| parse_err(1, "empty fault map".into()))?;
        let mut rows = None;
        let mut cols = None;
        let mut words = header.split_whitespace();
        if words.next() != Some("faultmap") || words.next() != Some("v1") {
            return Err(parse_err(1, "expected `faultmap v1` header".into()));
        }
        for word in words {
            if let Some(v) = word.strip_prefix("rows=") {
                rows = v.parse::<usize>().ok();
            } else if let Some(v) = word.strip_prefix("cols=") {
                cols = v.parse::<usize>().ok();
            }
        }
        let (rows, cols) = match (rows, cols) {
            (Some(r), Some(c)) => (r, c),
            _ => return Err(parse_err(1, "header must carry rows= and cols=".into())),
        };
        let mut map = FaultMap::empty(rows, cols);

        for (index, line) in lines {
            let lineno = index + 1;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let number = |s: &str| -> Result<usize, TechError> {
                s.parse::<usize>()
                    .map_err(|_| parse_err(lineno, format!("`{s}` is not an index")))
            };
            match fields.as_slice() {
                ["cell", row, col, rest @ ..] => {
                    let (row, col) = (number(row)?, number(col)?);
                    if row >= rows || col >= cols {
                        return Err(parse_err(
                            lineno,
                            format!("cell ({row}, {col}) outside {rows}×{cols}"),
                        ));
                    }
                    let fault = match rest {
                        ["stuck-hrs"] => CellFault::StuckAtHrs,
                        ["stuck-lrs"] => CellFault::StuckAtLrs,
                        ["drift", factor] => {
                            let factor = factor.parse::<f64>().map_err(|_| {
                                parse_err(lineno, format!("`{factor}` is not a drift factor"))
                            })?;
                            if !(factor > 0.0 && factor.is_finite()) {
                                return Err(parse_err(
                                    lineno,
                                    format!("drift factor {factor} must be finite and positive"),
                                ));
                            }
                            CellFault::Drifted { factor }
                        }
                        _ => {
                            return Err(parse_err(lineno, format!("unknown cell fault: {line}")))
                        }
                    };
                    map.cells.insert((row, col), fault);
                }
                ["wordline", row, seg] => {
                    let (row, seg) = (number(row)?, number(seg)?);
                    if row >= rows || seg >= cols.max(1) {
                        return Err(parse_err(lineno, format!("wordline {row}@{seg} out of range")));
                    }
                    map.broken_wordlines.insert(row, seg);
                }
                ["bitline", col, seg] => {
                    let (col, seg) = (number(col)?, number(seg)?);
                    if col >= cols || seg == 0 || seg > rows {
                        return Err(parse_err(lineno, format!("bitline {col}@{seg} out of range")));
                    }
                    map.broken_bitlines.insert(col, seg);
                }
                _ => return Err(parse_err(lineno, format!("unknown directive: {line}"))),
            }
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy_rates() -> FaultRates {
        FaultRates {
            stuck_at_hrs: 0.05,
            stuck_at_lrs: 0.05,
            drifted: 0.02,
            drift_decades: 1.0,
            broken_wordline: 0.2,
            broken_bitline: 0.2,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultMap::generate(32, 32, &heavy_rates(), 1234).unwrap();
        let b = FaultMap::generate(32, 32, &heavy_rates(), 1234).unwrap();
        assert_eq!(a, b);
        let c = FaultMap::generate(32, 32, &heavy_rates(), 1235).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn rates_scale_fault_counts() {
        let sparse = FaultMap::generate(64, 64, &FaultRates::stuck_at(0.01), 7).unwrap();
        let dense = FaultMap::generate(64, 64, &FaultRates::stuck_at(0.3), 7).unwrap();
        assert!(sparse.cell_fault_count() < dense.cell_fault_count());
        // 1 % of 4096 cells: expect on the order of 40, certainly < 120.
        assert!(sparse.cell_fault_count() < 120);
        assert!(dense.cell_fault_count() > 800);
    }

    #[test]
    fn zero_rates_make_clean_maps() {
        let map = FaultMap::generate(16, 16, &FaultRates::default(), 99).unwrap();
        assert!(map.is_clean());
        assert_eq!(map.defective_cell_fraction(), 0.0);
    }

    #[test]
    fn full_rate_kills_every_cell() {
        let map = FaultMap::generate(8, 8, &FaultRates::stuck_at(1.0), 3).unwrap();
        assert_eq!(map.cell_fault_count(), 64);
        assert_eq!(map.defective_cell_fraction(), 1.0);
    }

    #[test]
    fn invalid_rates_rejected() {
        let rates = FaultRates {
            stuck_at_hrs: 1.5,
            ..FaultRates::default()
        };
        assert!(rates.validate().is_err());

        let rates = FaultRates {
            stuck_at_hrs: 0.7,
            stuck_at_lrs: 0.7,
            ..FaultRates::default()
        };
        assert!(rates.validate().is_err(), "cell rates summing past 1 must fail");

        let rates = FaultRates {
            drift_decades: 9.0,
            ..FaultRates::default()
        };
        assert!(rates.validate().is_err());
    }

    #[test]
    fn text_roundtrip_is_identity() {
        let map = FaultMap::generate(16, 24, &heavy_rates(), 42).unwrap();
        assert!(!map.is_clean(), "seed must generate some defects");
        let text = map.to_text();
        let parsed = FaultMap::from_text(&text).unwrap();
        assert_eq!(map, parsed);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(matches!(
            FaultMap::from_text(""),
            Err(TechError::FaultMapParse { line: 1, .. })
        ));
        assert!(FaultMap::from_text("faultmap v2 rows=2 cols=2").is_err());
        assert!(FaultMap::from_text("faultmap v1 rows=2").is_err());
        let bad_cell = "faultmap v1 rows=2 cols=2\ncell 5 0 stuck-hrs";
        assert!(matches!(
            FaultMap::from_text(bad_cell),
            Err(TechError::FaultMapParse { line: 2, .. })
        ));
        let bad_kind = "faultmap v1 rows=2 cols=2\ncell 0 0 melted";
        assert!(FaultMap::from_text(bad_kind).is_err());
        let bad_drift = "faultmap v1 rows=2 cols=2\ncell 0 0 drift -3.0";
        assert!(FaultMap::from_text(bad_drift).is_err());
    }

    #[test]
    fn parse_accepts_comments_and_blanks() {
        let text = "faultmap v1 rows=2 cols=2\n# a comment\n\ncell 1 1 stuck-lrs\n";
        let map = FaultMap::from_text(text).unwrap();
        assert_eq!(map.cells.len(), 1);
    }

    #[test]
    fn defective_rows_and_spare_remap() {
        let mut map = FaultMap::empty(4, 4);
        map.cells.insert((1, 2), CellFault::StuckAtHrs);
        map.cells.insert((1, 3), CellFault::StuckAtLrs);
        map.broken_wordlines.insert(3, 0);
        assert_eq!(map.defective_rows(), vec![1, 3]);
        map.clear_row(1);
        assert_eq!(map.defective_rows(), vec![3]);
        map.clear_row(3);
        assert!(map.is_clean());
    }

    #[test]
    fn broken_lines_count_as_dead_cells() {
        let mut map = FaultMap::empty(4, 4);
        // Word line 0 broken at segment 2: cells (0, 2) and (0, 3) dead.
        map.broken_wordlines.insert(0, 2);
        // Bit line 1 broken at segment 3: cells (0..3, 1) dead; (0,1) is new.
        map.broken_bitlines.insert(1, 3);
        let expected = (2 + 3) as f64 / 16.0;
        assert!((map.defective_cell_fraction() - expected).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(FaultKind::StuckAtHrs.to_string(), "stuck-at-HRS");
        assert_eq!(FaultKind::BrokenBitline.to_string(), "broken-bitline");
        assert_eq!(CellFault::Drifted { factor: 2.0 }.kind(), FaultKind::DriftedResistance);
    }
}
