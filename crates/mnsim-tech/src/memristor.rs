//! Memristor device models.
//!
//! A memristor cell is a passive two-terminal element whose resistance can be
//! programmed to one of several states between `r_min` and `r_max`. MNSIM
//! (paper Table I) configures devices by: kind (RRAM/PCM), cell type
//! (1T1R/0T1R), resistance range (default 500 Ω … 500 kΩ), number of
//! programmable levels, a non-linear I-V characteristic, and an optional
//! random resistance variation `σ` (0 … 30 %, paper §VI.D).
//!
//! # The non-linear I-V model
//!
//! Real RRAM/PCM cells conduct super-linearly at higher bias. We use the
//! standard hyperbolic-sine conduction model
//!
//! ```text
//! I(V) = sinh(α·V) / (α · R_state)
//! ```
//!
//! which has low-field (V → 0) resistance exactly `R_state` and a *chord*
//! resistance at operating voltage `V`
//!
//! ```text
//! R_act(V) = V / I(V) = R_state · α·V / sinh(α·V)  ≤  R_state .
//! ```
//!
//! This is precisely the `R_idl → R_act` split that the paper's accuracy
//! model performs in its first approximation step (§VI.A).

use crate::error::TechError;
use crate::units::{Current, Resistance, Time, Voltage};

/// The physical device family used as the memristor cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DeviceKind {
    /// Resistive random-access memory (HfOx/TaOx-style filamentary cells).
    Rram,
    /// Phase-change memory (GST chalcogenide cells).
    Pcm,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Rram => write!(f, "RRAM"),
            DeviceKind::Pcm => write!(f, "PCM"),
        }
    }
}

/// The crossbar cell structure (paper Table I, `Cell_Type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CellType {
    /// One transistor + one memristor: MOS-accessed cell,
    /// area `3(W/L + 1)F²` (paper Eq. 7).
    OneT1R,
    /// Cross-point cell without access device, area `4F²` (paper Eq. 8).
    ZeroT1R,
}

impl std::fmt::Display for CellType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellType::OneT1R => write!(f, "1T1R"),
            CellType::ZeroT1R => write!(f, "0T1R"),
        }
    }
}

/// The I-V characteristic used to convert a programmed (low-field) state
/// resistance into the chord resistance at the operating voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IvModel {
    /// Ideal ohmic cell: `R_act = R_state` at every bias.
    Linear,
    /// Hyperbolic-sine conduction with non-linearity coefficient `α` (1/V).
    ///
    /// Typical filamentary RRAM shows `α ≈ 1 … 3 /V`.
    Sinh {
        /// Non-linearity coefficient in 1/V.
        alpha: f64,
    },
}

impl IvModel {
    /// Current through a cell programmed to `state` resistance at bias `v`.
    pub fn current(&self, state: Resistance, v: Voltage) -> Current {
        match *self {
            IvModel::Linear => v / state,
            IvModel::Sinh { alpha } => {
                Current::from_amperes((alpha * v.volts()).sinh() / (alpha * state.ohms()))
            }
        }
    }

    /// Chord resistance `V / I(V)` at bias `v`.
    ///
    /// At `v = 0` the low-field limit (`state` itself) is returned.
    pub fn chord_resistance(&self, state: Resistance, v: Voltage) -> Resistance {
        match *self {
            IvModel::Linear => state,
            IvModel::Sinh { alpha } => {
                let x = alpha * v.volts();
                if x.abs() < 1e-12 {
                    state
                } else {
                    Resistance::from_ohms(state.ohms() * x / x.sinh())
                }
            }
        }
    }

    /// Differential (small-signal) resistance `dV/dI` at bias `v`.
    pub fn differential_resistance(&self, state: Resistance, v: Voltage) -> Resistance {
        match *self {
            IvModel::Linear => state,
            IvModel::Sinh { alpha } => {
                // dI/dV = cosh(αV) / R_state  ⇒  dV/dI = R_state / cosh(αV)
                Resistance::from_ohms(state.ohms() / (alpha * v.volts()).cosh())
            }
        }
    }
}

/// A complete memristor device model (paper Table I `Memristor_Model`,
/// `Cell_Type`, `Resistance_Range` rows).
#[derive(Debug, Clone, PartialEq)]
pub struct MemristorModel {
    /// Device family.
    pub kind: DeviceKind,
    /// Cell access structure.
    pub cell_type: CellType,
    /// Lowest programmable resistance (most conductive state).
    pub r_min: Resistance,
    /// Highest programmable resistance (least conductive state).
    pub r_max: Resistance,
    /// Number of programmable bits per cell (levels = 2^bits).
    pub bits_per_cell: u32,
    /// Non-linear I-V characteristic.
    pub iv: IvModel,
    /// Maximum fractional random resistance deviation `σ` (0 … 0.3);
    /// 0 reproduces the paper's noise-free reference results.
    pub sigma: f64,
    /// Read (compute) bias voltage applied to a selected cell.
    pub v_read: Voltage,
    /// Programming (write) voltage.
    pub v_write: Voltage,
    /// Single-cell write pulse duration.
    pub write_latency: Time,
    /// Access-transistor W/L ratio (1T1R area model, paper Eq. 7).
    pub access_wl_ratio: f64,
    /// Memristor technology feature size in nanometres (cell pitch unit).
    pub feature_nm: u32,
}

impl MemristorModel {
    /// The paper's reference RRAM device: 500 Ω – 500 kΩ, 7-bit multilevel
    /// capability, 1T1R cell, mild sinh non-linearity.
    pub fn rram_default() -> Self {
        MemristorModel {
            kind: DeviceKind::Rram,
            cell_type: CellType::OneT1R,
            r_min: Resistance::from_ohms(500.0),
            r_max: Resistance::from_kilo_ohms(500.0),
            bits_per_cell: 7,
            iv: IvModel::Sinh { alpha: 2.5 },
            sigma: 0.0,
            v_read: Voltage::from_volts(0.5),
            v_write: Voltage::from_volts(2.0),
            write_latency: Time::from_nanoseconds(50.0),
            access_wl_ratio: 2.0,
            feature_nm: 45,
        }
    }

    /// A representative PCM device: higher resistances, slower writes,
    /// stronger non-linearity.
    pub fn pcm_default() -> Self {
        MemristorModel {
            kind: DeviceKind::Pcm,
            cell_type: CellType::ZeroT1R,
            r_min: Resistance::from_kilo_ohms(5.0),
            r_max: Resistance::from_mega_ohms(1.0),
            bits_per_cell: 4,
            iv: IvModel::Sinh { alpha: 2.0 },
            sigma: 0.0,
            v_read: Voltage::from_volts(0.4),
            v_write: Voltage::from_volts(3.0),
            write_latency: Time::from_nanoseconds(150.0),
            access_wl_ratio: 4.0,
            feature_nm: 45,
        }
    }

    /// Validates the physical consistency of the model.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::InvalidDeviceParameter`] if any range constraint
    /// is violated (non-positive resistances, inverted range, `σ ∉ [0, 0.3]`,
    /// zero levels, …).
    pub fn validate(&self) -> Result<(), TechError> {
        if self.r_min.ohms() <= 0.0 {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "r_min",
                reason: "must be positive".into(),
            });
        }
        if self.r_max.ohms() <= self.r_min.ohms() {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "r_max",
                reason: format!(
                    "must exceed r_min ({} > {} required)",
                    self.r_max, self.r_min
                ),
            });
        }
        if self.bits_per_cell == 0 || self.bits_per_cell > 8 {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "bits_per_cell",
                reason: "must be in 1..=8".into(),
            });
        }
        if !(0.0..=0.3).contains(&self.sigma) {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "sigma",
                reason: "device variation must be within 0 %..=30 % (paper §VI.D)".into(),
            });
        }
        if self.v_read.volts() <= 0.0 || self.v_write.volts() <= self.v_read.volts() {
            return Err(TechError::InvalidDeviceParameter {
                parameter: "v_write",
                reason: "write voltage must exceed the (positive) read voltage".into(),
            });
        }
        Ok(())
    }

    /// Number of programmable resistance levels (`2^bits_per_cell`).
    pub fn levels(&self) -> u32 {
        1 << self.bits_per_cell
    }

    /// The state resistance for a given level.
    ///
    /// Levels are conductance-linear (the natural spacing for matrix-vector
    /// multiplication): level 0 is `r_max` (minimum conductance), the top
    /// level is `r_min`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn resistance_for_level(&self, level: u32) -> Resistance {
        let levels = self.levels();
        assert!(
            level < levels,
            "level {level} out of range for a {}-level cell",
            levels
        );
        let g_min = 1.0 / self.r_max.ohms();
        let g_max = 1.0 / self.r_min.ohms();
        let g = g_min + (g_max - g_min) * level as f64 / (levels - 1) as f64;
        Resistance::from_ohms(1.0 / g)
    }

    /// The quantized level whose conductance is nearest to the requested
    /// normalized weight in `[0, 1]` (0 → `r_max`, 1 → `r_min`).
    pub fn level_for_weight(&self, weight: f64) -> u32 {
        let levels = self.levels();
        let clamped = weight.clamp(0.0, 1.0);
        (clamped * (levels - 1) as f64).round() as u32
    }

    /// Harmonic mean of `r_min` and `r_max`.
    ///
    /// MNSIM uses this as the representative all-cell resistance in the
    /// average-case computation power estimation (paper §V.A).
    pub fn harmonic_mean_resistance(&self) -> Resistance {
        let rmin = self.r_min.ohms();
        let rmax = self.r_max.ohms();
        Resistance::from_ohms(2.0 * rmin * rmax / (rmin + rmax))
    }

    /// Chord resistance of a cell programmed to `state` at the model's read
    /// voltage — the `R_act` of the paper's accuracy model.
    pub fn actual_resistance(&self, state: Resistance) -> Resistance {
        self.iv.chord_resistance(state, self.v_read)
    }

    /// Worst-case resistance under device variation: `(1 ± σ)·R_act`
    /// (paper Eq. 16). `positive` selects the sign of the deviation.
    pub fn varied_resistance(&self, state: Resistance, positive: bool) -> Resistance {
        let r_act = self.actual_resistance(state);
        let factor = if positive {
            1.0 + self.sigma
        } else {
            1.0 - self.sigma
        };
        Resistance::from_ohms(r_act.ohms() * factor)
    }

    /// Area of a single cell in units of `F²` of the memristor technology
    /// (paper Eqs. 7–8).
    pub fn cell_area_f2(&self) -> f64 {
        match self.cell_type {
            CellType::OneT1R => 3.0 * (self.access_wl_ratio + 1.0),
            CellType::ZeroT1R => 4.0,
        }
    }

    /// Absolute area of a single cell.
    pub fn cell_area(&self) -> crate::units::Area {
        let f = self.feature_nm as f64 * 1e-9;
        crate::units::Area::from_square_meters(self.cell_area_f2() * f * f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        MemristorModel::rram_default().validate().unwrap();
        MemristorModel::pcm_default().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        let mut m = MemristorModel::rram_default();
        m.r_max = Resistance::from_ohms(100.0); // below r_min
        assert!(m.validate().is_err());

        let mut m = MemristorModel::rram_default();
        m.sigma = 0.5;
        assert!(m.validate().is_err());

        let mut m = MemristorModel::rram_default();
        m.bits_per_cell = 0;
        assert!(m.validate().is_err());

        let mut m = MemristorModel::rram_default();
        m.v_write = Voltage::from_volts(0.1);
        assert!(m.validate().is_err());
    }

    #[test]
    fn level_endpoints_hit_range_bounds() {
        let m = MemristorModel::rram_default();
        let lo = m.resistance_for_level(0);
        let hi = m.resistance_for_level(m.levels() - 1);
        assert!((lo.ohms() - m.r_max.ohms()).abs() / m.r_max.ohms() < 1e-12);
        assert!((hi.ohms() - m.r_min.ohms()).abs() / m.r_min.ohms() < 1e-12);
    }

    #[test]
    fn levels_are_conductance_monotone() {
        let m = MemristorModel::rram_default();
        let mut prev_g = 0.0;
        for level in 0..m.levels() {
            let g = 1.0 / m.resistance_for_level(level).ohms();
            assert!(g > prev_g, "conductance must increase with level");
            prev_g = g;
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_out_of_range_panics() {
        let m = MemristorModel::rram_default();
        let _ = m.resistance_for_level(m.levels());
    }

    #[test]
    fn weight_level_roundtrip() {
        let m = MemristorModel::rram_default();
        for level in [0, 1, 63, 64, 127] {
            let w = level as f64 / (m.levels() - 1) as f64;
            assert_eq!(m.level_for_weight(w), level);
        }
        assert_eq!(m.level_for_weight(-0.5), 0);
        assert_eq!(m.level_for_weight(1.5), m.levels() - 1);
    }

    #[test]
    fn harmonic_mean_between_bounds() {
        let m = MemristorModel::rram_default();
        let h = m.harmonic_mean_resistance().ohms();
        assert!(h > m.r_min.ohms() && h < m.r_max.ohms());
        // harmonic mean of 500 and 500k = 2*500*500k/(500.5k) ≈ 999.0
        assert!((h - 999.000999).abs() < 1e-3);
    }

    #[test]
    fn sinh_chord_resistance_below_state() {
        let iv = IvModel::Sinh { alpha: 2.0 };
        let state = Resistance::from_kilo_ohms(10.0);
        let r = iv.chord_resistance(state, Voltage::from_volts(0.5));
        assert!(r.ohms() < state.ohms());
        // zero-bias limit returns the programmed state
        let r0 = iv.chord_resistance(state, Voltage::from_volts(0.0));
        assert_eq!(r0.ohms(), state.ohms());
    }

    #[test]
    fn sinh_current_exceeds_linear_at_high_bias() {
        let state = Resistance::from_kilo_ohms(1.0);
        let v = Voltage::from_volts(1.0);
        let linear = IvModel::Linear.current(state, v);
        let sinh = IvModel::Sinh { alpha: 2.0 }.current(state, v);
        assert!(sinh.amperes() > linear.amperes());
    }

    #[test]
    fn sinh_low_field_matches_linear() {
        let state = Resistance::from_kilo_ohms(1.0);
        let v = Voltage::from_millivolts(1.0);
        let linear = IvModel::Linear.current(state, v).amperes();
        let sinh = IvModel::Sinh { alpha: 2.0 }.current(state, v).amperes();
        assert!((sinh - linear).abs() / linear < 1e-5);
    }

    #[test]
    fn differential_resistance_decreases_with_bias() {
        let iv = IvModel::Sinh { alpha: 2.0 };
        let state = Resistance::from_kilo_ohms(10.0);
        let r_low = iv.differential_resistance(state, Voltage::from_volts(0.1));
        let r_high = iv.differential_resistance(state, Voltage::from_volts(1.0));
        assert!(r_high.ohms() < r_low.ohms());
    }

    #[test]
    fn variation_brackets_actual_resistance() {
        let mut m = MemristorModel::rram_default();
        m.sigma = 0.2;
        let state = Resistance::from_kilo_ohms(100.0);
        let nominal = m.actual_resistance(state).ohms();
        assert!(m.varied_resistance(state, true).ohms() > nominal);
        assert!(m.varied_resistance(state, false).ohms() < nominal);
    }

    #[test]
    fn cell_area_models() {
        let mut m = MemristorModel::rram_default();
        m.cell_type = CellType::ZeroT1R;
        assert_eq!(m.cell_area_f2(), 4.0);
        m.cell_type = CellType::OneT1R;
        m.access_wl_ratio = 2.0;
        assert_eq!(m.cell_area_f2(), 9.0); // 3(2+1)
        assert!(m.cell_area().square_meters() > 0.0);
    }

    #[test]
    fn displays() {
        assert_eq!(DeviceKind::Rram.to_string(), "RRAM");
        assert_eq!(CellType::OneT1R.to_string(), "1T1R");
    }
}
