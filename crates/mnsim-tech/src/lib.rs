//! # mnsim-tech — technology and device substrate for MNSIM
//!
//! This crate provides the *technology layer* that every performance model in
//! the MNSIM platform consumes:
//!
//! * [`units`] — strongly typed physical quantities ([`Resistance`],
//!   [`Power`], [`Area`], …) so that a latency can never be added to an area
//!   by accident.
//! * [`cmos`] — a table-driven CMOS process database (130 nm … 22 nm) in the
//!   spirit of the PTM / CACTI technology files the original paper uses.
//! * [`interconnect`] — wire technology nodes (90 nm … 18 nm) supplying the
//!   per-segment crossbar wire resistance `r` that drives the behavior-level
//!   accuracy model.
//! * [`memristor`] — memristor device models (RRAM / PCM): resistance range,
//!   multi-level cells, non-linear I-V characteristics and device variation.
//! * [`converters`] — a small performance database of ADC / DAC / sensing
//!   amplifier designs (SAR ADC, multilevel SA, …).
//! * [`fault`] — hard-defect models: stuck-at cells, broken word/bit lines,
//!   drifted resistances, and seeded, replayable fault maps.
//!
//! All numeric values in the databases are *reconstructed* representative
//! values (documented per entry); the MNSIM models only rely on their relative
//! magnitudes and per-node trends, which is exactly how the original platform
//! treats its technology files.
//!
//! # Examples
//!
//! ```
//! use mnsim_tech::cmos::CmosNode;
//! use mnsim_tech::memristor::MemristorModel;
//!
//! let node = CmosNode::N90;
//! assert!(node.params().vdd.volts() > 1.0);
//!
//! let device = MemristorModel::rram_default();
//! // the harmonic mean used by MNSIM's average-case power model
//! let r = device.harmonic_mean_resistance();
//! assert!(r.ohms() > device.r_min.ohms() && r.ohms() < device.r_max.ohms());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface failures as typed errors; tests may unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cmos;
pub mod converters;
pub mod error;
pub mod fault;
pub mod interconnect;
pub mod memristor;
pub mod units;

pub use cmos::{CmosNode, CmosParams};
pub use converters::{AdcKind, AdcSpec, DacSpec, SenseAmpSpec};
pub use error::TechError;
pub use fault::{CellFault, FaultKind, FaultMap, FaultRates};
pub use interconnect::InterconnectNode;
pub use memristor::{CellType, DeviceKind, IvModel, MemristorModel};
pub use units::{
    Area, Capacitance, Conductance, Current, Energy, Frequency, Power, Resistance, Time, Voltage,
};
