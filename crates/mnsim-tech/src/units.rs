//! Strongly typed physical quantities.
//!
//! Every quantity is a newtype over `f64` stored in SI base units
//! (ohms, farads, volts, amperes, watts, joules, seconds, square metres,
//! hertz, siemens). Constructors and accessors exist for the scales that are
//! idiomatic in the memristor-accelerator domain (kilo-ohms, nanoseconds,
//! square millimetres, femtofarads, …).
//!
//! Only physically meaningful arithmetic is implemented:
//!
//! * quantities of the same kind add and subtract;
//! * `Power × Time = Energy`, `Energy / Time = Power`;
//! * `Voltage × Current = Power`, `Voltage / Current = Resistance`,
//!   `Voltage / Resistance = Current`;
//! * `Resistance ↔ Conductance` reciprocals;
//! * every quantity scales by a dimensionless `f64`.
//!
//! # Examples
//!
//! ```
//! use mnsim_tech::units::{Power, Time};
//!
//! let p = Power::from_milliwatts(17.2);
//! let t = Time::from_nanoseconds(381.5);
//! let e = p * t;
//! assert!((e.microjoules() - 17.2e-3 * 381.5e-9 * 1e6).abs() < 1e-15);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $unit:literal, $base:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a value in SI base units.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in SI base units.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the value in SI base units (alias of [`Self::value`],
            /// named after the unit for readability at call sites).
            #[inline]
            pub const fn $base(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}

quantity!(
    /// Electrical resistance in ohms (Ω).
    Resistance, "Ω", ohms
);
quantity!(
    /// Electrical conductance in siemens (S).
    Conductance, "S", siemens
);
quantity!(
    /// Capacitance in farads (F).
    Capacitance, "F", farads
);
quantity!(
    /// Electric potential in volts (V).
    Voltage, "V", volts
);
quantity!(
    /// Electric current in amperes (A).
    Current, "A", amperes
);
quantity!(
    /// Power in watts (W).
    Power, "W", watts
);
quantity!(
    /// Energy in joules (J).
    Energy, "J", joules
);
quantity!(
    /// Time (latency) in seconds (s).
    Time, "s", seconds
);
quantity!(
    /// Silicon area in square metres (m²).
    Area, "m²", square_meters
);
quantity!(
    /// Frequency in hertz (Hz).
    Frequency, "Hz", hertz
);

// ---- scale helpers -------------------------------------------------------

impl Resistance {
    /// Creates a resistance from ohms.
    #[inline]
    pub const fn from_ohms(ohms: f64) -> Self {
        Self(ohms)
    }
    /// Creates a resistance from kilo-ohms.
    #[inline]
    pub const fn from_kilo_ohms(kohms: f64) -> Self {
        Self(kohms * 1e3)
    }
    /// Creates a resistance from mega-ohms.
    #[inline]
    pub const fn from_mega_ohms(mohms: f64) -> Self {
        Self(mohms * 1e6)
    }
    /// The value in kilo-ohms.
    #[inline]
    pub fn kilo_ohms(self) -> f64 {
        self.0 / 1e3
    }
    /// Reciprocal conductance.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the resistance is zero.
    #[inline]
    pub fn to_conductance(self) -> Conductance {
        debug_assert!(self.0 != 0.0, "zero resistance has no finite conductance");
        Conductance(1.0 / self.0)
    }
}

impl Conductance {
    /// Creates a conductance from siemens.
    #[inline]
    pub const fn from_siemens(s: f64) -> Self {
        Self(s)
    }
    /// Reciprocal resistance.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the conductance is zero.
    #[inline]
    pub fn to_resistance(self) -> Resistance {
        debug_assert!(self.0 != 0.0, "zero conductance has no finite resistance");
        Resistance(1.0 / self.0)
    }
}

impl Capacitance {
    /// Creates a capacitance from farads.
    #[inline]
    pub const fn from_farads(f: f64) -> Self {
        Self(f)
    }
    /// Creates a capacitance from picofarads.
    #[inline]
    pub const fn from_picofarads(pf: f64) -> Self {
        Self(pf * 1e-12)
    }
    /// Creates a capacitance from femtofarads.
    #[inline]
    pub const fn from_femtofarads(ff: f64) -> Self {
        Self(ff * 1e-15)
    }
    /// The value in femtofarads.
    #[inline]
    pub fn femtofarads(self) -> f64 {
        self.0 / 1e-15
    }
}

impl Voltage {
    /// Creates a voltage from volts.
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Self(v)
    }
    /// Creates a voltage from millivolts.
    #[inline]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self(mv * 1e-3)
    }
    /// The value in millivolts.
    #[inline]
    pub fn millivolts(self) -> f64 {
        self.0 / 1e-3
    }
}

impl Current {
    /// Creates a current from amperes.
    #[inline]
    pub const fn from_amperes(a: f64) -> Self {
        Self(a)
    }
    /// Creates a current from microamperes.
    #[inline]
    pub const fn from_microamperes(ua: f64) -> Self {
        Self(ua * 1e-6)
    }
    /// The value in microamperes.
    #[inline]
    pub fn microamperes(self) -> f64 {
        self.0 / 1e-6
    }
}

impl Power {
    /// Creates a power from watts.
    #[inline]
    pub const fn from_watts(w: f64) -> Self {
        Self(w)
    }
    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Self(mw * 1e-3)
    }
    /// Creates a power from microwatts.
    #[inline]
    pub const fn from_microwatts(uw: f64) -> Self {
        Self(uw * 1e-6)
    }
    /// Creates a power from nanowatts.
    #[inline]
    pub const fn from_nanowatts(nw: f64) -> Self {
        Self(nw * 1e-9)
    }
    /// The value in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.0 / 1e-3
    }
    /// The value in microwatts.
    #[inline]
    pub fn microwatts(self) -> f64 {
        self.0 / 1e-6
    }
}

impl Energy {
    /// Creates an energy from joules.
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Self(j)
    }
    /// Creates an energy from microjoules.
    #[inline]
    pub const fn from_microjoules(uj: f64) -> Self {
        Self(uj * 1e-6)
    }
    /// Creates an energy from picojoules.
    #[inline]
    pub const fn from_picojoules(pj: f64) -> Self {
        Self(pj * 1e-12)
    }
    /// Creates an energy from femtojoules.
    #[inline]
    pub const fn from_femtojoules(fj: f64) -> Self {
        Self(fj * 1e-15)
    }
    /// The value in microjoules.
    #[inline]
    pub fn microjoules(self) -> f64 {
        self.0 / 1e-6
    }
    /// The value in millijoules.
    #[inline]
    pub fn millijoules(self) -> f64 {
        self.0 / 1e-3
    }
    /// The value in picojoules.
    #[inline]
    pub fn picojoules(self) -> f64 {
        self.0 / 1e-12
    }
}

impl Time {
    /// Creates a time from seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Self(s)
    }
    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_microseconds(us: f64) -> Self {
        Self(us * 1e-6)
    }
    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self(ns * 1e-9)
    }
    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_picoseconds(ps: f64) -> Self {
        Self(ps * 1e-12)
    }
    /// The value in nanoseconds.
    #[inline]
    pub fn nanoseconds(self) -> f64 {
        self.0 / 1e-9
    }
    /// The value in microseconds.
    #[inline]
    pub fn microseconds(self) -> f64 {
        self.0 / 1e-6
    }
}

impl Area {
    /// Creates an area from square metres.
    #[inline]
    pub const fn from_square_meters(m2: f64) -> Self {
        Self(m2)
    }
    /// Creates an area from square millimetres.
    #[inline]
    pub const fn from_square_millimeters(mm2: f64) -> Self {
        Self(mm2 * 1e-6)
    }
    /// Creates an area from square micrometres.
    #[inline]
    pub const fn from_square_micrometers(um2: f64) -> Self {
        Self(um2 * 1e-12)
    }
    /// The value in square millimetres.
    #[inline]
    pub fn square_millimeters(self) -> f64 {
        self.0 / 1e-6
    }
    /// The value in square micrometres.
    #[inline]
    pub fn square_micrometers(self) -> f64 {
        self.0 / 1e-12
    }
}

impl Frequency {
    /// Creates a frequency from hertz.
    #[inline]
    pub const fn from_hertz(hz: f64) -> Self {
        Self(hz)
    }
    /// Creates a frequency from megahertz.
    #[inline]
    pub const fn from_megahertz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }
    /// Creates a frequency from gigahertz.
    #[inline]
    pub const fn from_gigahertz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }
    /// The value in megahertz.
    #[inline]
    pub fn megahertz(self) -> f64 {
        self.0 / 1e6
    }
    /// The period corresponding to this frequency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the frequency is zero.
    #[inline]
    pub fn period(self) -> Time {
        debug_assert!(self.0 != 0.0, "zero frequency has no finite period");
        Time(1.0 / self.0)
    }
}

// ---- cross-quantity arithmetic -------------------------------------------

impl Mul<Time> for Power {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Time) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    #[inline]
    fn div(self, rhs: Time) -> Power {
        Power(self.0 / rhs.0)
    }
}

impl Div<Power> for Energy {
    type Output = Time;
    #[inline]
    fn div(self, rhs: Power) -> Time {
        Time(self.0 / rhs.0)
    }
}

impl Mul<Current> for Voltage {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Current) -> Power {
        Power(self.0 * rhs.0)
    }
}

impl Mul<Voltage> for Current {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Voltage) -> Power {
        Power(self.0 * rhs.0)
    }
}

impl Div<Current> for Voltage {
    type Output = Resistance;
    #[inline]
    fn div(self, rhs: Current) -> Resistance {
        Resistance(self.0 / rhs.0)
    }
}

impl Div<Resistance> for Voltage {
    type Output = Current;
    #[inline]
    fn div(self, rhs: Resistance) -> Current {
        Current(self.0 / rhs.0)
    }
}

impl Mul<Resistance> for Current {
    type Output = Voltage;
    #[inline]
    fn mul(self, rhs: Resistance) -> Voltage {
        Voltage(self.0 * rhs.0)
    }
}

impl Mul<Conductance> for Voltage {
    type Output = Current;
    #[inline]
    fn mul(self, rhs: Conductance) -> Current {
        Current(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_same_kind() {
        let a = Resistance::from_ohms(100.0);
        let b = Resistance::from_kilo_ohms(1.0);
        assert_eq!((a + b).ohms(), 1100.0);
        assert_eq!((b - a).ohms(), 900.0);
    }

    #[test]
    fn power_time_energy_roundtrip() {
        let p = Power::from_milliwatts(10.0);
        let t = Time::from_nanoseconds(100.0);
        let e = p * t;
        assert!((e.picojoules() - 1000.0).abs() < 1e-9);
        let p2 = e / t;
        assert!((p2.milliwatts() - 10.0).abs() < 1e-12);
        let t2 = e / p;
        assert!((t2.nanoseconds() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ohms_law() {
        let v = Voltage::from_volts(1.0);
        let r = Resistance::from_kilo_ohms(2.0);
        let i = v / r;
        assert!((i.microamperes() - 500.0).abs() < 1e-9);
        let p = v * i;
        assert!((p.microwatts() - 500.0).abs() < 1e-9);
        let v2 = i * r;
        assert!((v2.volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reciprocal_resistance_conductance() {
        let r = Resistance::from_ohms(500.0);
        let g = r.to_conductance();
        assert!((g.siemens() - 0.002).abs() < 1e-15);
        assert!((g.to_resistance().ohms() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn dimensionless_ratio() {
        let a = Area::from_square_millimeters(10.0);
        let b = Area::from_square_millimeters(2.5);
        assert!((a / b - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_scaling_commutes() {
        let e = Energy::from_picojoules(3.0);
        assert_eq!((e * 2.0).picojoules(), (2.0 * e).picojoules());
        assert!(((e / 2.0).picojoules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_iterator() {
        let total: Power = (1..=4).map(|i| Power::from_milliwatts(i as f64)).sum();
        assert!((total.milliwatts() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Resistance::from_ohms(5.0)), "5 Ω");
        assert_eq!(format!("{}", Time::from_seconds(1.0)), "1 s");
    }

    #[test]
    fn frequency_period() {
        let f = Frequency::from_megahertz(50.0);
        assert!((f.period().nanoseconds() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_abs() {
        let a = Time::from_nanoseconds(-3.0);
        assert_eq!(a.abs().nanoseconds(), 3.0);
        let b = Time::from_nanoseconds(5.0);
        assert_eq!(a.max(b).nanoseconds(), 5.0);
        assert_eq!(a.min(b).nanoseconds(), -3.0);
    }
}
