//! Interconnect (wire) technology model.
//!
//! The behavior-level accuracy model of MNSIM (paper §VI) depends on a single
//! interconnect quantity: the resistance `r` of the wire segment between two
//! neighbouring crossbar cells. The paper sweeps the interconnect technology
//! node over {18, 22, 28, 36, 45} nm (up to 90 nm in the CNN case study) and
//! shows that smaller wires — with their higher per-segment resistance —
//! degrade computing accuracy (Fig. 5).
//!
//! We model the segment as a copper wire of width = node size, aspect ratio
//! 2, and length = one cell pitch (2 cell features per crossbar pitch),
//! including the well-known effective-resistivity increase at narrow line
//! widths (surface/grain-boundary scattering, barrier thickness).

use crate::error::TechError;
use crate::units::{Capacitance, Resistance};

/// Bulk resistivity of copper in Ω·m.
const RHO_CU: f64 = 1.72e-8;

/// An interconnect technology node supported by the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum InterconnectNode {
    /// 18 nm half-pitch wires.
    N18,
    /// 22 nm half-pitch wires.
    N22,
    /// 28 nm half-pitch wires.
    N28,
    /// 36 nm half-pitch wires.
    N36,
    /// 45 nm half-pitch wires.
    N45,
    /// 65 nm half-pitch wires.
    N65,
    /// 90 nm half-pitch wires (upper bound of the VGG-16 case study sweep).
    N90,
}

impl InterconnectNode {
    /// All nodes, smallest first (the order of the paper's sweeps).
    pub const ALL: [InterconnectNode; 7] = [
        InterconnectNode::N18,
        InterconnectNode::N22,
        InterconnectNode::N28,
        InterconnectNode::N36,
        InterconnectNode::N45,
        InterconnectNode::N65,
        InterconnectNode::N90,
    ];

    /// The sweep used by the large-computation-bank case study (Table IV).
    pub const BANK_SWEEP: [InterconnectNode; 5] = [
        InterconnectNode::N18,
        InterconnectNode::N22,
        InterconnectNode::N28,
        InterconnectNode::N36,
        InterconnectNode::N45,
    ];

    /// Looks a node up by half-pitch in nanometres.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownNode`] if the size is not in the database.
    pub fn from_nanometers(nanometers: u32) -> Result<Self, TechError> {
        match nanometers {
            18 => Ok(InterconnectNode::N18),
            22 => Ok(InterconnectNode::N22),
            28 => Ok(InterconnectNode::N28),
            36 => Ok(InterconnectNode::N36),
            45 => Ok(InterconnectNode::N45),
            65 => Ok(InterconnectNode::N65),
            90 => Ok(InterconnectNode::N90),
            _ => Err(TechError::UnknownNode {
                nanometers,
                database: "interconnect",
            }),
        }
    }

    /// The wire half-pitch in nanometres.
    pub const fn nanometers(self) -> u32 {
        match self {
            InterconnectNode::N18 => 18,
            InterconnectNode::N22 => 22,
            InterconnectNode::N28 => 28,
            InterconnectNode::N36 => 36,
            InterconnectNode::N45 => 45,
            InterconnectNode::N65 => 65,
            InterconnectNode::N90 => 90,
        }
    }

    /// Effective copper resistivity at this line width, in Ω·m.
    ///
    /// Narrow lines suffer from electron surface scattering and the
    /// non-scalable diffusion-barrier liner; the multiplier values follow the
    /// ITRS effective-resistivity trend (≈1× at 90 nm up to ≈3× at 18 nm).
    pub fn effective_resistivity(self) -> f64 {
        let mult = match self {
            InterconnectNode::N18 => 3.0,
            InterconnectNode::N22 => 2.6,
            InterconnectNode::N28 => 2.2,
            InterconnectNode::N36 => 1.8,
            InterconnectNode::N45 => 1.5,
            InterconnectNode::N65 => 1.2,
            InterconnectNode::N90 => 1.0,
        };
        RHO_CU * mult
    }

    /// Resistance of the wire segment between two neighbouring crossbar
    /// cells — the `r` of the paper's Eq. (10).
    ///
    /// Geometry: length = one crossbar cell pitch = 4 half-pitches (wire +
    /// space on either side of the via landing), cross-section =
    /// width × (2 × width) for aspect-ratio-2 wires.
    pub fn segment_resistance(self) -> Resistance {
        let w = self.nanometers() as f64 * 1e-9;
        let length = 4.0 * w;
        let cross_section = w * (2.0 * w);
        Resistance::from_ohms(self.effective_resistivity() * length / cross_section)
    }

    /// Capacitance of one cell-to-cell wire segment.
    ///
    /// Used only by latency models (RC settle time); the accuracy model
    /// deliberately ignores it (paper §VI.B). Per-length wire capacitance is
    /// nearly node-independent (≈0.2 fF/µm), so the segment value scales
    /// only with the pitch.
    pub fn segment_capacitance(self) -> Capacitance {
        let length_um = 4.0 * self.nanometers() as f64 * 1e-3;
        Capacitance::from_femtofarads(0.2 * length_um)
    }

    /// Resistance of a global (inter-bank) wire of the given length.
    ///
    /// Global wires run on thick upper metal: width = 4 half-pitches,
    /// aspect ratio 2.
    pub fn global_wire_resistance(self, length_m: f64) -> Resistance {
        let w = 4.0 * self.nanometers() as f64 * 1e-9;
        Resistance::from_ohms(self.effective_resistivity() * length_m / (w * 2.0 * w))
    }

    /// Capacitance of a global wire of the given length (≈0.2 fF/µm).
    pub fn global_wire_capacitance(self, length_m: f64) -> Capacitance {
        Capacitance::from_femtofarads(0.2 * length_m * 1e6)
    }
}

impl std::fmt::Display for InterconnectNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nm wire", self.nanometers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_nanometers() {
        assert_eq!(
            InterconnectNode::from_nanometers(28).unwrap(),
            InterconnectNode::N28
        );
        assert!(InterconnectNode::from_nanometers(10).is_err());
    }

    #[test]
    fn resistance_grows_as_wires_shrink() {
        // The central claim behind the paper's Fig. 5: smaller interconnect
        // nodes have larger per-segment resistance, hence worse accuracy.
        let mut prev = 0.0;
        for node in InterconnectNode::ALL.iter().rev() {
            let r = node.segment_resistance().ohms();
            assert!(
                r > prev,
                "{node}: segment resistance must grow as wires shrink"
            );
            prev = r;
        }
    }

    #[test]
    fn segment_resistance_magnitude_is_sane() {
        // The model is only valid if r << R_memristor (paper Eq. 10
        // approximation); memristor R_min is 500 Ω in the default device, so
        // r must land in the single-ohm range.
        for node in InterconnectNode::ALL {
            let r = node.segment_resistance().ohms();
            assert!(r > 0.05 && r < 50.0, "{node}: r = {r} Ω out of range");
        }
    }

    #[test]
    fn resistivity_multiplier_bounds() {
        for node in InterconnectNode::ALL {
            let rho = node.effective_resistivity();
            assert!((RHO_CU..=3.5 * RHO_CU).contains(&rho));
        }
    }

    #[test]
    fn capacitance_scales_with_pitch() {
        let c18 = InterconnectNode::N18.segment_capacitance().farads();
        let c90 = InterconnectNode::N90.segment_capacitance().farads();
        assert!(c90 > c18);
        assert!((c90 / c18 - 5.0).abs() < 1e-9); // 90/18 = 5× pitch
    }

    #[test]
    fn bank_sweep_is_subset_of_all() {
        for node in InterconnectNode::BANK_SWEEP {
            assert!(InterconnectNode::ALL.contains(&node));
        }
    }

    #[test]
    fn display_mentions_node() {
        assert_eq!(InterconnectNode::N45.to_string(), "45 nm wire");
    }

    #[test]
    fn global_wires_scale_with_length() {
        let node = InterconnectNode::N45;
        let r1 = node.global_wire_resistance(1e-3).ohms();
        let r2 = node.global_wire_resistance(2e-3).ohms();
        assert!((r2 / r1 - 2.0).abs() < 1e-12);
        let c1 = node.global_wire_capacitance(1e-3).farads();
        // 1 mm at 0.2 fF/µm = 200 fF.
        assert!((c1 - 200e-15).abs() < 1e-18);
    }

    #[test]
    fn global_wires_beat_local_segments_per_length() {
        // Thick upper metal: lower resistance per metre than the 1×-pitch
        // crossbar segments.
        let node = InterconnectNode::N28;
        let seg_len = 4.0 * 28e-9;
        let per_m_local = node.segment_resistance().ohms() / seg_len;
        let per_m_global = node.global_wire_resistance(1.0).ohms();
        assert!(per_m_global < per_m_local);
    }
}
