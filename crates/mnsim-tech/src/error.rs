//! Error types for the technology layer.

use std::error::Error;
use std::fmt;

/// Errors produced when querying or constructing technology models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TechError {
    /// A technology node that is not in the database was requested.
    UnknownNode {
        /// The requested feature size in nanometres.
        nanometers: u32,
        /// Which database was queried ("cmos" or "interconnect").
        database: &'static str,
    },
    /// A device parameter was out of its physical range.
    InvalidDeviceParameter {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// No converter in the database satisfies the requested precision.
    NoConverter {
        /// Requested precision in bits.
        bits: u32,
    },
    /// A serialized fault map could not be parsed.
    FaultMapParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownNode {
                nanometers,
                database,
            } => write!(
                f,
                "unknown {database} technology node: {nanometers} nm is not in the database"
            ),
            TechError::InvalidDeviceParameter { parameter, reason } => {
                write!(f, "invalid device parameter `{parameter}`: {reason}")
            }
            TechError::NoConverter { bits } => {
                write!(f, "no data converter supports {bits}-bit precision")
            }
            TechError::FaultMapParse { line, reason } => {
                write!(f, "fault map parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TechError::UnknownNode {
            nanometers: 7,
            database: "cmos",
        };
        assert!(e.to_string().contains("7 nm"));
        let e = TechError::InvalidDeviceParameter {
            parameter: "r_min",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("r_min"));
        let e = TechError::NoConverter { bits: 99 };
        assert!(e.to_string().contains("99-bit"));
        let e = TechError::FaultMapParse {
            line: 4,
            reason: "bad directive".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TechError>();
    }
}
