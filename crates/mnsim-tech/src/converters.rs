//! Data-converter performance database (ADC / DAC / sensing amplifiers).
//!
//! The read circuits of a computation unit are ADCs or multilevel sensing
//! amplifiers (paper §III.C-4); the input peripheral circuit contains DACs
//! (§III.C-3). The paper chooses converters from a survey-style database
//! (Murmann's ADC survey plus the variable-level SA of the reference design)
//! and scales them with the CMOS node. This module reproduces that database
//! with a small set of representative designs.
//!
//! Energy figures follow the Walden figure-of-merit convention:
//! `E_conv = FoM · 2^bits` per conversion, with the FoM and base areas quoted
//! at each entry's native technology node and scaled to the simulated node by
//! first-order rules (`area ∝ F²`, `power ∝ Vdd²`, `delay ∝ FO4`).

use crate::cmos::CmosNode;
use crate::error::TechError;
use crate::units::{Area, Energy, Frequency, Power, Time};

/// The circuit family of an analog-to-digital read circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AdcKind {
    /// Variable/multilevel sensing amplifier (the paper's reference read
    /// circuit, after Li et al., IMW 2011): low power, moderate speed.
    MultilevelSa,
    /// Successive-approximation ADC (e.g. Kull et al., JSSC 2013).
    Sar,
    /// Flash ADC: fastest, largest, most power per level.
    Flash,
}

impl std::fmt::Display for AdcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdcKind::MultilevelSa => write!(f, "multilevel SA"),
            AdcKind::Sar => write!(f, "SAR ADC"),
            AdcKind::Flash => write!(f, "flash ADC"),
        }
    }
}

/// A concrete ADC design point.
#[derive(Debug, Clone, PartialEq)]
pub struct AdcSpec {
    /// Circuit family.
    pub kind: AdcKind,
    /// Output precision in bits.
    pub bits: u32,
    /// Conversion rate.
    pub frequency: Frequency,
    /// Average power while converting.
    pub power: Power,
    /// Layout area.
    pub area: Area,
    /// Technology node the base numbers are quoted at.
    pub native_node: CmosNode,
}

impl AdcSpec {
    /// The paper's reference read circuit: a variable-level SA running at
    /// 50 MHz (paper §V.C), quoted here at 90 nm for the requested
    /// precision.
    ///
    /// The SA resolves one level per comparison, so its power and area grow
    /// with the number of levels it distinguishes while the 50 MHz
    /// conversion rate is fixed by design.
    pub fn multilevel_sa(bits: u32) -> Self {
        let levels = (1u64 << bits) as f64;
        AdcSpec {
            kind: AdcKind::MultilevelSa,
            bits,
            frequency: Frequency::from_megahertz(50.0),
            // ~2 µW per distinguishable level at 90 nm.
            power: Power::from_microwatts(2.0 * levels),
            // comparator + reference ladder: ~60 µm² per level at 90 nm.
            area: Area::from_square_micrometers(60.0 * levels),
            native_node: CmosNode::N90,
        }
    }

    /// An 8-bit SAR ADC modelled after Kull et al. (JSSC 2013, 32 nm):
    /// 1.2 GS/s at 3.1 mW, here derated to a conservative 500 MS/s
    /// operating point.
    pub fn sar_8bit() -> Self {
        AdcSpec {
            kind: AdcKind::Sar,
            bits: 8,
            frequency: Frequency::from_megahertz(500.0),
            power: Power::from_milliwatts(1.5),
            area: Area::from_square_micrometers(2500.0),
            native_node: CmosNode::N32,
        }
    }

    /// A 6-bit flash ADC design point (fast, power hungry).
    pub fn flash_6bit() -> Self {
        AdcSpec {
            kind: AdcKind::Flash,
            bits: 6,
            frequency: Frequency::from_gigahertz(1.0),
            power: Power::from_milliwatts(12.0),
            area: Area::from_square_micrometers(8000.0),
            native_node: CmosNode::N45,
        }
    }

    /// The built-in database the reference design selects from.
    pub fn database() -> Vec<AdcSpec> {
        let mut specs: Vec<AdcSpec> = (1..=8).map(AdcSpec::multilevel_sa).collect();
        specs.push(AdcSpec::sar_8bit());
        specs.push(AdcSpec::flash_6bit());
        specs
    }

    /// Selects the lowest-power database entry with at least `bits`
    /// precision and at least `min_frequency` conversion rate.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::NoConverter`] if no entry qualifies.
    pub fn select(bits: u32, min_frequency: Frequency) -> Result<AdcSpec, TechError> {
        AdcSpec::database()
            .into_iter()
            .filter(|s| s.bits >= bits && s.frequency.hertz() >= min_frequency.hertz())
            .min_by(|a, b| a.power.watts().total_cmp(&b.power.watts()))
            .ok_or(TechError::NoConverter { bits })
    }

    /// Time for one complete conversion.
    pub fn conversion_time(&self) -> Time {
        self.frequency.period()
    }

    /// Energy of one complete conversion.
    pub fn conversion_energy(&self) -> Energy {
        self.power * self.conversion_time()
    }

    /// Scales the design to another CMOS node using first-order rules:
    /// `area ∝ F²`, `power ∝ Vdd²`, `frequency ∝ 1/FO4`.
    pub fn scaled_to(&self, node: CmosNode) -> AdcSpec {
        let from = self.native_node.params();
        let to = node.params();
        let area_scale = (node.nanometers() as f64 / self.native_node.nanometers() as f64).powi(2);
        let power_scale = (to.vdd.volts() / from.vdd.volts()).powi(2);
        let speed_scale = from.fo4_delay.seconds() / to.fo4_delay.seconds();
        AdcSpec {
            kind: self.kind,
            bits: self.bits,
            frequency: self.frequency * speed_scale,
            power: self.power * power_scale * speed_scale,
            area: self.area * area_scale,
            native_node: node,
        }
    }
}

/// A digital-to-analog converter driving one crossbar input row.
#[derive(Debug, Clone, PartialEq)]
pub struct DacSpec {
    /// Input precision in bits.
    pub bits: u32,
    /// Conversion (settling) time.
    pub settle_time: Time,
    /// Average power while driving.
    pub power: Power,
    /// Layout area.
    pub area: Area,
    /// Technology node the base numbers are quoted at.
    pub native_node: CmosNode,
}

impl DacSpec {
    /// The reference resistive-ladder DAC of the given precision at 90 nm.
    ///
    /// Power and area grow linearly with the ladder length (2^bits taps are
    /// shared across segments, giving an effective linear growth in bits for
    /// segmented ladders).
    pub fn reference(bits: u32) -> Self {
        DacSpec {
            bits,
            settle_time: Time::from_nanoseconds(1.0 + 0.25 * bits as f64),
            power: Power::from_microwatts(10.0 * bits as f64),
            area: Area::from_square_micrometers(100.0 * bits as f64),
            native_node: CmosNode::N90,
        }
    }

    /// Energy of one conversion.
    pub fn conversion_energy(&self) -> Energy {
        self.power * self.settle_time
    }

    /// Scales the design to another CMOS node (same rules as
    /// [`AdcSpec::scaled_to`]).
    pub fn scaled_to(&self, node: CmosNode) -> DacSpec {
        let from = self.native_node.params();
        let to = node.params();
        let area_scale = (node.nanometers() as f64 / self.native_node.nanometers() as f64).powi(2);
        let power_scale = (to.vdd.volts() / from.vdd.volts()).powi(2);
        let speed_scale = from.fo4_delay.seconds() / to.fo4_delay.seconds();
        DacSpec {
            bits: self.bits,
            settle_time: self.settle_time / speed_scale,
            power: self.power * power_scale * speed_scale,
            area: self.area * area_scale,
            native_node: node,
        }
    }
}

/// A single-threshold sensing amplifier (1-bit read, used by the READ
/// instruction path rather than computation).
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAmpSpec {
    /// Sensing latency.
    pub latency: Time,
    /// Power while sensing.
    pub power: Power,
    /// Layout area.
    pub area: Area,
}

impl SenseAmpSpec {
    /// Reference latch-type sense amplifier at the given node.
    pub fn reference(node: CmosNode) -> Self {
        let p = node.params();
        SenseAmpSpec {
            latency: p.fo4_delay * 10.0,
            power: Power::from_microwatts(5.0 * (p.vdd.volts() / 1.2).powi(2)),
            area: p.transistor_area(12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_nonempty_and_valid() {
        for spec in AdcSpec::database() {
            assert!(spec.bits >= 1 && spec.bits <= 8);
            assert!(spec.power.watts() > 0.0);
            assert!(spec.area.square_meters() > 0.0);
            assert!(spec.frequency.hertz() > 0.0);
        }
    }

    #[test]
    fn select_prefers_low_power() {
        // At modest speed requirements, the multilevel SA must win over the
        // SAR/flash entries (that is why the paper uses it as reference).
        let s = AdcSpec::select(6, Frequency::from_megahertz(10.0)).unwrap();
        assert_eq!(s.kind, AdcKind::MultilevelSa);
        assert!(s.bits >= 6);
    }

    #[test]
    fn select_falls_back_to_fast_designs() {
        let s = AdcSpec::select(8, Frequency::from_megahertz(400.0)).unwrap();
        assert_eq!(s.kind, AdcKind::Sar);
    }

    #[test]
    fn select_rejects_impossible_requests() {
        assert!(matches!(
            AdcSpec::select(9, Frequency::from_megahertz(1.0)),
            Err(TechError::NoConverter { bits: 9 })
        ));
        assert!(AdcSpec::select(8, Frequency::from_gigahertz(10.0)).is_err());
    }

    #[test]
    fn sa_power_grows_with_precision() {
        let p4 = AdcSpec::multilevel_sa(4).power.watts();
        let p8 = AdcSpec::multilevel_sa(8).power.watts();
        assert!(p8 > p4);
        assert!((p8 / p4 - 16.0).abs() < 1e-9); // 2^8 / 2^4
    }

    #[test]
    fn sa_matches_paper_reference_frequency() {
        let sa = AdcSpec::multilevel_sa(6);
        assert!((sa.frequency.megahertz() - 50.0).abs() < 1e-9);
        assert!((sa.conversion_time().nanoseconds() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_down_shrinks_area_and_speeds_up() {
        let base = AdcSpec::multilevel_sa(6);
        let scaled = base.scaled_to(CmosNode::N45);
        assert!(scaled.area.square_meters() < base.area.square_meters());
        assert!(scaled.frequency.hertz() > base.frequency.hertz());
        assert_eq!(scaled.native_node, CmosNode::N45);
    }

    #[test]
    fn scaling_to_native_node_is_identity() {
        let base = AdcSpec::sar_8bit();
        let same = base.scaled_to(CmosNode::N32);
        assert!((same.power.watts() - base.power.watts()).abs() < 1e-15);
        assert!((same.area.square_meters() - base.area.square_meters()).abs() < 1e-20);
    }

    #[test]
    fn dac_energy_positive_and_scales() {
        let d = DacSpec::reference(8);
        assert!(d.conversion_energy().joules() > 0.0);
        let scaled = d.scaled_to(CmosNode::N45);
        assert!(scaled.settle_time.seconds() < d.settle_time.seconds());
    }

    #[test]
    fn sense_amp_reference_is_positive() {
        let sa = SenseAmpSpec::reference(CmosNode::N90);
        assert!(sa.latency.seconds() > 0.0);
        assert!(sa.power.watts() > 0.0);
        assert!(sa.area.square_meters() > 0.0);
    }

    #[test]
    fn adc_kind_display() {
        assert_eq!(AdcKind::Sar.to_string(), "SAR ADC");
    }
}
