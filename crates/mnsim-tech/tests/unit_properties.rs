//! Property-based tests of the typed units and device models.

use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::{Energy, Power, Resistance, Time, Voltage};
use proptest::prelude::*;

proptest! {
    /// Power × Time and Energy ÷ Time are exact inverses.
    #[test]
    fn power_time_energy_inverse(w in 1e-9f64..1e3, s in 1e-12f64..1e3) {
        let p = Power::from_watts(w);
        let t = Time::from_seconds(s);
        let e = p * t;
        prop_assert!(((e / t).watts() - w).abs() < 1e-9 * w);
        prop_assert!(((e / p).seconds() - s).abs() < 1e-9 * s);
    }

    /// Ohm's law chains are consistent: V = (V/R)·R.
    #[test]
    fn ohms_law_roundtrip(v in 1e-3f64..100.0, r in 1e-1f64..1e7) {
        let voltage = Voltage::from_volts(v);
        let resistance = Resistance::from_ohms(r);
        let i = voltage / resistance;
        prop_assert!(((i * resistance).volts() - v).abs() < 1e-9 * v);
        let p = voltage * i;
        prop_assert!((p.watts() - v * v / r).abs() < 1e-9 * (v * v / r));
    }

    /// Conductance-linear level spacing is monotone and inside the range
    /// for every valid level of every bits-per-cell setting.
    #[test]
    fn memristor_levels_in_range(bits in 1u32..8, level_frac in 0.0f64..1.0) {
        let mut device = MemristorModel::rram_default();
        device.bits_per_cell = bits;
        let level = (level_frac * (device.levels() - 1) as f64).floor() as u32;
        let r = device.resistance_for_level(level);
        prop_assert!(r.ohms() >= device.r_min.ohms() - 1e-9);
        prop_assert!(r.ohms() <= device.r_max.ohms() + 1e-9);
    }

    /// The chord resistance under bias interpolates continuously: a small
    /// bias change produces a small resistance change.
    #[test]
    fn chord_resistance_is_continuous(v in 0.01f64..1.0, r_kohm in 0.5f64..500.0) {
        let device = MemristorModel::rram_default();
        let state = Resistance::from_kilo_ohms(r_kohm);
        let a = device.iv.chord_resistance(state, Voltage::from_volts(v)).ohms();
        let b = device.iv.chord_resistance(state, Voltage::from_volts(v + 1e-6)).ohms();
        prop_assert!((a - b).abs() < 1e-2 * a);
    }

    /// Energy sums are associative enough for aggregation purposes.
    #[test]
    fn energy_sum_associative(a in 0.0f64..1e-3, b in 0.0f64..1e-3, c in 0.0f64..1e-3) {
        let (ea, eb, ec) = (
            Energy::from_joules(a),
            Energy::from_joules(b),
            Energy::from_joules(c),
        );
        let left = (ea + eb) + ec;
        let right = ea + (eb + ec);
        prop_assert!((left.joules() - right.joules()).abs() < 1e-18);
    }
}
