//! # mnsim-circuit — SPICE-class DC circuit simulator
//!
//! This crate is the *circuit-level baseline* of the MNSIM reproduction: the
//! role HSPICE plays in the original paper. It provides
//!
//! * [`sparse`] — CSR sparse matrices with triplet assembly,
//! * [`dense`] — dense LU with partial pivoting,
//! * [`cg`] — Jacobi-preconditioned conjugate gradients,
//! * [`mna`] — circuit representation (resistors, sources, memristors),
//! * [`solve`] — DC operating-point analysis with Newton-Raphson for
//!   non-linear memristor cells,
//! * [`klu`] — KLU-style sparse direct solver (BTF + AMD + Gilbert–Peierls
//!   LU) with a cached symbolic analysis and a numeric-only `refactor()`
//!   fast path for same-pattern value updates,
//! * [`batch`] — multi-RHS solving over a [`batch::PreparedSystem`] that
//!   caches the assembled system (dense LU below 96 unknowns, sparse LU
//!   above) per conductance structure and warm-starts CG across correlated
//!   inputs,
//! * [`crossbar`] — memristor-crossbar netlist construction matching the
//!   paper's resistor-network model (cells + `2MN` wire segments + sensing
//!   resistors), with optional hard-defect overlays (stuck cells, broken
//!   lines),
//! * [`recovery`] — a fault-tolerant solve ladder (`solve_robust`) that
//!   escalates CG → relaxed CG → dense LU and reports how the answer was
//!   obtained,
//! * [`transient`] — backward-Euler transient analysis (RC settling),
//! * [`netlist`] — SPICE netlist export/import.
//!
//! The accuracy experiments of the paper (Fig. 5, Table II) compare the
//! behavior-level model in `mnsim-core` against exactly these circuit
//! solutions, and the speed-up experiment (Table III) times this solver
//! against the behavior-level estimation.
//!
//! # Examples
//!
//! ```
//! use mnsim_circuit::crossbar::CrossbarSpec;
//! use mnsim_circuit::solve::{solve_dc, SolveOptions};
//! use mnsim_tech::units::{Resistance, Voltage};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CrossbarSpec::uniform(
//!     8, 8,
//!     Resistance::from_kilo_ohms(10.0), // cell state
//!     Resistance::from_ohms(2.0),       // wire segment
//!     Resistance::from_ohms(500.0),     // sense resistor
//!     Voltage::from_volts(1.0),         // inputs
//! );
//! let xbar = spec.build()?;
//! let solution = solve_dc(xbar.circuit(), &SolveOptions::default())?;
//! let outputs = xbar.output_voltages(&solution);
//! assert_eq!(outputs.len(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface failures as typed errors; tests may unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod batch;
pub mod cg;
pub mod crossbar;
pub mod dense;
pub mod error;
pub mod klu;
pub mod mna;
pub mod netlist;
pub mod recovery;
pub mod solve;
pub mod sparse;
pub mod transient;

pub use batch::{
    prepare_or_reuse, solve_dc_batch, BatchOptions, PreparedSystem, Rhs, WarmStart,
};
pub use crossbar::{CrossbarCircuit, CrossbarSpec, FaultOverlay};
pub use error::CircuitError;
pub use klu::{analyze, RefactorError, SparseLu, SymbolicAnalysis};
pub use mna::{Circuit, DcSolution, Element, NodeId};
pub use cg::{CgOptions, IterationCap};
pub use recovery::{
    solve_robust, EarlyEscalation, RecoveryReport, RecoveryStage, RobustOptions, SolveGuard,
};
pub use solve::{solve_dc, Method, SolveOptions};
pub use transient::{solve_transient, TransientOptions, TransientResult};
