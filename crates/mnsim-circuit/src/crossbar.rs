//! Memristor-crossbar netlist construction.
//!
//! Builds the exact resistor-network topology the paper's accuracy analysis
//! assumes (§VI.B): `M×N` memristor cells, `2MN` interconnect wire segments
//! (one per cell on the word line and one on the bit line), and `N` sensing
//! resistors. Solving this network with [`crate::solve::solve_dc`] *is* the
//! "SPICE simulation" the paper validates against and times in Tables II/III.
//!
//! Topology (for `rows = M` word lines and `cols = N` bit lines):
//!
//! ```text
//! V_i ──r── w(i,0) ──r── w(i,1) ── … ──r── w(i,N−1)          (word lines)
//!             │            │                  │
//!           cell         cell               cell             (memristors)
//!             │            │                  │
//!           b(0,j) ──r── b(1,j) ── … ──r── b(M−1,j) ──Rs── ⏚ (bit lines)
//! ```
//!
//! The output of column `j` is read across its sensing resistor, i.e. the
//! voltage of node `b(M−1, j)`. Column `N−1` is the farthest from the
//! drivers — the paper's worst-case column.

use mnsim_tech::fault::{CellFault, FaultMap};
use mnsim_tech::memristor::IvModel;
use mnsim_tech::units::{Resistance, Voltage};

use crate::error::CircuitError;
use crate::mna::{non_positive, Circuit, DcSolution, NodeId};

/// Resistance standing in for an open (broken) wire segment.
///
/// Broken word/bit lines are modeled as a near-open resistor rather than by
/// removing the segment: element removal would leave genuinely floating
/// nodes and a singular nodal matrix, whereas 1 TΩ makes the downstream
/// cells electrically negligible (12 orders above any cell state) while
/// keeping the system solvable — at the cost of severe conditioning, which
/// is exactly what [`crate::recovery::solve_robust`] exists to absorb.
pub const OPEN_SEGMENT_RESISTANCE: Resistance = Resistance::from_ohms(1e12);

/// Hard-defect overlay applied to a crossbar netlist at build time.
///
/// The [`FaultMap`] says *which* cells and lines are defective; the overlay
/// adds the device-specific resistances stuck cells are pinned to (the
/// technology's HRS/LRS corner values).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOverlay {
    /// The defect map; its geometry must match the spec's `rows × cols`.
    pub map: FaultMap,
    /// Resistance pinned onto stuck-at-HRS cells.
    pub hrs: Resistance,
    /// Resistance pinned onto stuck-at-LRS cells.
    pub lrs: Resistance,
}

/// Specification of a crossbar instance to build.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarSpec {
    /// Number of word lines (input rows), `M`.
    pub rows: usize,
    /// Number of bit lines (output columns), `N`.
    pub cols: usize,
    /// Interconnect resistance of one cell-to-cell wire segment (`r`).
    pub wire_resistance: Resistance,
    /// Sensing resistance at the foot of every column (`R_s`).
    pub sense_resistance: Resistance,
    /// Programmed state resistance of every cell, row-major `rows × cols`.
    pub states: Vec<Resistance>,
    /// I-V model shared by all cells.
    pub iv: IvModel,
    /// Input voltage of every word line (`rows` entries).
    pub inputs: Vec<Voltage>,
    /// Optional hard-defect overlay (stuck cells, broken lines).
    pub faults: Option<FaultOverlay>,
}

impl CrossbarSpec {
    /// A crossbar with every cell programmed to the same state and every
    /// input driven at the same voltage.
    pub fn uniform(
        rows: usize,
        cols: usize,
        state: Resistance,
        wire_resistance: Resistance,
        sense_resistance: Resistance,
        input: Voltage,
    ) -> Self {
        CrossbarSpec {
            rows,
            cols,
            wire_resistance,
            sense_resistance,
            states: vec![state; rows * cols],
            iv: IvModel::Linear,
            inputs: vec![input; rows],
            faults: None,
        }
    }

    /// Returns this spec with a hard-defect overlay attached.
    pub fn with_faults(mut self, map: FaultMap, hrs: Resistance, lrs: Resistance) -> Self {
        self.faults = Some(FaultOverlay { map, hrs, lrs });
        self
    }

    /// Validates shapes and values.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] for wrong vector lengths
    /// and [`CircuitError::InvalidElement`] for non-positive sizes or
    /// resistances.
    pub fn validate(&self) -> Result<(), CircuitError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CircuitError::InvalidElement {
                reason: "crossbar must have at least one row and one column".into(),
            });
        }
        if self.states.len() != self.rows * self.cols {
            return Err(CircuitError::DimensionMismatch {
                expected: self.rows * self.cols,
                actual: self.states.len(),
                what: "crossbar state matrix length",
            });
        }
        if self.inputs.len() != self.rows {
            return Err(CircuitError::DimensionMismatch {
                expected: self.rows,
                actual: self.inputs.len(),
                what: "crossbar input vector length",
            });
        }
        if non_positive(self.wire_resistance.ohms()) || non_positive(self.sense_resistance.ohms()) {
            return Err(CircuitError::InvalidElement {
                reason: "wire and sense resistances must be positive".into(),
            });
        }
        if self.states.iter().any(|s| non_positive(s.ohms())) {
            return Err(CircuitError::InvalidElement {
                reason: "all cell state resistances must be positive".into(),
            });
        }
        if let Some(overlay) = &self.faults {
            if overlay.map.rows != self.rows || overlay.map.cols != self.cols {
                return Err(CircuitError::DimensionMismatch {
                    expected: self.rows * self.cols,
                    actual: overlay.map.rows * overlay.map.cols,
                    what: "fault map geometry",
                });
            }
            if non_positive(overlay.hrs.ohms()) || non_positive(overlay.lrs.ohms()) {
                return Err(CircuitError::InvalidElement {
                    reason: "fault overlay HRS/LRS resistances must be positive".into(),
                });
            }
        }
        Ok(())
    }

    /// The programmed state of cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn state(&self, row: usize, col: usize) -> Resistance {
        assert!(row < self.rows && col < self.cols, "cell index out of range");
        self.states[row * self.cols + col]
    }

    /// The resistance cell `(row, col)` actually presents, after the fault
    /// overlay (if any) pins stuck cells and scales drifted ones.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn effective_state(&self, row: usize, col: usize) -> Resistance {
        let programmed = self.state(row, col);
        let Some(overlay) = &self.faults else {
            return programmed;
        };
        match overlay.map.cells.get(&(row, col)) {
            Some(CellFault::StuckAtHrs) => overlay.hrs,
            Some(CellFault::StuckAtLrs) => overlay.lrs,
            Some(CellFault::Drifted { factor }) => {
                Resistance::from_ohms(programmed.ohms() * factor)
            }
            None => programmed,
        }
    }

    /// Builds the circuit netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::validate`] failures.
    pub fn build(&self) -> Result<CrossbarCircuit, CircuitError> {
        self.validate()?;
        let mut circuit = Circuit::new();
        let m = self.rows;
        let n = self.cols;

        // Source nodes (driven by the input voltages).
        let source_nodes = circuit.add_nodes(m);
        // Word-line nodes w(i,j) and bit-line nodes b(i,j), row-major.
        let word_nodes = circuit.add_nodes(m * n);
        let bit_nodes = circuit.add_nodes(m * n);

        let w = |i: usize, j: usize| word_nodes[i * n + j];
        let b = |i: usize, j: usize| bit_nodes[i * n + j];

        // Broken lines swap the wire (or sense) resistance for a near-open
        // resistor; see [`OPEN_SEGMENT_RESISTANCE`].
        let map = self.faults.as_ref().map(|overlay| &overlay.map);
        let word_segment = |i: usize, seg: usize| -> Resistance {
            match map.and_then(|m| m.broken_wordlines.get(&i)) {
                Some(&broken) if broken == seg => OPEN_SEGMENT_RESISTANCE,
                _ => self.wire_resistance,
            }
        };
        let bit_segment = |j: usize, seg: usize| -> Resistance {
            match map.and_then(|m| m.broken_bitlines.get(&j)) {
                Some(&broken) if broken == seg => OPEN_SEGMENT_RESISTANCE,
                _ => self.wire_resistance,
            }
        };

        for (i, &source) in source_nodes.iter().enumerate() {
            circuit.add_voltage_source(source, Circuit::GROUND, self.inputs[i])?;
            // Driver → first word-line node (segment 0), then along the row.
            circuit.add_resistor(source, w(i, 0), word_segment(i, 0))?;
            for j in 1..n {
                circuit.add_resistor(w(i, j - 1), w(i, j), word_segment(i, j))?;
            }
        }

        let mut cell_elements = Vec::with_capacity(m * n);
        for i in 0..m {
            for j in 0..n {
                let idx =
                    circuit.add_memristor(w(i, j), b(i, j), self.effective_state(i, j), self.iv)?;
                cell_elements.push(idx);
            }
        }

        let mut sense_elements = Vec::with_capacity(n);
        let mut output_nodes = Vec::with_capacity(n);
        for j in 0..n {
            // Bit line runs down the column (segments 1..m, foot = m).
            for i in 1..m {
                circuit.add_resistor(b(i - 1, j), b(i, j), bit_segment(j, i))?;
            }
            let out = b(m - 1, j);
            let sense = match map.and_then(|fm| fm.broken_bitlines.get(&j)) {
                Some(&broken) if broken >= m => OPEN_SEGMENT_RESISTANCE,
                _ => self.sense_resistance,
            };
            let idx = circuit.add_resistor(out, Circuit::GROUND, sense)?;
            sense_elements.push(idx);
            output_nodes.push(out);
        }

        Ok(CrossbarCircuit {
            spec: self.clone(),
            circuit,
            source_nodes,
            output_nodes,
            cell_elements,
            sense_elements,
        })
    }

    /// Ideal output voltages: zero wire resistance, linear cells.
    ///
    /// This is the closed-form result of the paper's Eq. (2): for column
    /// `j`, `V_out = Σ_i V_i·g_ij / (g_s + Σ_i g_ij)`. With a fault overlay,
    /// stuck and drifted cells use their effective resistance, cells
    /// isolated by a broken line drop out of both sums, and a column whose
    /// sense resistor is detached reads zero.
    pub fn ideal_output_voltages(&self) -> Vec<Voltage> {
        self.ideal_output_voltages_for(&self.inputs)
    }

    /// [`Self::ideal_output_voltages`] evaluated for an arbitrary input
    /// vector instead of `self.inputs` — the closed-form companion of
    /// solving one spec under many drive patterns (see
    /// [`crate::batch::PreparedSystem`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not have one entry per row.
    pub fn ideal_output_voltages_for(&self, inputs: &[Voltage]) -> Vec<Voltage> {
        assert_eq!(inputs.len(), self.rows, "one input voltage per row");
        let gs = 1.0 / self.sense_resistance.ohms();
        let map = self.faults.as_ref().map(|overlay| &overlay.map);
        (0..self.cols)
            .map(|j| {
                if map.is_some_and(|m| m.sense_detached(j)) {
                    return Voltage::from_volts(0.0);
                }
                let mut num = 0.0;
                let mut den = gs;
                for (i, input) in inputs.iter().enumerate() {
                    if map.is_some_and(|m| m.is_isolated(i, j)) {
                        continue;
                    }
                    let g = 1.0 / self.effective_state(i, j).ohms();
                    num += input.volts() * g;
                    den += g;
                }
                Voltage::from_volts(num / den)
            })
            .collect()
    }
}

/// A built crossbar netlist with bookkeeping for reading results back.
#[derive(Debug, Clone)]
pub struct CrossbarCircuit {
    spec: CrossbarSpec,
    circuit: Circuit,
    source_nodes: Vec<NodeId>,
    output_nodes: Vec<NodeId>,
    cell_elements: Vec<usize>,
    sense_elements: Vec<usize>,
}

impl CrossbarCircuit {
    /// The underlying circuit (solve it with [`crate::solve::solve_dc`]).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The specification this netlist was built from.
    pub fn spec(&self) -> &CrossbarSpec {
        &self.spec
    }

    /// The node driven by input `row`.
    pub fn source_node(&self, row: usize) -> NodeId {
        self.source_nodes[row]
    }

    /// The output node of `col` (read across the sensing resistor).
    pub fn output_node(&self, col: usize) -> NodeId {
        self.output_nodes[col]
    }

    /// The element index of cell `(row, col)` in the circuit.
    pub fn cell_element(&self, row: usize, col: usize) -> usize {
        self.cell_elements[row * self.spec.cols + col]
    }

    /// The element index of the sensing resistor of `col`.
    pub fn sense_element(&self, col: usize) -> usize {
        self.sense_elements[col]
    }

    /// Builds the batch right-hand side driving the word lines at `inputs`.
    ///
    /// The crossbar netlist adds exactly one voltage source per row, in row
    /// order, so the RHS is the input vector itself.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] when `inputs` does not
    /// have one entry per row.
    pub fn input_rhs(&self, inputs: &[Voltage]) -> Result<crate::batch::Rhs, CircuitError> {
        if inputs.len() != self.spec.rows {
            return Err(CircuitError::DimensionMismatch {
                expected: self.spec.rows,
                actual: inputs.len(),
                what: "crossbar input vector length",
            });
        }
        Ok(crate::batch::Rhs::from_voltages(inputs))
    }

    /// Extracts the column output voltages from a solution.
    pub fn output_voltages(&self, solution: &DcSolution) -> Vec<Voltage> {
        self.output_nodes
            .iter()
            .map(|&node| solution.voltage(node))
            .collect()
    }

    /// Attaches a grounded parasitic capacitor to every internal word- and
    /// bit-line node, turning the netlist into a transient-capable RC mesh
    /// (for settle-time measurement with
    /// [`crate::transient::solve_transient`]).
    ///
    /// # Errors
    ///
    /// Propagates element-validation failures (non-positive capacitance).
    pub fn add_node_capacitance(
        &mut self,
        capacitance: mnsim_tech::units::Capacitance,
    ) -> Result<(), CircuitError> {
        // Internal nodes are everything after ground and the driven source
        // nodes: the 2·M·N word/bit nodes.
        let first_internal = 1 + self.source_nodes.len();
        for node in first_internal..self.circuit.node_count() {
            self.circuit
                .add_capacitor(node, Circuit::GROUND, capacitance)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve_dc, SolveOptions};

    fn tiny_spec() -> CrossbarSpec {
        CrossbarSpec::uniform(
            2,
            2,
            Resistance::from_kilo_ohms(10.0),
            Resistance::from_ohms(1.0),
            Resistance::from_ohms(500.0),
            Voltage::from_volts(1.0),
        )
    }

    #[test]
    fn validation_catches_shape_errors() {
        let mut s = tiny_spec();
        s.states.pop();
        assert!(s.validate().is_err());

        let mut s = tiny_spec();
        s.inputs.pop();
        assert!(s.validate().is_err());

        let mut s = tiny_spec();
        s.wire_resistance = Resistance::from_ohms(0.0);
        assert!(s.validate().is_err());

        let mut s = tiny_spec();
        s.rows = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn node_and_element_counts() {
        let xbar = tiny_spec().build().unwrap();
        // ground + M sources + 2·M·N internal nodes
        assert_eq!(xbar.circuit().node_count(), 1 + 2 + 8);
        // M sources + M·N word segments + M·N cells + (M−1)·N bit segments
        // + N sense resistors
        assert_eq!(xbar.circuit().element_count(), 2 + 4 + 4 + 2 + 2);
    }

    #[test]
    fn solved_outputs_close_to_ideal_for_small_wire_resistance() {
        let spec = CrossbarSpec::uniform(
            4,
            4,
            Resistance::from_kilo_ohms(100.0),
            Resistance::from_ohms(0.001), // negligible wires
            Resistance::from_ohms(1000.0),
            Voltage::from_volts(1.0),
        );
        let xbar = spec.build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        let got = xbar.output_voltages(&sol);
        let ideal = spec.ideal_output_voltages();
        for (g, i) in got.iter().zip(&ideal) {
            assert!(
                (g.volts() - i.volts()).abs() < 1e-6,
                "{} vs {}",
                g.volts(),
                i.volts()
            );
        }
    }

    #[test]
    fn wire_resistance_reduces_outputs() {
        let mut spec = CrossbarSpec::uniform(
            8,
            8,
            Resistance::from_ohms(500.0), // R_min cells: worst case
            Resistance::from_ohms(5.0),
            Resistance::from_ohms(200.0),
            Voltage::from_volts(1.0),
        );
        let ideal = spec.ideal_output_voltages();
        spec.iv = IvModel::Linear;
        let xbar = spec.build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        let got = xbar.output_voltages(&sol);
        for (j, (g, i)) in got.iter().zip(&ideal).enumerate() {
            assert!(
                g.volts() < i.volts(),
                "col {j}: wires must reduce the output ({} !< {})",
                g.volts(),
                i.volts()
            );
        }
        // The farthest column must be the worst (paper's worst-case claim).
        let errors: Vec<f64> = got
            .iter()
            .zip(&ideal)
            .map(|(g, i)| (i.volts() - g.volts()) / i.volts())
            .collect();
        let last = *errors.last().unwrap();
        for (j, &e) in errors.iter().enumerate() {
            assert!(e <= last + 1e-12, "col {j} error {e} exceeds last column {last}");
        }
    }

    #[test]
    fn ideal_output_matches_paper_eq2() {
        // Single cell: V_out = V·g/(g + gs) = V·Rs/(R + Rs).
        let spec = CrossbarSpec::uniform(
            1,
            1,
            Resistance::from_kilo_ohms(10.0),
            Resistance::from_ohms(1.0),
            Resistance::from_kilo_ohms(10.0),
            Voltage::from_volts(2.0),
        );
        let v = spec.ideal_output_voltages()[0];
        assert!((v.volts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_and_sense_element_lookup() {
        let xbar = tiny_spec().build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        // Current through a sense resistor equals output voltage / Rs.
        for col in 0..2 {
            let i = sol.element_current(xbar.sense_element(col)).amperes();
            let v = sol.voltage(xbar.output_node(col)).volts();
            assert!((i - v / 500.0).abs() < 1e-12);
        }
        // Every cell carries positive current toward the bit line.
        for row in 0..2 {
            for col in 0..2 {
                let i = sol.element_current(xbar.cell_element(row, col)).amperes();
                assert!(i > 0.0);
            }
        }
    }

    #[test]
    fn fault_overlay_pins_stuck_cells() {
        use mnsim_tech::fault::{CellFault, FaultMap};
        let mut map = FaultMap::empty(2, 2);
        map.cells.insert((0, 0), CellFault::StuckAtLrs);
        map.cells.insert((1, 1), CellFault::StuckAtHrs);
        map.cells.insert((0, 1), CellFault::Drifted { factor: 2.0 });
        let spec = tiny_spec().with_faults(
            map,
            Resistance::from_kilo_ohms(500.0),
            Resistance::from_ohms(500.0),
        );
        assert_eq!(spec.effective_state(0, 0).ohms(), 500.0);
        assert_eq!(spec.effective_state(1, 1).ohms(), 500.0e3);
        assert_eq!(spec.effective_state(0, 1).ohms(), 20.0e3);
        assert_eq!(spec.effective_state(1, 0).ohms(), 10.0e3);
        // An LRS-stuck cell in column 0 pulls that output up.
        let xbar = spec.build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        let faulty = xbar.output_voltages(&sol);
        let clean_xbar = tiny_spec().build().unwrap();
        let clean_sol = solve_dc(clean_xbar.circuit(), &SolveOptions::default()).unwrap();
        let clean = clean_xbar.output_voltages(&clean_sol);
        assert!(faulty[0].volts() > clean[0].volts());
    }

    #[test]
    fn broken_wordline_starves_downstream_cells() {
        use mnsim_tech::fault::FaultMap;
        let mut map = FaultMap::empty(2, 2);
        // Row 0 broken at segment 0: the whole row is disconnected.
        map.broken_wordlines.insert(0, 0);
        let spec = tiny_spec().with_faults(
            map,
            Resistance::from_kilo_ohms(500.0),
            Resistance::from_ohms(500.0),
        );
        let xbar = spec.build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        let faulty = xbar.output_voltages(&sol);
        let clean_xbar = tiny_spec().build().unwrap();
        let clean_sol = solve_dc(clean_xbar.circuit(), &SolveOptions::default()).unwrap();
        let clean = clean_xbar.output_voltages(&clean_sol);
        // Half the drive current is gone; both columns sag well below clean.
        for (f, c) in faulty.iter().zip(&clean) {
            assert!(f.volts() < 0.7 * c.volts(), "{} !< 0.7·{}", f.volts(), c.volts());
        }
        // Ideal model agrees qualitatively.
        let ideal = xbar.spec().ideal_output_voltages();
        assert!(ideal[0].volts() < clean[0].volts());
    }

    #[test]
    fn detached_sense_reads_near_zero() {
        use mnsim_tech::fault::FaultMap;
        let mut map = FaultMap::empty(2, 2);
        map.broken_bitlines.insert(1, 2); // seg == rows: sense leg open
        let spec = tiny_spec().with_faults(
            map,
            Resistance::from_kilo_ohms(500.0),
            Resistance::from_ohms(500.0),
        );
        assert_eq!(spec.ideal_output_voltages()[1].volts(), 0.0);
        let xbar = spec.build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        // With the sense resistor near-open the column floats to the input
        // level instead of dividing — either way the *sensed current* is
        // negligible.
        let i = sol.element_current(xbar.sense_element(1)).amperes();
        assert!(i.abs() < 1e-9, "sense current {i}");
    }

    #[test]
    fn fault_overlay_geometry_must_match() {
        use mnsim_tech::fault::FaultMap;
        let spec = tiny_spec().with_faults(
            FaultMap::empty(3, 3),
            Resistance::from_kilo_ohms(500.0),
            Resistance::from_ohms(500.0),
        );
        assert!(matches!(
            spec.validate(),
            Err(CircuitError::DimensionMismatch { .. })
        ));
        let spec = tiny_spec().with_faults(
            FaultMap::empty(2, 2),
            Resistance::from_ohms(0.0),
            Resistance::from_ohms(500.0),
        );
        assert!(spec.validate().is_err());
    }

    #[test]
    fn nonuniform_states_change_outputs() {
        let mut spec = tiny_spec();
        // Make column 0 much more conductive than column 1.
        spec.states[0] = Resistance::from_ohms(500.0);
        spec.states[2] = Resistance::from_ohms(500.0);
        let xbar = spec.build().unwrap();
        let sol = solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap();
        let out = xbar.output_voltages(&sol);
        assert!(out[0].volts() > out[1].volts());
    }
}
