//! Batched multi-RHS DC solving with factorization caching.
//!
//! The crossbar workloads in `mnsim-core` solve the *same* conductance
//! network over and over with only the input-driven voltages changing:
//! SPICE validation sweeps many input vectors per weight matrix, fault
//! Monte-Carlo evaluates each defective crossbar under several reads, and a
//! neural-network forward pass pushes a whole batch of activations through
//! one mapped layer. [`solve_dc`](crate::solve::solve_dc) re-classifies the
//! sources, re-assembles the nodal matrix, and cold-starts the linear solver
//! for every one of those inputs.
//!
//! [`PreparedSystem`] lifts everything that depends only on the conductance
//! structure out of the per-input path:
//!
//! * the source classification and node → unknown numbering,
//! * the assembled reduced (or full-MNA) matrix,
//! * the dense LU factorization when the dense path is selected
//!   (`O(n³)` once, `O(n²)` per RHS),
//! * a replayable right-hand-side plan so each new input vector only costs
//!   an `O(nnz)` stamp replay,
//! * and, on the conjugate-gradient path, the previous solution as a warm
//!   start — correlated batches converge in a fraction of the cold
//!   iteration count.
//!
//! **Soundness.** Reuse is only valid while the conductances are unchanged.
//! A prepared system fingerprints the circuit it was built from (element
//! kinds, nodes, and conductance bit patterns — voltage-source *values* are
//! deliberately excluded because the batch overrides them) and refuses to
//! solve a circuit whose fingerprint differs with
//! [`CircuitError::StalePreparedSystem`]. Fault overlays and variation
//! resamples therefore cannot silently reuse a stale factorization; use
//! [`prepare_or_reuse`] to rebuild on change. Non-linear circuits (sinh
//! memristors) re-linearize per operating point, so they fall back to
//! per-solve [`solve_dc`](crate::solve::solve_dc) internally.

use mnsim_obs as obs;
use mnsim_tech::units::Voltage;

use crate::cg::solve_cg_warm;
use crate::dense::{DenseMatrix, LuFactors};
use crate::error::CircuitError;
use crate::klu::SparseLu;
use crate::mna::{Circuit, DcSolution, Element};
use crate::solve::{auto_engine, finish, linearize, LinearEngine, Linearized, Method, SolveOptions};
use crate::sparse::{CsrMatrix, TripletMatrix};

static BATCH_BUILDS: obs::Counter = obs::Counter::new("circuit.batch.prepared_builds");
static BATCH_CALLS: obs::Counter = obs::Counter::new("circuit.batch.calls");
static BATCH_SOLVES: obs::Counter = obs::Counter::new("circuit.batch.solves");
static BATCH_DENSE: obs::Counter = obs::Counter::new("circuit.batch.dense_backsolves");
static BATCH_CG_ITERATIONS: obs::Counter = obs::Counter::new("circuit.batch.cg_iterations");
static BATCH_CG_ITERATIONS_PER_SOLVE: obs::Histogram =
    obs::Histogram::new("circuit.batch.cg_iterations_per_solve");
static BATCH_WARM_STARTS: obs::Counter = obs::Counter::new("circuit.batch.warm_starts");
static BATCH_COLD_RETRIES: obs::Counter = obs::Counter::new("circuit.batch.cold_retries");
static BATCH_STALE: obs::Counter = obs::Counter::new("circuit.batch.stale_rejections");
static BATCH_FALLBACKS: obs::Counter = obs::Counter::new("circuit.batch.nonlinear_fallbacks");
static CACHE_HITS: obs::Counter = obs::Counter::new("circuit.batch.cache_hits");
static CACHE_INVALIDATIONS: obs::Counter = obs::Counter::new("circuit.batch.invalidations");
/// First-time builds through [`prepare_or_reuse`] (empty slot, not a
/// stale one) — the denominator of the reuse ratio alongside hits and
/// invalidations.
static CACHE_COLD_BUILDS: obs::Counter = obs::Counter::new("circuit.batch.cache_cold_builds");
/// `hits / (hits + invalidations + cold builds)` across every
/// [`prepare_or_reuse`] call so far — how often the cached
/// [`PreparedSystem`] was actually reusable.
static BATCH_REUSE_RATIO: obs::Gauge = obs::Gauge::new("circuit.batch.reuse_ratio");
/// CG iterations avoided by warm starts: the cold-start baseline of the
/// prepared system minus each warm solve's iteration count (saturating).
static BATCH_WARM_ITERS_SAVED: obs::Counter =
    obs::Counter::new("circuit.batch.warm_iterations_saved");
/// Sparse-direct back-substitutions through the batch path.
static BATCH_SPARSE: obs::Counter = obs::Counter::new("circuit.batch.sparse_backsolves");
/// Value-only refreshes through [`prepare_or_reuse`]: the cached sparse
/// factorization was updated in place via [`SparseLu::refresh`] instead of
/// rebuilding the whole prepared system.
static VALUE_REFRESHES: obs::Counter = obs::Counter::new("circuit.batch.value_refreshes");

/// Warm-start policy for the conjugate-gradient path of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// Always start from zero — bitwise identical to per-input
    /// [`solve_dc`](crate::solve::solve_dc).
    Cold,
    /// Start each solve from the previous solution (of this batch, or of
    /// the previous batch for the first entry). The right default: batches
    /// are usually correlated and an uncorrelated guess costs at most the
    /// cold iteration count plus one retry.
    #[default]
    Previous,
    /// Start each solve from the already-solved batch entry whose RHS is
    /// nearest in Euclidean distance. Wins when a batch interleaves
    /// uncorrelated input groups; costs an `O(k)` scan per solve.
    Nearest,
}

/// Options for building a [`PreparedSystem`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchOptions {
    /// Underlying solver options (method selection, CG and Newton knobs).
    pub base: SolveOptions,
    /// Warm-start policy on the CG path.
    pub warm_start: WarmStart,
}

/// One right-hand side of a batch: the voltage of every ideal source, in
/// element insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Rhs {
    volts: Vec<f64>,
}

impl Rhs {
    /// Builds an RHS from typed source voltages.
    pub fn from_voltages(voltages: &[Voltage]) -> Self {
        Rhs {
            volts: voltages.iter().map(|v| v.volts()).collect(),
        }
    }

    /// Builds an RHS from raw volt values.
    pub fn from_volts(volts: &[f64]) -> Self {
        Rhs {
            volts: volts.to_vec(),
        }
    }

    /// The source voltages in volts, in element insertion order.
    pub fn volts(&self) -> &[f64] {
        &self.volts
    }
}

/// One `b`-vector assembly step, recorded at build time and replayed per
/// RHS in the exact order `solve_dc`'s assembly would execute it (so a
/// cold-started batch solve is bitwise identical to the serial path).
#[derive(Debug, Clone, Copy)]
enum BOp {
    /// `b[u] += g · v(node)` where `v` is the per-RHS driven voltage
    /// (0 V for ground).
    Scaled { u: usize, node: usize, g: f64 },
    /// `b[u] += c` (equivalent-current and current-source terms).
    Const { u: usize, c: f64 },
    /// `b[u] = rhs[k]` (full-MNA source row).
    Source { u: usize, k: usize },
}

/// How the linear system is solved once assembled.
#[derive(Debug, Clone)]
enum ReducedEngine {
    /// Cached dense LU over the reduced system.
    Dense(LuFactors),
    /// Cached KLU-style sparse direct LU; value-only structure changes
    /// refresh it in place through [`SparseLu::refresh`].
    Sparse(SparseLu),
    /// Sparse matrix for (warm-started) conjugate gradients.
    Cg(CsrMatrix),
    /// No unknowns at all (every node driven or ground).
    Empty,
}

/// Which concrete engine a [`PreparedSystem`] ended up with — the
/// observable face of the dense/sparse/CG dispatch, for tests and
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Reduced system with a cached dense LU.
    Dense,
    /// Reduced system with a cached sparse direct LU ([`crate::klu`]).
    SparseDirect,
    /// Reduced system solved iteratively (warm-started CG).
    Iterative,
    /// Reduced system with zero unknowns.
    Empty,
    /// Full modified nodal analysis (floating sources), cached dense LU.
    FullMna,
    /// Non-linear circuit: per-solve Newton fallback.
    Nonlinear,
}

#[derive(Debug, Clone)]
enum SystemKind {
    /// All sources grounded: reduced SPD system.
    Reduced {
        /// node → unknown index (`usize::MAX` for ground/driven nodes).
        index: Vec<usize>,
        unknowns: usize,
        /// Per source (element order): driven node and sign of the value.
        bindings: Vec<(usize, f64)>,
        ops: Vec<BOp>,
        engine: ReducedEngine,
    },
    /// Floating sources: cached full-MNA LU.
    FullMna {
        n_v: usize,
        n: usize,
        ops: Vec<BOp>,
        lu: LuFactors,
    },
    /// Non-linear circuit: per-solve Newton fallback.
    Nonlinear,
}

/// A DC system prepared once per conductance structure, able to solve many
/// right-hand sides cheaply. See the [module docs](crate::batch) for the
/// reuse contract.
#[derive(Debug, Clone)]
pub struct PreparedSystem {
    fingerprint: u64,
    /// Structure-only fingerprint (element kinds and nodes, no values):
    /// when this still matches but the full fingerprint does not, only
    /// conductance/current *values* changed and the sparse engine can be
    /// refreshed in place instead of rebuilt.
    structure_fingerprint: u64,
    node_count: usize,
    n_sources: usize,
    options: BatchOptions,
    lin: Vec<Option<Linearized>>,
    kind: SystemKind,
    /// Previous CG solution for [`WarmStart::Previous`]; persists across
    /// batch calls.
    last_x: Option<Vec<f64>>,
    /// Per-solve CG iteration counts of the most recent batch call
    /// (0 for dense, full-MNA, and fallback solves).
    last_iterations: Vec<usize>,
    /// Iteration count of the most recent cold (zero-guess) CG solve —
    /// the baseline `circuit.batch.warm_iterations_saved` measures warm
    /// starts against.
    cold_iterations: Option<usize>,
}

impl PreparedSystem {
    /// Builds a prepared system from a circuit.
    ///
    /// All structure-dependent work happens here: source classification,
    /// unknown numbering, matrix assembly, and (on the dense path) the LU
    /// factorization — which also means a singular system is reported at
    /// build time rather than on the first solve.
    ///
    /// # Errors
    ///
    /// Propagates [`CircuitError::SingularSystem`] from the dense
    /// factorization and rejects [`Method::Cg`] with floating sources
    /// ([`CircuitError::InvalidElement`]).
    pub fn build(circuit: &Circuit, options: BatchOptions) -> Result<Self, CircuitError> {
        let _trace_span = obs::trace::span("circuit.batch.build", obs::trace::Level::Stage);
        BATCH_BUILDS.inc();
        let fingerprint = circuit_fingerprint(circuit);
        let structure_fingerprint = circuit_structure_fingerprint(circuit);
        let n_sources = circuit.source_count();
        let node_count = circuit.node_count();

        if circuit.is_nonlinear() {
            return Ok(PreparedSystem {
                fingerprint,
                structure_fingerprint,
                node_count,
                n_sources,
                options,
                lin: Vec::new(),
                kind: SystemKind::Nonlinear,
                last_x: None,
                last_iterations: Vec::new(),
                cold_iterations: None,
            });
        }

        let lin = linearize(circuit, None);
        let mut bindings = Vec::with_capacity(n_sources);
        let mut all_grounded = true;
        for element in circuit.elements() {
            if let Element::VoltageSource { npos, nneg, .. } = element {
                if *nneg == Circuit::GROUND {
                    bindings.push((*npos, 1.0));
                } else if *npos == Circuit::GROUND {
                    bindings.push((*nneg, -1.0));
                } else {
                    bindings.push((usize::MAX, 0.0));
                    all_grounded = false;
                }
            }
        }

        let kind = if all_grounded {
            build_reduced(circuit, &lin, &bindings, &options)?
        } else {
            if options.base.method == Method::Cg {
                return Err(CircuitError::InvalidElement {
                    reason: "conjugate-gradient path requires all voltage sources grounded"
                        .into(),
                });
            }
            build_full_mna(circuit, &lin)?
        };

        Ok(PreparedSystem {
            fingerprint,
            structure_fingerprint,
            node_count,
            n_sources,
            options,
            lin,
            kind,
            last_x: None,
            last_iterations: Vec::new(),
            cold_iterations: None,
        })
    }

    /// The fingerprint of the circuit this system was prepared from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of voltage sources, i.e. the required [`Rhs`] arity.
    pub fn rhs_len(&self) -> usize {
        self.n_sources
    }

    /// Rough resident size of this prepared system in bytes — dominated
    /// by the cached factorization (dense LU: `unknowns²` doubles;
    /// sparse LU: the factor non-zeros). Used by byte-budgeted artifact
    /// caches to decide eviction; an estimate, not an allocator truth.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Self>();
        bytes += self.lin.len() * 48;
        bytes += self.last_x.as_ref().map_or(0, |x| x.len() * 8);
        bytes += self.last_iterations.len() * 8;
        bytes += match &self.kind {
            SystemKind::Reduced {
                index,
                unknowns,
                bindings,
                ops,
                engine,
            } => {
                let structure = index.len() * 8 + bindings.len() * 16 + ops.len() * 24;
                let factors = match engine {
                    ReducedEngine::Dense(_) => unknowns * unknowns * 8 + unknowns * 8,
                    ReducedEngine::Sparse(lu) => lu.lu_nnz() * 16 + unknowns * 24,
                    ReducedEngine::Cg(matrix) => matrix.nnz() * 12 + unknowns * 8,
                    ReducedEngine::Empty => 0,
                };
                structure + factors
            }
            SystemKind::FullMna { n, ops, .. } => n * n * 8 + n * 8 + ops.len() * 24,
            SystemKind::Nonlinear => 0,
        };
        bytes
    }

    /// The options the system was built with.
    pub fn options(&self) -> &BatchOptions {
        &self.options
    }

    /// `true` when `circuit` still matches the prepared structure (same
    /// fingerprint), i.e. solving it through this system is sound.
    pub fn matches(&self, circuit: &Circuit) -> bool {
        circuit_fingerprint(circuit) == self.fingerprint
    }

    /// `true` when `circuit` has the same element *structure* (kinds and
    /// nodes) even if conductance/current values differ — the precondition
    /// for an in-place value refresh of the sparse engine.
    pub fn matches_structure(&self, circuit: &Circuit) -> bool {
        circuit_structure_fingerprint(circuit) == self.structure_fingerprint
    }

    /// `true` when the iterative (CG) engine is active, i.e. warm starts
    /// apply.
    pub fn uses_cg(&self) -> bool {
        matches!(
            self.kind,
            SystemKind::Reduced {
                engine: ReducedEngine::Cg(_),
                ..
            }
        )
    }

    /// The concrete engine this system dispatches to.
    pub fn engine_kind(&self) -> EngineKind {
        match &self.kind {
            SystemKind::Nonlinear => EngineKind::Nonlinear,
            SystemKind::FullMna { .. } => EngineKind::FullMna,
            SystemKind::Reduced { engine, .. } => match engine {
                ReducedEngine::Dense(_) => EngineKind::Dense,
                ReducedEngine::Sparse(_) => EngineKind::SparseDirect,
                ReducedEngine::Cg(_) => EngineKind::Iterative,
                ReducedEngine::Empty => EngineKind::Empty,
            },
        }
    }

    /// Per-solve CG iteration counts of the most recent [`Self::solve_batch`]
    /// call (0 entries for dense/full-MNA/fallback solves).
    pub fn last_cg_iterations(&self) -> &[usize] {
        &self.last_iterations
    }

    /// Attempts to update this system in place for a circuit whose element
    /// *values* changed but whose structure did not (a fault overlay or
    /// variation resample). Only the sparse-direct engine supports this: the
    /// cached symbolic analysis and elimination program are replayed on the
    /// new values via [`SparseLu::refresh`], which is much cheaper than a
    /// full rebuild.
    ///
    /// Returns `Ok(true)` when the refresh succeeded (the system now solves
    /// the new circuit), `Ok(false)` when this engine or structure cannot be
    /// refreshed and the caller should rebuild.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the fallback factorization inside
    /// [`SparseLu::refresh`] (e.g. the new values made the matrix
    /// numerically singular).
    pub fn try_value_refresh(&mut self, circuit: &Circuit) -> Result<bool, CircuitError> {
        if !self.matches_structure(circuit) || circuit.is_nonlinear() {
            return Ok(false);
        }
        let SystemKind::Reduced {
            engine: ReducedEngine::Sparse(lu),
            index,
            unknowns,
            ops,
            bindings,
        } = &mut self.kind
        else {
            return Ok(false);
        };

        let lin = linearize(circuit, None);
        let assembly = assemble_reduced(circuit, &lin, bindings);
        // Same structure fingerprint → same unknown numbering and sparsity
        // pattern; anything else means the fingerprint missed a structural
        // change, so refuse the fast path rather than risk a wrong refresh.
        if assembly.unknowns != *unknowns || assembly.index != *index {
            return Ok(false);
        }
        let csc = assembly.triplets.to_csc();
        match lu.refresh(&csc) {
            Ok(_bit_fast) => {}
            // Pattern drift (a conductance collapsed to an explicit zero,
            // say) is not an error — it just means the fast path is off.
            Err(CircuitError::SingularSystem { .. }) if !lu.symbolic().compatible_with(&csc) => {
                return Ok(false);
            }
            Err(e) => return Err(e),
        }
        *ops = assembly.ops;
        self.lin = lin;
        self.fingerprint = circuit_fingerprint(circuit);
        self.last_x = None;
        self.cold_iterations = None;
        VALUE_REFRESHES.inc();
        Ok(true)
    }

    /// Solves a single right-hand side. Equivalent to a one-element
    /// [`Self::solve_batch`].
    ///
    /// # Errors
    ///
    /// Same as [`Self::solve_batch`].
    pub fn solve(&mut self, circuit: &Circuit, rhs: &Rhs) -> Result<DcSolution, CircuitError> {
        let mut solutions = self.solve_batch(circuit, std::slice::from_ref(rhs))?;
        solutions.pop().ok_or(CircuitError::DimensionMismatch {
            expected: 1,
            actual: 0,
            what: "batch solution count",
        })
    }

    /// Solves every right-hand side of `batch` against `circuit`, reusing
    /// the cached structure.
    ///
    /// `circuit` must be the circuit the system was prepared from (or a
    /// [`Circuit::with_source_voltages`] re-drive of it); it is used for
    /// fingerprint verification and branch-current extraction.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::StalePreparedSystem`] when the conductance
    ///   structure changed since [`PreparedSystem::build`].
    /// * [`CircuitError::DimensionMismatch`] for wrong RHS arity.
    /// * [`CircuitError::InvalidElement`] when one node is driven to two
    ///   different voltages by the same RHS.
    /// * Solver failures propagated from CG / LU / Newton.
    pub fn solve_batch(
        &mut self,
        circuit: &Circuit,
        batch: &[Rhs],
    ) -> Result<Vec<DcSolution>, CircuitError> {
        let _trace_span = obs::trace::span("circuit.batch.solve", obs::trace::Level::Stage);
        let actual = circuit_fingerprint(circuit);
        if actual != self.fingerprint {
            BATCH_STALE.inc();
            return Err(CircuitError::StalePreparedSystem {
                expected: self.fingerprint,
                actual,
            });
        }
        BATCH_CALLS.inc();
        self.last_iterations.clear();
        for rhs in batch {
            if rhs.volts.len() != self.n_sources {
                return Err(CircuitError::DimensionMismatch {
                    expected: self.n_sources,
                    actual: rhs.volts.len(),
                    what: "rhs source-voltage count",
                });
            }
        }

        let mut solutions = Vec::with_capacity(batch.len());
        // (rhs, x) pairs solved during this call, for WarmStart::Nearest.
        let mut solved_this_batch: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
        for rhs in batch {
            BATCH_SOLVES.inc();
            let solution = self.solve_one(circuit, rhs, &mut solved_this_batch)?;
            solutions.push(solution);
        }
        Ok(solutions)
    }

    fn solve_one(
        &mut self,
        circuit: &Circuit,
        rhs: &Rhs,
        solved_this_batch: &mut Vec<(Vec<f64>, Vec<f64>)>,
    ) -> Result<DcSolution, CircuitError> {
        match &self.kind {
            SystemKind::Nonlinear => {
                BATCH_FALLBACKS.inc();
                self.last_iterations.push(0);
                let voltages: Vec<Voltage> =
                    rhs.volts.iter().map(|&v| Voltage::from_volts(v)).collect();
                let patched = circuit.with_source_voltages(&voltages)?;
                crate::solve::solve_dc(&patched, &self.options.base)
            }
            SystemKind::FullMna { n_v, n, ops, lu } => {
                let mut b = vec![0.0; *n];
                for op in ops {
                    match *op {
                        BOp::Const { u, c } => b[u] += c,
                        BOp::Source { u, k } => b[u] = rhs.volts[k],
                        BOp::Scaled { .. } => {}
                    }
                }
                BATCH_DENSE.inc();
                self.last_iterations.push(0);
                let x = lu.solve(&b)?;
                let mut voltages = vec![0.0; self.node_count];
                voltages[1..self.node_count].copy_from_slice(&x[..*n_v]);
                finish(circuit, &self.lin, voltages)
            }
            SystemKind::Reduced {
                index,
                unknowns,
                bindings,
                ops,
                engine,
            } => {
                // Per-RHS driven-node voltages, with conflict detection
                // mirroring `solve_dc`'s source classification.
                let mut driven = vec![f64::NAN; self.node_count];
                for (k, &(node, sign)) in bindings.iter().enumerate() {
                    let value = sign * rhs.volts[k];
                    if !driven[node].is_nan() && driven[node] != value {
                        return Err(CircuitError::InvalidElement {
                            reason: format!(
                                "node {node} driven to both {} V and {value} V",
                                driven[node]
                            ),
                        });
                    }
                    driven[node] = value;
                }
                let driven_voltage = |node: usize| -> f64 {
                    if node == Circuit::GROUND {
                        0.0
                    } else {
                        driven[node]
                    }
                };

                let mut b = vec![0.0; *unknowns];
                for op in ops {
                    match *op {
                        BOp::Scaled { u, node, g } => b[u] += g * driven_voltage(node),
                        BOp::Const { u, c } => b[u] += c,
                        BOp::Source { .. } => {}
                    }
                }

                let x = match engine {
                    ReducedEngine::Empty => Vec::new(),
                    ReducedEngine::Dense(lu) => {
                        BATCH_DENSE.inc();
                        self.last_iterations.push(0);
                        lu.solve(&b)?
                    }
                    ReducedEngine::Sparse(lu) => {
                        BATCH_SPARSE.inc();
                        self.last_iterations.push(0);
                        lu.solve(&b)
                    }
                    ReducedEngine::Cg(csr) => {
                        let x0: Option<&[f64]> = match self.options.warm_start {
                            WarmStart::Cold => None,
                            WarmStart::Previous => self.last_x.as_deref(),
                            WarmStart::Nearest => solved_this_batch
                                .iter()
                                .min_by(|(ra, _), (rb, _)| {
                                    let da = dist2(ra, &rhs.volts);
                                    let db = dist2(rb, &rhs.volts);
                                    da.total_cmp(&db)
                                })
                                .map(|(_, x)| x.as_slice())
                                .or(self.last_x.as_deref()),
                        };
                        if x0.is_some() {
                            BATCH_WARM_STARTS.inc();
                        }
                        let (x, stats) = match solve_cg_warm(csr, &b, x0, &self.options.base.cg)
                        {
                            Ok(result) => result,
                            // A pathological warm start can stall where a
                            // cold start would converge; retry cold before
                            // giving up so the batch path is never *less*
                            // robust than the serial one.
                            Err(CircuitError::LinearNoConvergence { .. }) if x0.is_some() => {
                                BATCH_COLD_RETRIES.inc();
                                solve_cg_warm(csr, &b, None, &self.options.base.cg)?
                            }
                            Err(e) => return Err(e),
                        };
                        BATCH_CG_ITERATIONS.add(stats.iterations as u64);
                        BATCH_CG_ITERATIONS_PER_SOLVE.record(stats.iterations as f64);
                        self.last_iterations.push(stats.iterations);
                        // Warm-start effectiveness: compare every warm
                        // solve against the latest cold baseline of this
                        // prepared system.
                        match (x0.is_some(), self.cold_iterations) {
                            (false, _) => self.cold_iterations = Some(stats.iterations),
                            (true, Some(cold)) => BATCH_WARM_ITERS_SAVED
                                .add(cold.saturating_sub(stats.iterations) as u64),
                            (true, None) => {}
                        }
                        if self.options.warm_start == WarmStart::Nearest {
                            solved_this_batch.push((rhs.volts.clone(), x.clone()));
                        }
                        self.last_x = Some(x.clone());
                        x
                    }
                };

                let mut voltages = vec![0.0; self.node_count];
                for node in 1..self.node_count {
                    let v = driven_voltage(node);
                    voltages[node] = if v.is_nan() { x[index[node]] } else { v };
                }
                finish(circuit, &self.lin, voltages)
            }
        }
    }
}

/// Solves every RHS of `batch` through `prepared`, in order.
///
/// Free-function form of [`PreparedSystem::solve_batch`]; see there for the
/// contract and error conditions.
///
/// # Errors
///
/// Same as [`PreparedSystem::solve_batch`].
pub fn solve_dc_batch(
    prepared: &mut PreparedSystem,
    circuit: &Circuit,
    batch: &[Rhs],
) -> Result<Vec<DcSolution>, CircuitError> {
    prepared.solve_batch(circuit, batch)
}

/// Reuses `slot`'s prepared system when it still matches `circuit` (same
/// fingerprint and options); refreshes the cached sparse factorization in
/// place when only element *values* changed; rebuilds otherwise.
///
/// This is the invalidation idiom for call sites whose conductances change
/// between batches (fault overlays, variation resamples): a value-only
/// change on the sparse-direct engine replays the cached elimination
/// program ([`SparseLu::refresh`] — the `solver.klu.refactor` fast path),
/// and anything else drops the stale system and rebuilds.
///
/// # Errors
///
/// Propagates [`PreparedSystem::build`] failures.
pub fn prepare_or_reuse<'a>(
    slot: &'a mut Option<PreparedSystem>,
    circuit: &Circuit,
    options: &BatchOptions,
) -> Result<&'a mut PreparedSystem, CircuitError> {
    let rebuild = match slot.as_mut() {
        Some(prepared) => {
            if prepared.options() == options
                && (prepared.matches(circuit) || prepared.try_value_refresh(circuit)?)
            {
                CACHE_HITS.inc();
                false
            } else {
                CACHE_INVALIDATIONS.inc();
                true
            }
        }
        None => {
            CACHE_COLD_BUILDS.inc();
            true
        }
    };
    if obs::enabled() {
        let hits = CACHE_HITS.get() as f64;
        let misses = (CACHE_INVALIDATIONS.get() + CACHE_COLD_BUILDS.get()) as f64;
        if hits + misses > 0.0 {
            BATCH_REUSE_RATIO.set(hits / (hits + misses));
        }
    }
    if rebuild {
        *slot = Some(PreparedSystem::build(circuit, options.clone())?);
    }
    match slot.as_mut() {
        Some(prepared) => Ok(prepared),
        // Unreachable: the slot was just filled above.
        None => Err(CircuitError::InvalidElement {
            reason: "prepared-system slot unexpectedly empty".into(),
        }),
    }
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// FNV-1a over the conductance-relevant structure of a circuit.
///
/// Voltage-source *values* are excluded (the batch overrides them); every
/// other element field — including current-source values, which feed the
/// cached static RHS terms — participates, so any change that would
/// invalidate the cached assembly changes the fingerprint.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(PRIME);
    };
    mix(circuit.node_count() as u64);
    mix(circuit.element_count() as u64);
    for element in circuit.elements() {
        match element {
            Element::Resistor { n1, n2, resistance } => {
                mix(1);
                mix(*n1 as u64);
                mix(*n2 as u64);
                mix(resistance.ohms().to_bits());
            }
            Element::VoltageSource { npos, nneg, .. } => {
                mix(2);
                mix(*npos as u64);
                mix(*nneg as u64);
            }
            Element::CurrentSource { from, to, current } => {
                mix(3);
                mix(*from as u64);
                mix(*to as u64);
                mix(current.amperes().to_bits());
            }
            Element::Memristor { n1, n2, state, iv } => {
                mix(4);
                mix(*n1 as u64);
                mix(*n2 as u64);
                mix(state.ohms().to_bits());
                match iv {
                    mnsim_tech::memristor::IvModel::Linear => mix(0),
                    mnsim_tech::memristor::IvModel::Sinh { alpha } => {
                        mix(1);
                        mix(alpha.to_bits());
                    }
                }
            }
            Element::Capacitor {
                n1,
                n2,
                capacitance,
            } => {
                mix(5);
                mix(*n1 as u64);
                mix(*n2 as u64);
                mix(capacitance.farads().to_bits());
            }
        }
    }
    h
}

/// FNV-1a over element kinds and node connections only — no conductance,
/// current, or capacitance *values*. Two circuits with equal structure
/// fingerprints assemble reduced systems with identical sparsity patterns,
/// which is the precondition for refreshing a cached sparse factorization
/// in place instead of rebuilding it.
pub fn circuit_structure_fingerprint(circuit: &Circuit) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(PRIME);
    };
    mix(circuit.node_count() as u64);
    mix(circuit.element_count() as u64);
    for element in circuit.elements() {
        match element {
            Element::Resistor { n1, n2, .. } => {
                mix(1);
                mix(*n1 as u64);
                mix(*n2 as u64);
            }
            Element::VoltageSource { npos, nneg, .. } => {
                mix(2);
                mix(*npos as u64);
                mix(*nneg as u64);
            }
            Element::CurrentSource { from, to, .. } => {
                mix(3);
                mix(*from as u64);
                mix(*to as u64);
            }
            Element::Memristor { n1, n2, iv, .. } => {
                mix(4);
                mix(*n1 as u64);
                mix(*n2 as u64);
                // The IV *kind* is structural: switching linear ↔ sinh
                // changes the solve strategy, not just values.
                match iv {
                    mnsim_tech::memristor::IvModel::Linear => mix(0),
                    mnsim_tech::memristor::IvModel::Sinh { .. } => mix(1),
                }
            }
            Element::Capacitor { n1, n2, .. } => {
                mix(5);
                mix(*n1 as u64);
                mix(*n2 as u64);
            }
        }
    }
    h
}

/// The structure-dependent assembly of a reduced system: unknown
/// numbering, stamped matrix, and RHS replay plan.
struct ReducedAssembly {
    index: Vec<usize>,
    unknowns: usize,
    triplets: TripletMatrix,
    ops: Vec<BOp>,
}

/// Assembles the reduced SPD system and its RHS replay plan. Mirrors
/// `solve::solve_reduced` stamp-for-stamp so a cold-started batch is
/// bitwise identical to the serial path.
fn assemble_reduced(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
    bindings: &[(usize, f64)],
) -> ReducedAssembly {
    let n_nodes = circuit.node_count();
    let mut is_driven = vec![false; n_nodes];
    for &(node, _) in bindings {
        is_driven[node] = true;
    }

    let mut index = vec![usize::MAX; n_nodes];
    let mut unknowns = 0usize;
    for (node, slot) in index.iter_mut().enumerate().skip(1) {
        if !is_driven[node] {
            *slot = unknowns;
            unknowns += 1;
        }
    }
    let fixed = |node: usize| node == Circuit::GROUND || is_driven[node];

    let mut triplets = TripletMatrix::new(unknowns, unknowns);
    let mut ops = Vec::new();

    for (idx, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { n1, n2, .. }
            | Element::Memristor { n1, n2, .. }
            | Element::Capacitor { n1, n2, .. } => {
                let Some(Linearized { g, ieq }) = lin[idx] else {
                    continue;
                };
                let i1 = index[*n1];
                let i2 = index[*n2];
                if i1 != usize::MAX {
                    triplets.add(i1, i1, g);
                    if fixed(*n2) {
                        ops.push(BOp::Scaled {
                            u: i1,
                            node: *n2,
                            g,
                        });
                    } else {
                        triplets.add(i1, i2, -g);
                    }
                    ops.push(BOp::Const { u: i1, c: -ieq });
                }
                if i2 != usize::MAX {
                    triplets.add(i2, i2, g);
                    if fixed(*n1) {
                        ops.push(BOp::Scaled {
                            u: i2,
                            node: *n1,
                            g,
                        });
                    } else {
                        triplets.add(i2, i1, -g);
                    }
                    ops.push(BOp::Const { u: i2, c: ieq });
                }
            }
            Element::CurrentSource { from, to, current } => {
                let i = current.amperes();
                if index[*from] != usize::MAX {
                    ops.push(BOp::Const {
                        u: index[*from],
                        c: -i,
                    });
                }
                if index[*to] != usize::MAX {
                    ops.push(BOp::Const {
                        u: index[*to],
                        c: i,
                    });
                }
            }
            Element::VoltageSource { .. } => {} // encoded via bindings
        }
    }

    ReducedAssembly {
        index,
        unknowns,
        triplets,
        ops,
    }
}

/// Assembles the reduced system and attaches the linear engine selected by
/// `options.base.method` (dense LU below [`crate::solve`]'s cutoff, sparse
/// direct LU up to very large systems, CG beyond — or whichever the caller
/// pinned explicitly).
fn build_reduced(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
    bindings: &[(usize, f64)],
    options: &BatchOptions,
) -> Result<SystemKind, CircuitError> {
    let ReducedAssembly {
        index,
        unknowns,
        triplets,
        ops,
    } = assemble_reduced(circuit, lin, bindings);

    let engine = if unknowns == 0 {
        ReducedEngine::Empty
    } else {
        let choice = match options.base.method {
            Method::Cg => LinearEngine::Cg,
            Method::DenseLu => LinearEngine::Dense,
            Method::SparseLu => LinearEngine::Sparse,
            Method::Auto => auto_engine(unknowns),
        };
        match choice {
            LinearEngine::Dense => {
                let csr = triplets.to_csr();
                ReducedEngine::Dense(DenseMatrix::from_rows(&csr.to_dense()).factor()?)
            }
            LinearEngine::Sparse => {
                ReducedEngine::Sparse(SparseLu::factor(&triplets.to_csc())?)
            }
            LinearEngine::Cg => ReducedEngine::Cg(triplets.to_csr()),
        }
    };

    Ok(SystemKind::Reduced {
        index,
        unknowns,
        bindings: bindings.to_vec(),
        ops,
        engine,
    })
}

/// Assembles and factors the full-MNA system (floating sources). The matrix
/// does not depend on source values — only the `b[col] = V` rows do — so
/// the LU is cached and each RHS costs one back-substitution.
fn build_full_mna(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
) -> Result<SystemKind, CircuitError> {
    let n_nodes = circuit.node_count();
    let n_v = n_nodes - 1;
    let sources: Vec<usize> = circuit
        .elements()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Element::VoltageSource { .. }))
        .map(|(i, _)| i)
        .collect();
    let n = n_v + sources.len();
    let mut a = DenseMatrix::zeros(n);
    let mut ops = Vec::new();

    let row = |node: usize| -> Option<usize> {
        if node == Circuit::GROUND {
            None
        } else {
            Some(node - 1)
        }
    };

    for (idx, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { n1, n2, .. }
            | Element::Memristor { n1, n2, .. }
            | Element::Capacitor { n1, n2, .. } => {
                let Some(Linearized { g, ieq }) = lin[idx] else {
                    continue;
                };
                if let Some(r1) = row(*n1) {
                    a[(r1, r1)] += g;
                    if let Some(r2) = row(*n2) {
                        a[(r1, r2)] -= g;
                    }
                    ops.push(BOp::Const { u: r1, c: -ieq });
                }
                if let Some(r2) = row(*n2) {
                    a[(r2, r2)] += g;
                    if let Some(r1) = row(*n1) {
                        a[(r2, r1)] -= g;
                    }
                    ops.push(BOp::Const { u: r2, c: ieq });
                }
            }
            Element::CurrentSource { from, to, current } => {
                if let Some(r) = row(*from) {
                    ops.push(BOp::Const {
                        u: r,
                        c: -current.amperes(),
                    });
                }
                if let Some(r) = row(*to) {
                    ops.push(BOp::Const {
                        u: r,
                        c: current.amperes(),
                    });
                }
            }
            Element::VoltageSource { .. } => {}
        }
    }

    for (k, &src_idx) in sources.iter().enumerate() {
        if let Element::VoltageSource { npos, nneg, .. } = &circuit.elements()[src_idx] {
            let col = n_v + k;
            if let Some(r) = row(*npos) {
                a[(r, col)] += 1.0;
                a[(col, r)] += 1.0;
            }
            if let Some(r) = row(*nneg) {
                a[(r, col)] -= 1.0;
                a[(col, r)] -= 1.0;
            }
            ops.push(BOp::Source { u: col, k });
        }
    }

    Ok(SystemKind::FullMna {
        n_v,
        n,
        ops,
        lu: a.factor()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarSpec;
    use crate::solve::solve_dc;
    use mnsim_tech::memristor::IvModel;
    use mnsim_tech::units::Resistance;

    fn spec(rows: usize, cols: usize) -> CrossbarSpec {
        CrossbarSpec::uniform(
            rows,
            cols,
            Resistance::from_kilo_ohms(10.0),
            Resistance::from_ohms(2.0),
            Resistance::from_ohms(500.0),
            Voltage::from_volts(1.0),
        )
    }

    fn ramp_inputs(rows: usize, k: usize) -> Vec<Voltage> {
        (0..rows)
            .map(|i| Voltage::from_volts(0.2 + 0.05 * (i + k) as f64 / rows as f64))
            .collect()
    }

    #[test]
    fn prepared_systems_are_thread_portable() {
        // The parallel execution engine shares built circuits across worker
        // threads by reference and hands each worker its own clone of the
        // prepared system; both therefore must stay `Send + Sync` (every
        // field is owned data — no interior mutability, no raw pointers).
        fn assert_thread_portable<T: Send + Sync>() {}
        assert_thread_portable::<PreparedSystem>();
        assert_thread_portable::<crate::crossbar::CrossbarCircuit>();
        assert_thread_portable::<Circuit>();
        assert_thread_portable::<Rhs>();
    }

    #[test]
    fn batch_matches_serial_bitwise_on_dense_path() {
        let xbar = spec(3, 3).build().unwrap(); // 18 unknowns → Auto = dense
        let options = BatchOptions::default();
        let mut prepared = PreparedSystem::build(xbar.circuit(), options).unwrap();
        assert!(!prepared.uses_cg());
        for k in 0..4 {
            let inputs = ramp_inputs(3, k);
            let rhs = Rhs::from_voltages(&inputs);
            let got = prepared.solve(xbar.circuit(), &rhs).unwrap();
            let patched = xbar.circuit().with_source_voltages(&inputs).unwrap();
            let want = solve_dc(&patched, &SolveOptions::default()).unwrap();
            assert_eq!(got.voltages(), want.voltages());
        }
    }

    #[test]
    fn batch_matches_serial_bitwise_on_cold_cg_path() {
        let xbar = spec(8, 8).build().unwrap(); // 128 unknowns
        let serial_options = SolveOptions {
            method: Method::Cg,
            ..SolveOptions::default()
        };
        let options = BatchOptions {
            base: serial_options.clone(),
            warm_start: WarmStart::Cold,
        };
        let mut prepared = PreparedSystem::build(xbar.circuit(), options).unwrap();
        assert!(prepared.uses_cg());
        for k in 0..3 {
            let inputs = ramp_inputs(8, k);
            let rhs = Rhs::from_voltages(&inputs);
            let got = prepared.solve(xbar.circuit(), &rhs).unwrap();
            let patched = xbar.circuit().with_source_voltages(&inputs).unwrap();
            let want = solve_dc(&patched, &serial_options).unwrap();
            assert_eq!(got.voltages(), want.voltages());
        }
    }

    #[test]
    fn batch_matches_serial_bitwise_on_sparse_path() {
        let xbar = spec(8, 8).build().unwrap(); // 128 unknowns → Auto = sparse
        let options = BatchOptions::default();
        let mut prepared = PreparedSystem::build(xbar.circuit(), options).unwrap();
        assert_eq!(prepared.engine_kind(), EngineKind::SparseDirect);
        for k in 0..3 {
            let inputs = ramp_inputs(8, k);
            let rhs = Rhs::from_voltages(&inputs);
            let got = prepared.solve(xbar.circuit(), &rhs).unwrap();
            let patched = xbar.circuit().with_source_voltages(&inputs).unwrap();
            let want = solve_dc(&patched, &SolveOptions::default()).unwrap();
            assert_eq!(got.voltages(), want.voltages());
        }
    }

    #[test]
    fn value_only_change_refreshes_sparse_system_in_place() {
        let clean = spec(8, 8).build().unwrap(); // 128 unknowns → sparse
        let mut faulty_spec = spec(8, 8);
        faulty_spec.states[13] = Resistance::from_kilo_ohms(100.0);
        let faulty = faulty_spec.build().unwrap();

        let mut slot: Option<PreparedSystem> = None;
        let options = BatchOptions::default();
        prepare_or_reuse(&mut slot, clean.circuit(), &options).unwrap();
        assert_eq!(
            slot.as_ref().unwrap().engine_kind(),
            EngineKind::SparseDirect
        );
        obs::set_enabled(true);
        let refreshes_before = VALUE_REFRESHES.get();

        // Same structure, different memristor value → refresh, not rebuild.
        let prepared = prepare_or_reuse(&mut slot, faulty.circuit(), &options).unwrap();
        assert_eq!(VALUE_REFRESHES.get(), refreshes_before + 1);
        assert!(prepared.matches(faulty.circuit()));

        // The refreshed system must solve the *new* circuit exactly as a
        // cold build would.
        let inputs = ramp_inputs(8, 2);
        let got = prepared
            .solve(faulty.circuit(), &Rhs::from_voltages(&inputs))
            .unwrap();
        let mut cold = PreparedSystem::build(faulty.circuit(), options).unwrap();
        let want = cold
            .solve(faulty.circuit(), &Rhs::from_voltages(&inputs))
            .unwrap();
        assert_eq!(got.voltages(), want.voltages());
    }

    #[test]
    fn empty_batch_returns_no_solutions() {
        let xbar = spec(2, 2).build().unwrap();
        let mut prepared =
            PreparedSystem::build(xbar.circuit(), BatchOptions::default()).unwrap();
        let solutions = solve_dc_batch(&mut prepared, xbar.circuit(), &[]).unwrap();
        assert!(solutions.is_empty());
    }

    #[test]
    fn stale_circuit_is_rejected() {
        let clean = spec(2, 2);
        let mut mutated = spec(2, 2);
        mutated.states[0] = Resistance::from_kilo_ohms(1.0);
        let clean_xbar = clean.build().unwrap();
        let mutated_xbar = mutated.build().unwrap();
        let mut prepared =
            PreparedSystem::build(clean_xbar.circuit(), BatchOptions::default()).unwrap();
        let rhs = Rhs::from_voltages(&ramp_inputs(2, 0));
        let err = prepared
            .solve_batch(mutated_xbar.circuit(), std::slice::from_ref(&rhs))
            .unwrap_err();
        assert!(matches!(err, CircuitError::StalePreparedSystem { .. }));
        // Re-driving the sources does NOT invalidate.
        let redriven = clean_xbar
            .circuit()
            .with_source_voltages(&ramp_inputs(2, 3))
            .unwrap();
        assert!(prepared.solve_batch(&redriven, &[rhs]).is_ok());
    }

    #[test]
    fn prepare_or_reuse_rebuilds_on_change() {
        let clean_xbar = spec(2, 2).build().unwrap();
        let mut slot: Option<PreparedSystem> = None;
        let options = BatchOptions::default();
        let first = prepare_or_reuse(&mut slot, clean_xbar.circuit(), &options)
            .unwrap()
            .fingerprint();
        let second = prepare_or_reuse(&mut slot, clean_xbar.circuit(), &options)
            .unwrap()
            .fingerprint();
        assert_eq!(first, second);
        let mut mutated = spec(2, 2);
        mutated.states[3] = Resistance::from_kilo_ohms(2.0);
        let mutated_xbar = mutated.build().unwrap();
        let third = prepare_or_reuse(&mut slot, mutated_xbar.circuit(), &options)
            .unwrap()
            .fingerprint();
        assert_ne!(first, third);
    }

    #[test]
    fn rhs_arity_checked() {
        let xbar = spec(3, 3).build().unwrap();
        let mut prepared =
            PreparedSystem::build(xbar.circuit(), BatchOptions::default()).unwrap();
        let rhs = Rhs::from_volts(&[1.0, 2.0]); // 3 sources expected
        assert!(matches!(
            prepared.solve(xbar.circuit(), &rhs),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn nonlinear_falls_back_to_newton() {
        let mut s = spec(2, 2);
        s.iv = IvModel::Sinh { alpha: 2.0 };
        let xbar = s.build().unwrap();
        let mut prepared =
            PreparedSystem::build(xbar.circuit(), BatchOptions::default()).unwrap();
        let inputs = ramp_inputs(2, 1);
        let got = prepared
            .solve(xbar.circuit(), &Rhs::from_voltages(&inputs))
            .unwrap();
        let patched = xbar.circuit().with_source_voltages(&inputs).unwrap();
        let want = solve_dc(&patched, &SolveOptions::default()).unwrap();
        assert_eq!(got.voltages(), want.voltages());
    }

    #[test]
    fn full_mna_path_reuses_lu() {
        // Floating source between two grounded resistors.
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_resistor(b, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_voltage_source(a, b, Voltage::from_volts(2.0)).unwrap();
        let mut prepared = PreparedSystem::build(&c, BatchOptions::default()).unwrap();
        for v in [1.0, 2.0, -3.0] {
            let rhs = Rhs::from_volts(&[v]);
            let got = prepared.solve(&c, &rhs).unwrap();
            let patched = c
                .with_source_voltages(&[Voltage::from_volts(v)])
                .unwrap();
            let want = solve_dc(&patched, &SolveOptions::default()).unwrap();
            assert_eq!(got.voltages(), want.voltages());
        }
    }

    #[test]
    fn warm_start_reduces_iterations_on_correlated_batch() {
        let xbar = spec(10, 10).build().unwrap(); // 200 unknowns
        let batch: Vec<Rhs> = (0..6)
            .map(|k| Rhs::from_voltages(&ramp_inputs(10, k)))
            .collect();
        let run = |warm_start: WarmStart| -> Vec<usize> {
            let options = BatchOptions {
                base: SolveOptions {
                    method: Method::Cg,
                    ..SolveOptions::default()
                },
                warm_start,
            };
            let mut prepared = PreparedSystem::build(xbar.circuit(), options).unwrap();
            prepared.solve_batch(xbar.circuit(), &batch).unwrap();
            prepared.last_cg_iterations().to_vec()
        };
        let cold = run(WarmStart::Cold);
        let warm = run(WarmStart::Previous);
        let cold_total: usize = cold.iter().sum();
        let warm_total: usize = warm.iter().sum();
        assert!(
            warm_total < cold_total,
            "warm {warm_total} !< cold {cold_total}"
        );
        // First solve of both runs is cold, so they match exactly.
        assert_eq!(cold[0], warm[0]);
    }

    #[test]
    fn conflicting_rhs_drivers_rejected() {
        // Two sources onto the same node: fine while values agree,
        // rejected when the RHS makes them disagree.
        let mut c = Circuit::new();
        let a = c.add_node();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(10.0))
            .unwrap();
        let mut prepared = PreparedSystem::build(&c, BatchOptions::default()).unwrap();
        assert!(prepared.solve(&c, &Rhs::from_volts(&[2.0, 2.0])).is_ok());
        assert!(matches!(
            prepared.solve(&c, &Rhs::from_volts(&[1.0, 2.0])),
            Err(CircuitError::InvalidElement { .. })
        ));
    }
}
