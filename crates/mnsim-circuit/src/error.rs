//! Error types for the circuit simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a circuit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// The nodal matrix is singular — typically a floating node or a loop of
    /// ideal voltage sources.
    SingularSystem {
        /// Row/unknown index at which the factorization broke down.
        at: usize,
    },
    /// The iterative linear solver did not reach the requested tolerance.
    LinearNoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual norm when the solver gave up.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// The Newton-Raphson loop did not converge.
    NewtonNoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Largest voltage update in the final iteration (volts).
        last_update: f64,
    },
    /// A referenced node does not exist in the circuit.
    UnknownNode {
        /// The offending node id.
        node: usize,
    },
    /// An element value is physically invalid (e.g. non-positive resistance).
    InvalidElement {
        /// Description of the problem.
        reason: String,
    },
    /// Dimension mismatch between inputs and the circuit.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
        /// What quantity was being matched.
        what: &'static str,
    },
    /// A netlist could not be parsed.
    NetlistParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A solver produced NaN or infinite node voltages / branch currents —
    /// numerically meaningless output that must not be used.
    NonFiniteSolution {
        /// Which solver stage produced the values (e.g. "cg", "dense-lu").
        stage: &'static str,
    },
    /// The iterative linear solver's residual (or an internal quadratic
    /// form) became NaN or infinite mid-iteration. Unlike
    /// [`CircuitError::LinearNoConvergence`], this is detected **as soon
    /// as it happens** — the iteration budget is not burned on a solve
    /// that can no longer produce a meaningful answer.
    LinearNonFinite {
        /// Iterations performed before the breakdown was detected.
        iterations: usize,
    },
    /// The iterative linear solver stopped making progress: no new best
    /// residual over the configured stagnation window (see
    /// [`CgOptions::stagnation_window`](crate::cg::CgOptions::stagnation_window)).
    /// Fails fast so the recovery ladder can escalate instead of burning
    /// the remaining iteration budget.
    LinearStagnated {
        /// Iterations performed when stagnation was declared.
        iterations: usize,
        /// Relative residual at that point.
        residual: f64,
        /// The window (iterations without improvement) that triggered.
        window: usize,
    },
    /// A [`crate::batch::PreparedSystem`] was asked to solve a circuit whose
    /// conductance structure no longer matches the one it was built from
    /// (e.g. a fault overlay or variation resample changed cell states).
    /// The cached factorization would silently produce wrong answers, so the
    /// solve is refused; rebuild the prepared system instead.
    StalePreparedSystem {
        /// Fingerprint of the circuit the system was prepared from.
        expected: u64,
        /// Fingerprint of the circuit presented at solve time.
        actual: u64,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::SingularSystem { at } => {
                write!(f, "singular nodal system (pivot breakdown at unknown {at}); check for floating nodes")
            }
            CircuitError::LinearNoConvergence {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "linear solver stalled after {iterations} iterations (residual {residual:.3e} > tolerance {tolerance:.3e})"
            ),
            CircuitError::NewtonNoConvergence {
                iterations,
                last_update,
            } => write!(
                f,
                "newton iteration did not converge after {iterations} steps (last voltage update {last_update:.3e} V)"
            ),
            CircuitError::UnknownNode { node } => write!(f, "unknown circuit node {node}"),
            CircuitError::InvalidElement { reason } => write!(f, "invalid element: {reason}"),
            CircuitError::DimensionMismatch {
                expected,
                actual,
                what,
            } => write!(f, "{what}: expected {expected}, got {actual}"),
            CircuitError::NetlistParse { line, reason } => {
                write!(f, "netlist parse error at line {line}: {reason}")
            }
            CircuitError::NonFiniteSolution { stage } => {
                write!(f, "solver stage `{stage}` produced non-finite voltages or currents")
            }
            CircuitError::LinearNonFinite { iterations } => write!(
                f,
                "linear solver residual became non-finite after {iterations} iterations"
            ),
            CircuitError::LinearStagnated {
                iterations,
                residual,
                window,
            } => write!(
                f,
                "linear solver stagnated: no residual improvement over {window} iterations \
                 (stopped after {iterations} iterations at residual {residual:.3e})"
            ),
            CircuitError::StalePreparedSystem { expected, actual } => write!(
                f,
                "prepared system is stale: built for circuit fingerprint {expected:#018x}, \
                 asked to solve {actual:#018x}; rebuild it after conductance changes"
            ),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::SingularSystem { at: 7 };
        assert!(e.to_string().contains("unknown 7"));
        let e = CircuitError::NetlistParse {
            line: 3,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
