//! Dense LU factorization with partial pivoting.
//!
//! The full modified-nodal-analysis matrix (with voltage-source branch
//! currents) is not symmetric positive-definite, so the general solve path
//! uses LU. Crossbar validation circuits are moderate in size; for the very
//! large symmetric cases the solver switches to conjugate gradients
//! ([`crate::cg`]) instead.

use crate::error::CircuitError;

/// A dense row-major matrix with an in-place LU solver.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        DenseMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all of length `rows.len()`.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let n = rows.len();
        let mut m = DenseMatrix::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Factors the matrix into LU form with partial pivoting, consuming it.
    ///
    /// The returned [`LuFactors`] can back-solve any number of right-hand
    /// sides, which is what makes factorization caching across a batch of
    /// solves worthwhile (`O(n³)` once, `O(n²)` per RHS).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularSystem`] when a pivot collapses below
    /// `1e-13` of the largest element.
    pub fn factor(mut self) -> Result<LuFactors, CircuitError> {
        let n = self.n;
        let mut perm: Vec<usize> = (0..n).collect();

        let scale = self
            .data
            .iter()
            .fold(0.0f64, |acc, v| acc.max(v.abs()))
            .max(1e-300);

        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut pivot_row = k;
            let mut pivot_val = self[(perm[k], k)].abs();
            for i in (k + 1)..n {
                let v = self[(perm[i], k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-13 * scale {
                return Err(CircuitError::SingularSystem { at: k });
            }
            perm.swap(k, pivot_row);

            let pk = perm[k];
            let diag = self[(pk, k)];
            for &pi in &perm[(k + 1)..n] {
                let factor = self[(pi, k)] / diag;
                if factor == 0.0 {
                    continue;
                }
                self[(pi, k)] = factor; // store L
                for j in (k + 1)..n {
                    let v = self[(pk, j)];
                    self[(pi, j)] -= factor * v;
                }
            }
        }

        Ok(LuFactors {
            n,
            data: self.data,
            perm,
        })
    }

    /// Solves `A·x = b` by LU with partial pivoting, consuming the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::SingularSystem`] when a pivot collapses below
    /// `1e-13` of the largest element, and
    /// [`CircuitError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve(self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if b.len() != self.n {
            return Err(CircuitError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
                what: "right-hand side length",
            });
        }
        self.factor()?.solve(b)
    }
}

/// An LU factorization (with row permutation) ready to back-solve many
/// right-hand sides against the same matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    n: usize,
    /// Combined L (strict lower, unit diagonal implied) and U, row-major,
    /// addressed through `perm`.
    data: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Back-solves `A·x = b` using the cached factorization.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, CircuitError> {
        if b.len() != self.n {
            return Err(CircuitError::DimensionMismatch {
                expected: self.n,
                actual: b.len(),
                what: "right-hand side length",
            });
        }
        let n = self.n;
        let mut x: Vec<f64> = b.to_vec();

        // Forward substitution (apply L, permuted).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let pi = self.perm[i];
            let mut acc = x[pi];
            for (j, &yj) in y.iter().enumerate().take(i) {
                acc -= self.at(pi, j) * yj;
            }
            y[i] = acc;
        }

        // Back substitution (apply U).
        for i in (0..n).rev() {
            let pi = self.perm[i];
            let mut acc = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.at(pi, j) * xj;
            }
            x[i] = acc / self.at(pi, i);
        }

        // x holds the solution in natural order already (we solved in
        // pivoted row order but unknown order is untouched).
        Ok(x)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let mut m = DenseMatrix::zeros(3);
        for i in 0..3 {
            m[(i, i)] = 1.0;
        }
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_system() {
        // 2x + y = 5 ; x + 3y = 10  → x = 1, y = 3
        let m = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Without pivoting this system fails immediately (a00 = 0).
        let m = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            m.solve(&[1.0, 2.0]),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let m = DenseMatrix::zeros(2);
        assert!(matches!(
            m.solve(&[1.0]),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_spd_roundtrip() {
        // A = B·Bᵀ + n·I is SPD; verify A·x recovered from solve matches.
        let n = 8;
        let mut b = DenseMatrix::zeros(n);
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in 0..n {
                b[(i, j)] = rnd();
            }
        }
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += b[(i, k)] * b[(j, k)];
                }
                a[(i, j)] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let mut rhs = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                rhs[i] += a[(i, j)] * x_true[j];
            }
        }
        let x = a.solve(&rhs).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "component {i}");
        }
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn from_rows_checks_shape() {
        let _ = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn factored_solve_matches_direct_solve_bitwise() {
        let rows = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -1.0],
            vec![0.5, -1.0, 5.0],
        ];
        let rhs_set = [
            vec![1.0, 2.0, 3.0],
            vec![-0.25, 0.75, 1.5],
            vec![0.0, 1e-6, -4.0],
        ];
        let lu = DenseMatrix::from_rows(&rows).factor().unwrap();
        for b in &rhs_set {
            let direct = DenseMatrix::from_rows(&rows).solve(b).unwrap();
            let reused = lu.solve(b).unwrap();
            // Same elimination and substitution arithmetic → identical bits.
            assert_eq!(direct, reused);
        }
    }

    #[test]
    fn factor_rejects_singular() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(matches!(
            m.factor(),
            Err(CircuitError::SingularSystem { .. })
        ));
    }
}
