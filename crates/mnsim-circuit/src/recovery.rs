//! Fault-tolerant DC solving: a typed recovery ladder around
//! [`solve_dc`].
//!
//! Defective crossbars produce brutally conditioned nodal systems: a broken
//! line modeled as a 1 TΩ near-open next to ohm-scale wire segments spreads
//! the conductance spectrum over twelve decades, which can stall the
//! conjugate-gradient path or break the LU pivoting that a healthy array
//! never stresses. [`solve_robust`] wraps the plain solver in an escalation
//! ladder so fault-injection campaigns *never* panic and *never* return
//! silent garbage:
//!
//! 1. the caller's configured solve (usually `Method::Auto`),
//! 2. conjugate gradients with a relaxed tolerance (a slightly loose answer
//!    beats none — degradation statistics don't need 1e-10 residuals),
//! 3. a dense LU over the full system (exact, `O(n³)` — the last resort).
//!
//! Every accepted solution is screened for NaN/∞ and its Kirchhoff
//! current-law residual is measured, so the caller receives a
//! [`RecoveryReport`] stating *how* the answer was obtained and how much to
//! trust it.

use mnsim_obs as obs;
use mnsim_obs::trace;

use crate::cg::{CgOptions, IterationCap};
use crate::error::CircuitError;
use crate::mna::{Circuit, DcSolution, Element};
use crate::solve::{solve_dc, Method, SolveOptions};

static ROBUST_SOLVES: obs::Counter = obs::Counter::new("circuit.recovery.solves");
static ROBUST_FALLBACKS: obs::Counter = obs::Counter::new("circuit.recovery.fallbacks");
static ROBUST_EXHAUSTED: obs::Counter = obs::Counter::new("circuit.recovery.exhausted");
static ROBUST_SPAN: obs::Span = obs::Span::new("circuit.recovery.solve");
static KCL_RESIDUAL: obs::Histogram = obs::Histogram::new("circuit.recovery.kcl_residual");

static EARLY_ESCALATIONS: obs::Counter = obs::Counter::new("solver.early_escalations");

static ATTEMPT_BASE: obs::Counter = obs::Counter::new("circuit.recovery.attempts.base");
static ATTEMPT_RELAXED: obs::Counter = obs::Counter::new("circuit.recovery.attempts.relaxed_cg");
static ATTEMPT_SPARSE: obs::Counter = obs::Counter::new("circuit.recovery.attempts.sparse_lu");
static ATTEMPT_DENSE: obs::Counter = obs::Counter::new("circuit.recovery.attempts.dense_lu");
static ACCEPT_BASE: obs::Counter = obs::Counter::new("circuit.recovery.accepted.base");
static ACCEPT_RELAXED: obs::Counter = obs::Counter::new("circuit.recovery.accepted.relaxed_cg");
static ACCEPT_SPARSE: obs::Counter = obs::Counter::new("circuit.recovery.accepted.sparse_lu");
static ACCEPT_DENSE: obs::Counter = obs::Counter::new("circuit.recovery.accepted.dense_lu");
/// Per-rung dwell time: how long each attempt (successful or not) spent
/// on its rung before accepting or escalating.
static DWELL_BASE: obs::Span = obs::Span::new("circuit.recovery.dwell.base");
static DWELL_RELAXED: obs::Span = obs::Span::new("circuit.recovery.dwell.relaxed_cg");
static DWELL_SPARSE: obs::Span = obs::Span::new("circuit.recovery.dwell.sparse_lu");
static DWELL_DENSE: obs::Span = obs::Span::new("circuit.recovery.dwell.dense_lu");

impl RecoveryStage {
    /// Static label of the rung's trace instant.
    fn trace_name(self) -> &'static str {
        match self {
            RecoveryStage::Base => "recovery.attempt.base",
            RecoveryStage::RelaxedCg => "recovery.attempt.relaxed_cg",
            RecoveryStage::SparseLu => "recovery.attempt.sparse_lu",
            RecoveryStage::DenseLu => "recovery.attempt.dense_lu",
        }
    }

    fn attempt_counter(self) -> &'static obs::Counter {
        match self {
            RecoveryStage::Base => &ATTEMPT_BASE,
            RecoveryStage::RelaxedCg => &ATTEMPT_RELAXED,
            RecoveryStage::SparseLu => &ATTEMPT_SPARSE,
            RecoveryStage::DenseLu => &ATTEMPT_DENSE,
        }
    }

    fn accept_counter(self) -> &'static obs::Counter {
        match self {
            RecoveryStage::Base => &ACCEPT_BASE,
            RecoveryStage::RelaxedCg => &ACCEPT_RELAXED,
            RecoveryStage::SparseLu => &ACCEPT_SPARSE,
            RecoveryStage::DenseLu => &ACCEPT_DENSE,
        }
    }

    fn dwell_span(self) -> &'static obs::Span {
        match self {
            RecoveryStage::Base => &DWELL_BASE,
            RecoveryStage::RelaxedCg => &DWELL_RELAXED,
            RecoveryStage::SparseLu => &DWELL_SPARSE,
            RecoveryStage::DenseLu => &DWELL_DENSE,
        }
    }
}

/// Options for [`solve_robust`].
#[derive(Debug, Clone, PartialEq)]
pub struct RobustOptions {
    /// Options for the first (base) attempt.
    pub base: SolveOptions,
    /// Relative CG tolerance of the relaxed second rung.
    pub relaxed_tolerance: f64,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            base: SolveOptions::default(),
            relaxed_tolerance: 1e-6,
        }
    }
}

/// One rung of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryStage {
    /// The caller's configured solve.
    Base,
    /// Conjugate gradients with relaxed tolerance and a raised iteration cap.
    RelaxedCg,
    /// Sparse direct LU ([`crate::klu`]) — exact like the dense rung but
    /// `O(fill)` instead of `O(n³)`, so it rescues ill-conditioned systems
    /// that stall CG without paying the dense price.
    SparseLu,
    /// Dense LU over the full system.
    DenseLu,
}

impl std::fmt::Display for RecoveryStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryStage::Base => write!(f, "base"),
            RecoveryStage::RelaxedCg => write!(f, "relaxed-cg"),
            RecoveryStage::SparseLu => write!(f, "sparse-lu"),
            RecoveryStage::DenseLu => write!(f, "dense-lu"),
        }
    }
}

/// The outcome of one rung.
#[derive(Debug, Clone, PartialEq)]
pub struct Attempt {
    /// Which rung ran.
    pub stage: RecoveryStage,
    /// `None` if the rung produced an accepted solution, otherwise why not.
    pub error: Option<CircuitError>,
}

/// A solver health guard that can cut a rung short before its iteration
/// budget is exhausted (see [`CgOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveGuard {
    /// The residual or an internal quadratic form became NaN/Inf
    /// ([`CircuitError::LinearNonFinite`]).
    NonFinite,
    /// No new best residual over the stagnation window
    /// ([`CircuitError::LinearStagnated`]).
    Stagnated,
    /// Direct factorization hit a zero or vanishing pivot
    /// ([`CircuitError::SingularSystem`]) — the system is singular under
    /// that rung's elimination, so it escalates immediately rather than
    /// returning garbage.
    SingularPivot,
}

impl std::fmt::Display for SolveGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveGuard::NonFinite => write!(f, "non-finite"),
            SolveGuard::Stagnated => write!(f, "stagnated"),
            SolveGuard::SingularPivot => write!(f, "singular-pivot"),
        }
    }
}

/// Record of a rung that failed fast on a health guard rather than burning
/// its full iteration budget, handing the ladder to the next rung early.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EarlyEscalation {
    /// The rung that was cut short.
    pub stage: RecoveryStage,
    /// Which guard fired.
    pub guard: SolveGuard,
}

/// How a robust solve obtained its answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Every rung tried, in order; the last entry has `error: None`.
    pub attempts: Vec<Attempt>,
    /// The rung that produced the accepted solution.
    pub stage: RecoveryStage,
    /// Largest Kirchhoff current-law violation of the accepted solution over
    /// all source-free nodes, in amperes.
    pub kcl_residual: f64,
    /// Rungs that failed fast on a solver health guard (non-finite residual
    /// or stagnation) instead of exhausting their iteration budget. Empty on
    /// a clean solve; entries are in ladder order.
    pub early_escalations: Vec<EarlyEscalation>,
}

impl RecoveryReport {
    /// `true` if the base solve failed and a fallback rung produced the
    /// answer.
    pub fn fallback_fired(&self) -> bool {
        self.stage != RecoveryStage::Base
    }

    /// Number of failed attempts before the accepted one.
    pub fn failed_attempts(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }
}

/// Solves the DC operating point, escalating through the recovery ladder on
/// solver failure or non-finite output.
///
/// # Errors
///
/// Returns the *last* rung's error only if every rung failed — a genuinely
/// unsolvable system (e.g. a node with no DC path to ground even through
/// near-open resistors).
pub fn solve_robust(
    circuit: &Circuit,
    options: &RobustOptions,
) -> Result<(DcSolution, RecoveryReport), CircuitError> {
    let _span = ROBUST_SPAN.enter();
    let _trace_span = trace::span("recovery.solve", trace::Level::Stage);
    ROBUST_SOLVES.inc();
    let relaxed = SolveOptions {
        method: Method::Cg,
        cg: CgOptions {
            tolerance: options.relaxed_tolerance,
            // The relaxed rung keeps the 10·n default cap; with the loose
            // tolerance that budget is generous, and the health guards cut
            // the rung short if the system is genuinely stuck.
            max_iterations: IterationCap::Auto,
            ..options.base.cg.clone()
        },
        ..options.base.clone()
    };
    let sparse = SolveOptions {
        method: Method::SparseLu,
        ..options.base.clone()
    };
    let dense = SolveOptions {
        method: Method::DenseLu,
        ..options.base.clone()
    };
    let ladder = [
        (RecoveryStage::Base, options.base.clone()),
        (RecoveryStage::RelaxedCg, relaxed),
        (RecoveryStage::SparseLu, sparse),
        (RecoveryStage::DenseLu, dense),
    ];

    let mut attempts = Vec::new();
    let mut early_escalations = Vec::new();
    let mut last_error = None;
    for (stage, solve_options) in ladder {
        stage.attempt_counter().inc();
        trace::instant(stage.trace_name(), trace::Level::Stage, 1.0);
        let _dwell = stage.dwell_span().enter();
        match attempt(circuit, &solve_options, stage) {
            Ok(solution) => {
                stage.accept_counter().inc();
                if stage != RecoveryStage::Base {
                    ROBUST_FALLBACKS.inc();
                }
                attempts.push(Attempt { stage, error: None });
                let kcl_residual = kcl_residual(circuit, &solution);
                KCL_RESIDUAL.record(kcl_residual);
                return Ok((
                    solution,
                    RecoveryReport {
                        attempts,
                        stage,
                        kcl_residual,
                        early_escalations,
                    },
                ));
            }
            Err(error) => {
                let guard = match &error {
                    CircuitError::LinearNonFinite { .. } => Some(SolveGuard::NonFinite),
                    CircuitError::LinearStagnated { .. } => Some(SolveGuard::Stagnated),
                    CircuitError::SingularSystem { .. } => Some(SolveGuard::SingularPivot),
                    _ => None,
                };
                if let Some(guard) = guard {
                    EARLY_ESCALATIONS.inc();
                    trace::instant("recovery.early_escalation", trace::Level::Stage, 1.0);
                    if obs::live::enabled() {
                        obs::live::guard_tripped(&stage.to_string(), &guard.to_string());
                    }
                    early_escalations.push(EarlyEscalation { stage, guard });
                }
                attempts.push(Attempt {
                    stage,
                    error: Some(error.clone()),
                });
                last_error = Some(error);
            }
        }
    }
    // The ladder always has at least one rung, so an error was recorded.
    ROBUST_EXHAUSTED.inc();
    Err(last_error.unwrap_or(CircuitError::InvalidElement {
        reason: "recovery ladder ran no attempts".into(),
    }))
}

/// One rung: solve, then screen the output for NaN/∞.
fn attempt(
    circuit: &Circuit,
    options: &SolveOptions,
    stage: RecoveryStage,
) -> Result<DcSolution, CircuitError> {
    let solution = solve_dc(circuit, options)?;
    let finite = solution.voltages().iter().all(|v| v.is_finite())
        && (0..circuit.element_count())
            .all(|idx| solution.element_current(idx).amperes().is_finite());
    if !finite {
        return Err(CircuitError::NonFiniteSolution {
            stage: match stage {
                RecoveryStage::Base => "base",
                RecoveryStage::RelaxedCg => "relaxed-cg",
                RecoveryStage::SparseLu => "sparse-lu",
                RecoveryStage::DenseLu => "dense-lu",
            },
        });
    }
    Ok(solution)
}

/// Largest Kirchhoff current-law violation over all nodes that are neither
/// ground nor a voltage-source terminal, in amperes.
///
/// Source terminals are excluded because their branch currents are *derived*
/// by KCL when the solution is assembled, making their balance trivial.
pub fn kcl_residual(circuit: &Circuit, solution: &DcSolution) -> f64 {
    let n = circuit.node_count();
    let mut net = vec![0.0f64; n];
    let mut skip = vec![false; n];
    skip[Circuit::GROUND] = true;

    for (idx, element) in circuit.elements().iter().enumerate() {
        let current = solution.element_current(idx).amperes();
        match element {
            Element::Resistor { n1, n2, .. }
            | Element::Memristor { n1, n2, .. }
            | Element::Capacitor { n1, n2, .. } => {
                net[*n1] += current;
                net[*n2] -= current;
            }
            Element::CurrentSource { from, to, .. } => {
                net[*from] += current;
                net[*to] -= current;
            }
            Element::VoltageSource { npos, nneg, .. } => {
                skip[*npos] = true;
                skip[*nneg] = true;
            }
        }
    }

    net.iter()
        .zip(&skip)
        .filter(|&(_, &skipped)| !skipped)
        .map(|(&violation, _)| violation.abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarSpec;
    use mnsim_tech::fault::FaultMap;
    use mnsim_tech::units::{Resistance, Voltage};

    fn healthy_spec(rows: usize, cols: usize) -> CrossbarSpec {
        CrossbarSpec::uniform(
            rows,
            cols,
            Resistance::from_kilo_ohms(10.0),
            Resistance::from_ohms(2.0),
            Resistance::from_ohms(500.0),
            Voltage::from_volts(1.0),
        )
    }

    #[test]
    fn healthy_crossbar_solves_on_base_rung() {
        let xbar = healthy_spec(4, 4).build().unwrap();
        let (solution, report) = solve_robust(xbar.circuit(), &RobustOptions::default()).unwrap();
        assert_eq!(report.stage, RecoveryStage::Base);
        assert!(!report.fallback_fired());
        assert_eq!(report.failed_attempts(), 0);
        assert!(report.kcl_residual < 1e-9, "residual {}", report.kcl_residual);
        assert!(report.early_escalations.is_empty());
        assert!(xbar.output_voltages(&solution).iter().all(|v| v.volts() > 0.0));
    }

    #[test]
    fn stagnation_guard_records_early_escalation() {
        // An unreachable tolerance makes the base CG rung stagnate; the
        // guard hands the ladder to the relaxed rung early, and the report
        // must say which guard fired on which rung.
        let xbar = healthy_spec(6, 6).build().unwrap();
        let mut options = RobustOptions::default();
        options.base.method = Method::Cg;
        options.base.cg = CgOptions {
            tolerance: 1e-30,
            stagnation_window: Some(3),
            ..CgOptions::default()
        };
        options.relaxed_tolerance = 1e-6;
        let (_, report) = solve_robust(xbar.circuit(), &options).unwrap();
        assert!(report.fallback_fired());
        assert!(matches!(
            report.attempts[0].error,
            Some(CircuitError::LinearStagnated { window: 3, .. })
        ));
        assert_eq!(
            report.early_escalations,
            vec![EarlyEscalation {
                stage: RecoveryStage::Base,
                guard: SolveGuard::Stagnated,
            }]
        );
    }

    #[test]
    fn guard_display_names() {
        assert_eq!(SolveGuard::NonFinite.to_string(), "non-finite");
        assert_eq!(SolveGuard::Stagnated.to_string(), "stagnated");
    }

    #[test]
    fn broken_bitline_crossbar_still_solves() {
        let mut map = FaultMap::empty(8, 8);
        map.broken_bitlines.insert(3, 4);
        let spec = healthy_spec(8, 8).with_faults(
            map,
            Resistance::from_kilo_ohms(500.0),
            Resistance::from_ohms(500.0),
        );
        let xbar = spec.build().unwrap();
        let (solution, report) = solve_robust(xbar.circuit(), &RobustOptions::default()).unwrap();
        assert!(report.kcl_residual < 1e-6, "residual {}", report.kcl_residual);
        let outputs = xbar.output_voltages(&solution);
        // The broken column reads lower than its healthy neighbours.
        assert!(outputs[3].volts() < outputs[2].volts());
        assert!(outputs.iter().all(|v| v.volts().is_finite()));
    }

    #[test]
    fn ladder_escalates_when_base_method_fails() {
        // A starvation budget makes the base CG fail; the ladder must fall
        // through to a rung that succeeds and say so in the report.
        let xbar = healthy_spec(6, 6).build().unwrap();
        let mut options = RobustOptions::default();
        options.base.method = Method::Cg;
        options.base.cg = CgOptions {
            tolerance: 1e-14,
            max_iterations: IterationCap::Limit(1),
            ..CgOptions::default()
        };
        // Keep the relaxed rung honest but reachable.
        options.relaxed_tolerance = 1e-6;
        let (solution, report) = solve_robust(xbar.circuit(), &options).unwrap();
        assert!(report.fallback_fired());
        assert!(report.failed_attempts() >= 1);
        assert!(matches!(
            report.attempts[0].error,
            Some(CircuitError::LinearNoConvergence { .. })
        ));
        assert!(xbar
            .output_voltages(&solution)
            .iter()
            .all(|v| v.volts().is_finite()));
    }

    #[test]
    fn all_rungs_fail_returns_last_error() {
        // A floating source defeats the reduced paths, and an (artificially)
        // impossible Newton budget defeats every rung of the ladder.
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_resistor(b, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_voltage_source(a, b, Voltage::from_volts(2.0)).unwrap();
        c.add_memristor(
            a,
            Circuit::GROUND,
            Resistance::from_kilo_ohms(1.0),
            mnsim_tech::memristor::IvModel::Sinh { alpha: 2.0 },
        )
        .unwrap();
        let mut options = RobustOptions::default();
        options.base.newton_max_iterations = 0;
        let err = solve_robust(&c, &options).unwrap_err();
        assert!(matches!(err, CircuitError::NewtonNoConvergence { .. }));
    }

    #[test]
    fn kcl_residual_zero_on_exact_solution() {
        let mut c = Circuit::new();
        let top = c.add_node();
        let mid = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(10.0))
            .unwrap();
        c.add_resistor(top, mid, Resistance::from_kilo_ohms(1.0))
            .unwrap();
        c.add_resistor(mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))
            .unwrap();
        let solution = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert!(kcl_residual(&c, &solution) < 1e-12);
    }

    #[test]
    fn stage_display_names() {
        assert_eq!(RecoveryStage::Base.to_string(), "base");
        assert_eq!(RecoveryStage::RelaxedCg.to_string(), "relaxed-cg");
        assert_eq!(RecoveryStage::SparseLu.to_string(), "sparse-lu");
        assert_eq!(RecoveryStage::DenseLu.to_string(), "dense-lu");
    }

    #[test]
    fn guard_display_includes_singular_pivot() {
        assert_eq!(SolveGuard::SingularPivot.to_string(), "singular-pivot");
    }
}
