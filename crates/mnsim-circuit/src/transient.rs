//! Transient (time-domain) analysis by backward Euler.
//!
//! This is the circuit-level counterpart of the SPICE transient runs the
//! paper uses to validate its latency models (Table II). Capacitors are
//! replaced, at every time step, by their backward-Euler companion model
//!
//! ```text
//! I_C(t_{k+1}) = (C/Δt) · (v(t_{k+1}) − v(t_k))
//!             →  conductance  g = C/Δt
//!                current src  i_eq = −(C/Δt) · (v1(t_k) − v2(t_k))
//! ```
//!
//! and the resulting resistive network is solved with the DC machinery —
//! including the per-step Newton loop when non-linear memristors are
//! present. Backward Euler is unconditionally stable (L-stable), the right
//! choice for the stiff RC meshes of crossbars.

use crate::error::CircuitError;
use crate::mna::{non_positive, Circuit, Element, NodeId};
use crate::solve::{self, Linearized, SolveOptions};
use mnsim_tech::units::Time;

/// Options for [`solve_transient`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientOptions {
    /// Total simulated time.
    pub t_stop: Time,
    /// Fixed time step.
    pub dt: Time,
    /// Per-step linear/Newton options.
    pub dc: SolveOptions,
    /// Newton iterations per time step for non-linear circuits.
    pub newton_steps_per_dt: usize,
}

impl TransientOptions {
    /// A step-response setup: simulate for `t_stop` with `steps` equal
    /// steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or `t_stop` is not positive.
    pub fn step_response(t_stop: Time, steps: usize) -> Self {
        assert!(steps > 0, "need at least one time step");
        assert!(t_stop.seconds() > 0.0, "simulation time must be positive");
        TransientOptions {
            t_stop,
            dt: t_stop / steps as f64,
            dc: SolveOptions::default(),
            newton_steps_per_dt: 4,
        }
    }
}

/// The sampled node-voltage waveforms of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[step][node]`.
    voltages: Vec<Vec<f64>>,
}

impl TransientResult {
    /// The sample instants in seconds (the initial `t = 0` state is
    /// included as the first entry).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if the run produced no samples (never true for valid runs).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The waveform of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn waveform(&self, node: NodeId) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node]).collect()
    }

    /// Node voltages at the final sample (empty if the run stored none;
    /// valid runs always store at least the initial sample).
    pub fn final_voltages(&self) -> &[f64] {
        self.voltages.last().map_or(&[], Vec::as_slice)
    }

    /// The 10-90-style settle time of `node`: the first instant after
    /// which the waveform stays within `tolerance` (relative) of its final
    /// value. Returns `None` if the waveform never settles or the final
    /// value is zero.
    pub fn settle_time(&self, node: NodeId, tolerance: f64) -> Option<Time> {
        let final_value = *self.voltages.last()?.get(node)?;
        if final_value == 0.0 {
            return None;
        }
        let mut settled_at: Option<usize> = None;
        for (step, sample) in self.voltages.iter().enumerate() {
            let within = ((sample[node] - final_value) / final_value).abs() <= tolerance;
            match (within, settled_at) {
                (true, None) => settled_at = Some(step),
                (false, Some(_)) => settled_at = None,
                _ => {}
            }
        }
        settled_at.map(|step| Time::from_seconds(self.times[step]))
    }
}

/// Runs a backward-Euler transient from a fully discharged initial state
/// (all node voltages zero; sources step to their value at `t = 0⁺`).
///
/// # Errors
///
/// Propagates per-step solver failures and rejects non-positive steps.
pub fn solve_transient(
    circuit: &Circuit,
    options: &TransientOptions,
) -> Result<TransientResult, CircuitError> {
    if non_positive(options.dt.seconds()) || options.t_stop.seconds() < options.dt.seconds() {
        return Err(CircuitError::InvalidElement {
            reason: format!(
                "invalid transient window: dt = {}, t_stop = {}",
                options.dt, options.t_stop
            ),
        });
    }
    let steps = (options.t_stop.seconds() / options.dt.seconds()).round() as usize;
    let dt = options.dt.seconds();
    let n = circuit.node_count();

    let mut times = Vec::with_capacity(steps + 1);
    let mut voltages = Vec::with_capacity(steps + 1);
    times.push(0.0);
    voltages.push(vec![0.0; n]);

    let nonlinear = circuit.is_nonlinear();
    let mut prev = vec![0.0; n];

    for step in 1..=steps {
        // Newton loop (a single pass suffices for linear circuits).
        let mut iterate = prev.clone();
        let passes = if nonlinear {
            options.newton_steps_per_dt.max(1)
        } else {
            1
        };
        for _ in 0..passes {
            let lin = linearize_with_companions(circuit, &iterate, &prev, dt, nonlinear);
            iterate = solve::solve_linear(circuit, &lin, &options.dc)?;
        }
        prev = iterate;
        times.push(step as f64 * dt);
        voltages.push(prev.clone());
    }

    Ok(TransientResult { times, voltages })
}

/// DC linearization plus backward-Euler capacitor companions.
fn linearize_with_companions(
    circuit: &Circuit,
    operating_point: &[f64],
    previous_step: &[f64],
    dt: f64,
    nonlinear: bool,
) -> Vec<Option<Linearized>> {
    let base = if nonlinear {
        solve::linearize(circuit, Some(operating_point))
    } else {
        solve::linearize(circuit, None)
    };
    circuit
        .elements()
        .iter()
        .zip(base)
        .map(|(element, lin)| match element {
            Element::Capacitor {
                n1,
                n2,
                capacitance,
            } => {
                let g = capacitance.farads() / dt;
                let v_prev = previous_step[*n1] - previous_step[*n2];
                Some(Linearized {
                    g,
                    ieq: -g * v_prev,
                })
            }
            _ => lin,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::memristor::IvModel;
    use mnsim_tech::units::{Capacitance, Resistance, Voltage};

    /// 1 kΩ / 1 nF RC low-pass driven by a 1 V step: τ = 1 µs.
    fn rc_circuit() -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let drive = c.add_node();
        let out = c.add_node();
        c.add_voltage_source(drive, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_resistor(drive, out, Resistance::from_kilo_ohms(1.0))
            .unwrap();
        c.add_capacitor(out, Circuit::GROUND, Capacitance::from_farads(1e-9))
            .unwrap();
        (c, out)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (circuit, out) = rc_circuit();
        let options =
            TransientOptions::step_response(Time::from_microseconds(5.0), 2000);
        let result = solve_transient(&circuit, &options).unwrap();
        // v(t) = 1 − e^{−t/τ}, τ = 1 µs.
        for (i, &t) in result.times().iter().enumerate() {
            let analytic = 1.0 - (-t / 1e-6).exp();
            let simulated = result.voltages[i][out];
            assert!(
                (simulated - analytic).abs() < 5e-3,
                "t = {t:.3e}: {simulated} vs {analytic}"
            );
        }
    }

    #[test]
    fn settle_time_near_four_tau() {
        // Settling to 2 % happens at t = −τ·ln(0.02) ≈ 3.9 τ.
        let (circuit, out) = rc_circuit();
        let options =
            TransientOptions::step_response(Time::from_microseconds(10.0), 4000);
        let result = solve_transient(&circuit, &options).unwrap();
        let settle = result.settle_time(out, 0.02).unwrap().seconds();
        assert!(
            (settle - 3.912e-6).abs() < 0.2e-6,
            "settle time {settle:.3e}"
        );
    }

    #[test]
    fn final_value_matches_dc_solution() {
        let (circuit, out) = rc_circuit();
        let options = TransientOptions::step_response(Time::from_microseconds(20.0), 2000);
        let result = solve_transient(&circuit, &options).unwrap();
        let dc = crate::solve::solve_dc(&circuit, &SolveOptions::default()).unwrap();
        assert!(
            (result.final_voltages()[out] - dc.voltage(out).volts()).abs() < 1e-6,
            "transient must converge to the DC operating point"
        );
    }

    #[test]
    fn nonlinear_memristor_transient_converges_to_dc() {
        let mut c = Circuit::new();
        let drive = c.add_node();
        let out = c.add_node();
        c.add_voltage_source(drive, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_resistor(drive, out, Resistance::from_kilo_ohms(5.0))
            .unwrap();
        c.add_memristor(
            out,
            Circuit::GROUND,
            Resistance::from_kilo_ohms(10.0),
            IvModel::Sinh { alpha: 3.0 },
        )
        .unwrap();
        c.add_capacitor(out, Circuit::GROUND, Capacitance::from_picofarads(100.0))
            .unwrap();
        let options = TransientOptions::step_response(Time::from_microseconds(10.0), 2000);
        let result = solve_transient(&c, &options).unwrap();
        let dc = crate::solve::solve_dc(&c, &SolveOptions::default()).unwrap();
        assert!(
            (result.final_voltages()[out] - dc.voltage(out).volts()).abs() < 1e-4,
            "{} vs {}",
            result.final_voltages()[out],
            dc.voltage(out).volts()
        );
        // The waveform must be monotone rising (single pole, step drive).
        let waveform = result.waveform(out);
        for pair in waveform.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9);
        }
    }

    #[test]
    fn capacitor_validation() {
        let mut c = Circuit::new();
        let a = c.add_node();
        assert!(c
            .add_capacitor(a, a, Capacitance::from_picofarads(1.0))
            .is_err());
        assert!(c
            .add_capacitor(a, Circuit::GROUND, Capacitance::from_farads(0.0))
            .is_err());
        assert!(c
            .add_capacitor(a, Circuit::GROUND, Capacitance::from_picofarads(1.0))
            .is_ok());
        assert!(c.has_dynamics());
    }

    #[test]
    fn invalid_windows_rejected() {
        let (circuit, _) = rc_circuit();
        let options = TransientOptions {
            t_stop: Time::from_microseconds(1.0),
            dt: Time::from_microseconds(2.0),
            dc: SolveOptions::default(),
            newton_steps_per_dt: 2,
        };
        assert!(solve_transient(&circuit, &options).is_err());
    }

    #[test]
    fn settle_time_none_for_grounded_node() {
        let (circuit, _) = rc_circuit();
        let options = TransientOptions::step_response(Time::from_microseconds(1.0), 100);
        let result = solve_transient(&circuit, &options).unwrap();
        assert!(result.settle_time(Circuit::GROUND, 0.01).is_none());
    }
}
