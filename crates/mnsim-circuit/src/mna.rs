//! Circuit representation for (modified) nodal analysis.
//!
//! A [`Circuit`] is a flat list of two-terminal elements between integer
//! nodes. Node `0` ([`Circuit::GROUND`]) is the reference. Supported
//! elements cover everything a memristor crossbar needs: resistors, ideal
//! voltage sources, ideal current sources, and memristor cells carrying a
//! programmed state resistance plus a (possibly non-linear) I-V model.
//!
//! Solving is performed by [`crate::solve::solve_dc`]; this module owns the
//! topology and the solution container.

use mnsim_tech::memristor::IvModel;
use mnsim_tech::units::{Capacitance, Current, Power, Resistance, Voltage};

use crate::error::CircuitError;

/// `true` when `x` is NaN or not strictly positive (rejects both).
pub(crate) fn non_positive(x: f64) -> bool {
    x.is_nan() || x <= 0.0
}

/// Identifier of a circuit node. Node `0` is ground.
pub type NodeId = usize;

/// A two-terminal circuit element.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Element {
    /// Ohmic resistor between `n1` and `n2`.
    Resistor {
        /// First terminal.
        n1: NodeId,
        /// Second terminal.
        n2: NodeId,
        /// Resistance value (must be positive).
        resistance: Resistance,
    },
    /// Ideal voltage source driving `npos` relative to `nneg`.
    VoltageSource {
        /// Positive terminal.
        npos: NodeId,
        /// Negative terminal.
        nneg: NodeId,
        /// Source voltage.
        voltage: Voltage,
    },
    /// Ideal current source pushing current from `from` into `to`.
    CurrentSource {
        /// Terminal the current leaves.
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Source current.
        current: Current,
    },
    /// A memristor cell with programmed state resistance and I-V model.
    Memristor {
        /// First terminal (word line side).
        n1: NodeId,
        /// Second terminal (bit line side).
        n2: NodeId,
        /// Programmed (low-field) state resistance.
        state: Resistance,
        /// Conduction model.
        iv: IvModel,
    },
    /// A linear capacitor (open circuit in DC; integrated by
    /// [`crate::transient::solve_transient`]).
    Capacitor {
        /// First terminal.
        n1: NodeId,
        /// Second terminal.
        n2: NodeId,
        /// Capacitance value (must be positive).
        capacitance: Capacitance,
    },
}

/// A DC circuit: a set of nodes and two-terminal elements.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_count: usize,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground (reference) node.
    pub const GROUND: NodeId = 0;

    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_count: 1,
            elements: Vec::new(),
        }
    }

    /// Allocates a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_count;
        self.node_count += 1;
        id
    }

    /// Allocates `n` fresh nodes, returning their ids in order.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The elements of the circuit, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// `true` if any element has a non-linear I-V characteristic.
    pub fn is_nonlinear(&self) -> bool {
        self.elements.iter().any(|e| {
            matches!(
                e,
                Element::Memristor {
                    iv: IvModel::Sinh { .. },
                    ..
                }
            )
        })
    }

    fn check_node(&self, node: NodeId) -> Result<(), CircuitError> {
        if node >= self.node_count {
            Err(CircuitError::UnknownNode { node })
        } else {
            Ok(())
        }
    }

    /// Adds a resistor; returns its element index.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes, self-loops, and non-positive resistances.
    pub fn add_resistor(
        &mut self,
        n1: NodeId,
        n2: NodeId,
        resistance: Resistance,
    ) -> Result<usize, CircuitError> {
        self.check_node(n1)?;
        self.check_node(n2)?;
        if n1 == n2 {
            return Err(CircuitError::InvalidElement {
                reason: format!("resistor shorted onto node {n1}"),
            });
        }
        if non_positive(resistance.ohms()) {
            return Err(CircuitError::InvalidElement {
                reason: format!("resistance must be positive, got {resistance}"),
            });
        }
        self.elements.push(Element::Resistor {
            n1,
            n2,
            resistance,
        });
        Ok(self.elements.len() - 1)
    }

    /// Adds an ideal voltage source; returns its element index.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and self-loops.
    pub fn add_voltage_source(
        &mut self,
        npos: NodeId,
        nneg: NodeId,
        voltage: Voltage,
    ) -> Result<usize, CircuitError> {
        self.check_node(npos)?;
        self.check_node(nneg)?;
        if npos == nneg {
            return Err(CircuitError::InvalidElement {
                reason: "voltage source shorted onto one node".into(),
            });
        }
        self.elements.push(Element::VoltageSource {
            npos,
            nneg,
            voltage,
        });
        Ok(self.elements.len() - 1)
    }

    /// Adds an ideal current source; returns its element index.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn add_current_source(
        &mut self,
        from: NodeId,
        to: NodeId,
        current: Current,
    ) -> Result<usize, CircuitError> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.elements.push(Element::CurrentSource { from, to, current });
        Ok(self.elements.len() - 1)
    }

    /// Adds a memristor cell; returns its element index.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes, self-loops, and non-positive state resistances.
    pub fn add_memristor(
        &mut self,
        n1: NodeId,
        n2: NodeId,
        state: Resistance,
        iv: IvModel,
    ) -> Result<usize, CircuitError> {
        self.check_node(n1)?;
        self.check_node(n2)?;
        if n1 == n2 {
            return Err(CircuitError::InvalidElement {
                reason: format!("memristor shorted onto node {n1}"),
            });
        }
        if non_positive(state.ohms()) {
            return Err(CircuitError::InvalidElement {
                reason: format!("memristor state resistance must be positive, got {state}"),
            });
        }
        self.elements.push(Element::Memristor { n1, n2, state, iv });
        Ok(self.elements.len() - 1)
    }

    /// Adds a capacitor; returns its element index.
    ///
    /// Capacitors are open circuits for [`crate::solve::solve_dc`] and are
    /// integrated by [`crate::transient::solve_transient`].
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes, self-loops, and non-positive capacitances.
    pub fn add_capacitor(
        &mut self,
        n1: NodeId,
        n2: NodeId,
        capacitance: Capacitance,
    ) -> Result<usize, CircuitError> {
        self.check_node(n1)?;
        self.check_node(n2)?;
        if n1 == n2 {
            return Err(CircuitError::InvalidElement {
                reason: format!("capacitor shorted onto node {n1}"),
            });
        }
        if non_positive(capacitance.farads()) {
            return Err(CircuitError::InvalidElement {
                reason: format!("capacitance must be positive, got {capacitance}"),
            });
        }
        self.elements.push(Element::Capacitor {
            n1,
            n2,
            capacitance,
        });
        Ok(self.elements.len() - 1)
    }

    /// `true` if the circuit contains at least one capacitor (i.e. has
    /// transient dynamics).
    pub fn has_dynamics(&self) -> bool {
        self.elements
            .iter()
            .any(|e| matches!(e, Element::Capacitor { .. }))
    }

    /// Number of ideal voltage sources in the circuit.
    pub fn source_count(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::VoltageSource { .. }))
            .count()
    }

    /// Returns a copy of the circuit with every voltage source re-driven to
    /// the given values, in element insertion order.
    ///
    /// The conductance structure is untouched, which is exactly the
    /// invariant [`crate::batch::PreparedSystem`] relies on: a prepared
    /// system built from `self` stays valid for any circuit produced by this
    /// method.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DimensionMismatch`] when `voltages` does not
    /// have one entry per voltage source.
    pub fn with_source_voltages(&self, voltages: &[Voltage]) -> Result<Circuit, CircuitError> {
        if voltages.len() != self.source_count() {
            return Err(CircuitError::DimensionMismatch {
                expected: self.source_count(),
                actual: voltages.len(),
                what: "voltage-source value count",
            });
        }
        let mut patched = self.clone();
        let mut k = 0usize;
        for element in &mut patched.elements {
            if let Element::VoltageSource { voltage, .. } = element {
                *voltage = voltages[k];
                k += 1;
            }
        }
        Ok(patched)
    }
}

/// The result of a DC operating-point analysis.
#[derive(Debug, Clone)]
pub struct DcSolution {
    node_voltages: Vec<f64>,
    /// Branch current of each element, in element order, flowing n1 → n2
    /// (for sources: npos → nneg internally, i.e. the current *delivered*
    /// has opposite sign).
    element_currents: Vec<f64>,
}

impl DcSolution {
    pub(crate) fn new(node_voltages: Vec<f64>, element_currents: Vec<f64>) -> Self {
        DcSolution {
            node_voltages,
            element_currents,
        }
    }

    /// The voltage at `node` relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist in the solved circuit.
    pub fn voltage(&self, node: NodeId) -> Voltage {
        Voltage::from_volts(self.node_voltages[node])
    }

    /// All node voltages (index = node id).
    pub fn voltages(&self) -> &[f64] {
        &self.node_voltages
    }

    /// Branch current through element `index`, measured from its first
    /// terminal to its second.
    ///
    /// # Panics
    ///
    /// Panics if the element index is out of range.
    pub fn element_current(&self, index: usize) -> Current {
        Current::from_amperes(self.element_currents[index])
    }

    /// Total power delivered by all sources (equals total dissipated power
    /// in a resistive circuit).
    pub fn source_power(&self, circuit: &Circuit) -> Power {
        let mut total = 0.0;
        for (idx, element) in circuit.elements().iter().enumerate() {
            match element {
                Element::VoltageSource { voltage, .. } => {
                    // The stamped branch current flows npos → nneg inside
                    // the source; delivered power = V × (−I_branch).
                    total += voltage.volts() * -self.element_currents[idx];
                }
                Element::CurrentSource { from, to, current } => {
                    let v = self.node_voltages[*to] - self.node_voltages[*from];
                    total += v * current.amperes();
                }
                _ => {}
            }
        }
        Power::from_watts(total)
    }

    /// Total power dissipated in resistive elements.
    pub fn dissipated_power(&self, circuit: &Circuit) -> Power {
        let mut total = 0.0;
        for (idx, element) in circuit.elements().iter().enumerate() {
            match element {
                Element::Resistor { n1, n2, .. } | Element::Memristor { n1, n2, .. } => {
                    let v = self.node_voltages[*n1] - self.node_voltages[*n2];
                    total += v * self.element_currents[idx];
                }
                _ => {}
            }
        }
        Power::from_watts(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_allocation() {
        let mut c = Circuit::new();
        assert_eq!(c.node_count(), 1);
        let a = c.add_node();
        let b = c.add_node();
        assert_eq!((a, b), (1, 2));
        let more = c.add_nodes(3);
        assert_eq!(more, vec![3, 4, 5]);
        assert_eq!(c.node_count(), 6);
    }

    #[test]
    fn element_validation() {
        let mut c = Circuit::new();
        let n = c.add_node();
        assert!(c.add_resistor(n, 99, Resistance::from_ohms(1.0)).is_err());
        assert!(c.add_resistor(n, n, Resistance::from_ohms(1.0)).is_err());
        assert!(c
            .add_resistor(n, Circuit::GROUND, Resistance::from_ohms(0.0))
            .is_err());
        assert!(c
            .add_resistor(n, Circuit::GROUND, Resistance::from_ohms(-5.0))
            .is_err());
        assert!(c
            .add_resistor(n, Circuit::GROUND, Resistance::from_ohms(10.0))
            .is_ok());
        assert_eq!(c.element_count(), 1);
    }

    #[test]
    fn voltage_source_validation() {
        let mut c = Circuit::new();
        let n = c.add_node();
        assert!(c
            .add_voltage_source(n, n, Voltage::from_volts(1.0))
            .is_err());
        assert!(c
            .add_voltage_source(n, Circuit::GROUND, Voltage::from_volts(1.0))
            .is_ok());
    }

    #[test]
    fn memristor_validation_and_nonlinearity_flag() {
        let mut c = Circuit::new();
        let n = c.add_node();
        assert!(!c.is_nonlinear());
        c.add_memristor(
            n,
            Circuit::GROUND,
            Resistance::from_kilo_ohms(10.0),
            IvModel::Linear,
        )
        .unwrap();
        assert!(!c.is_nonlinear());
        c.add_memristor(
            n,
            Circuit::GROUND,
            Resistance::from_kilo_ohms(10.0),
            IvModel::Sinh { alpha: 2.0 },
        )
        .unwrap();
        assert!(c.is_nonlinear());
    }

    #[test]
    fn with_source_voltages_repatches_in_order() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_resistor(a, b, Resistance::from_ohms(10.0)).unwrap();
        c.add_voltage_source(b, Circuit::GROUND, Voltage::from_volts(2.0))
            .unwrap();
        assert_eq!(c.source_count(), 2);
        let patched = c
            .with_source_voltages(&[Voltage::from_volts(3.0), Voltage::from_volts(4.0)])
            .unwrap();
        let values: Vec<f64> = patched
            .elements()
            .iter()
            .filter_map(|e| match e {
                Element::VoltageSource { voltage, .. } => Some(voltage.volts()),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![3.0, 4.0]);
        // Wrong arity is rejected.
        assert!(c.with_source_voltages(&[Voltage::from_volts(1.0)]).is_err());
    }

    #[test]
    fn zero_state_memristor_rejected() {
        let mut c = Circuit::new();
        let n = c.add_node();
        assert!(c
            .add_memristor(n, Circuit::GROUND, Resistance::from_ohms(0.0), IvModel::Linear)
            .is_err());
    }
}
