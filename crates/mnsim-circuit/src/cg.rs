//! Jacobi-preconditioned conjugate-gradient solver.
//!
//! The reduced nodal matrix of a resistor network with grounded sources is
//! symmetric positive-definite, which makes conjugate gradients the solver
//! of choice for large crossbars (a 256×256 crossbar has ≈130 000 unknowns
//! but only ≈5 non-zeros per row). Jacobi (diagonal) preconditioning tames
//! the wide conductance spread between ohm-scale wire segments and
//! megaohm-scale memristor cells.

use mnsim_obs as obs;

use crate::error::CircuitError;
use crate::sparse::CsrMatrix;

static CG_SOLVES: obs::Counter = obs::Counter::new("circuit.cg.solves");
static CG_ITERATIONS: obs::Counter = obs::Counter::new("circuit.cg.iterations");
static CG_ITERATIONS_PER_SOLVE: obs::Histogram =
    obs::Histogram::new("circuit.cg.iterations_per_solve");
static CG_FINAL_RESIDUAL: obs::Histogram = obs::Histogram::new("circuit.cg.final_residual");
static CG_NO_CONVERGENCE: obs::Counter = obs::Counter::new("circuit.cg.no_convergence");
static CG_NON_FINITE: obs::Counter = obs::Counter::new("circuit.cg.non_finite");
static CG_STAGNATED: obs::Counter = obs::Counter::new("circuit.cg.stagnated");

/// Hard cap on conjugate-gradient iterations.
///
/// Replaces the historical `max_iterations: 0` magic-zero sentinel:
/// "use the solver default" and "zero iterations" are now distinct,
/// explicit values, so a caller can no longer request the default by
/// accident when they meant a hard stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IterationCap {
    /// The solver default: `10 × n` iterations for an `n`-unknown system.
    Auto,
    /// An explicit cap. `Limit(0)` genuinely means zero iterations: the
    /// solve only succeeds if the start vector already meets the
    /// tolerance.
    Limit(usize),
}

impl IterationCap {
    /// Resolves the cap against the system size `n`.
    pub fn resolve(&self, n: usize) -> usize {
        match self {
            IterationCap::Auto => 10 * n,
            IterationCap::Limit(limit) => *limit,
        }
    }
}

impl From<usize> for IterationCap {
    /// Accepts the deprecated numeric convention: `0` maps to
    /// [`IterationCap::Auto`] (the historical meaning of
    /// `max_iterations: 0`), anything else to [`IterationCap::Limit`].
    /// New code should name the variant it means.
    fn from(value: usize) -> Self {
        if value == 0 {
            IterationCap::Auto
        } else {
            IterationCap::Limit(value)
        }
    }
}

/// Options controlling the conjugate-gradient iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance (‖r‖ / ‖b‖).
    pub tolerance: f64,
    /// Hard iteration cap (default [`IterationCap::Auto`] = `10 × n`).
    /// `usize` values convert via `From` for the deprecated numeric
    /// convention (`0` = auto).
    pub max_iterations: IterationCap,
    /// Stagnation guard: fail fast with
    /// [`CircuitError::LinearStagnated`] when this many consecutive
    /// iterations pass without a new best residual, instead of burning
    /// the remaining iteration budget. `None` disables the guard. The
    /// default window of 1000 sits above the plateau phases real
    /// ill-conditioned crossbar solves go through on their way to
    /// convergence (hundreds of iterations have been observed), so it
    /// only trips on genuinely stuck solves.
    pub stagnation_window: Option<usize>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: IterationCap::Auto,
            stagnation_window: Some(1000),
        }
    }
}

/// Convergence statistics returned alongside the solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Solves `A·x = b` for symmetric positive-definite `A`.
///
/// Returns the solution vector together with convergence statistics.
///
/// # Errors
///
/// * [`CircuitError::DimensionMismatch`] if shapes disagree.
/// * [`CircuitError::LinearNoConvergence`] if the tolerance is not reached
///   within the iteration budget.
/// * [`CircuitError::LinearNonFinite`] as soon as the residual or an
///   internal quadratic form becomes NaN/Inf (detected mid-iteration, not
///   after the budget is exhausted).
/// * [`CircuitError::LinearStagnated`] when
///   [`CgOptions::stagnation_window`] consecutive iterations pass without
///   a new best residual.
/// * [`CircuitError::SingularSystem`] if a zero diagonal entry makes the
///   Jacobi preconditioner undefined.
pub fn solve_cg(a: &CsrMatrix, b: &[f64], options: &CgOptions) -> Result<(Vec<f64>, CgStats), CircuitError> {
    solve_cg_warm(a, b, None, options)
}

/// Solves `A·x = b` like [`solve_cg`], optionally warm-started from `x0`.
///
/// With `x0 = None` the iteration starts from zero and is identical to
/// [`solve_cg`]. With `Some(x0)` the initial residual is `b − A·x0`, so a
/// guess close to the solution (e.g. the previous solve of a correlated
/// batch) converges in far fewer iterations; an already-converged guess
/// returns after zero iterations.
///
/// # Errors
///
/// Same as [`solve_cg`], plus [`CircuitError::DimensionMismatch`] when `x0`
/// has the wrong length.
pub fn solve_cg_warm(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    options: &CgOptions,
) -> Result<(Vec<f64>, CgStats), CircuitError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(CircuitError::DimensionMismatch {
            expected: n,
            actual: a.cols(),
            what: "matrix must be square",
        });
    }
    if b.len() != n {
        return Err(CircuitError::DimensionMismatch {
            expected: n,
            actual: b.len(),
            what: "right-hand side length",
        });
    }
    if n == 0 {
        return Ok((
            Vec::new(),
            CgStats {
                iterations: 0,
                residual: 0.0,
            },
        ));
    }

    let diag = a.diagonal();
    let mut inv_diag = vec![0.0; n];
    for (i, &d) in diag.iter().enumerate() {
        if d <= 0.0 {
            return Err(CircuitError::SingularSystem { at: i });
        }
        inv_diag[i] = 1.0 / d;
    }

    if let Some(x0) = x0 {
        if x0.len() != n {
            return Err(CircuitError::DimensionMismatch {
                expected: n,
                actual: x0.len(),
                what: "warm-start vector length",
            });
        }
    }

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        // x = 0 is the exact solution of an SPD system with b = 0,
        // regardless of the warm-start guess.
        return Ok((
            vec![0.0; n],
            CgStats {
                iterations: 0,
                residual: 0.0,
            },
        ));
    }

    let max_iterations = options.max_iterations.resolve(n);

    let (mut x, mut r) = match x0 {
        None => (vec![0.0; n], b.to_vec()), // r = b - A·0
        Some(x0) => {
            let mut r = vec![0.0; n];
            a.mul_vec_into(x0, &mut r);
            for i in 0..n {
                r[i] = b[i] - r[i];
            }
            (x0.to_vec(), r)
        }
    };
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    let mut residual = norm2(&r) / b_norm;
    if !residual.is_finite() {
        // A NaN/Inf matrix entry, rhs, or warm-start guess poisons the
        // initial residual — fail before doing any work.
        CG_NON_FINITE.inc();
        return Err(CircuitError::LinearNonFinite { iterations: 0 });
    }
    let mut best_residual = residual;
    let mut since_best = 0usize;

    while residual > options.tolerance && iterations < max_iterations {
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if !pap.is_finite() {
            CG_NON_FINITE.inc();
            CG_ITERATIONS.add(iterations as u64);
            return Err(CircuitError::LinearNonFinite { iterations });
        }
        if pap <= 0.0 {
            // Not positive definite along p — report as singularity.
            return Err(CircuitError::SingularSystem { at: iterations });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
        iterations += 1;
        residual = norm2(&r) / b_norm;
        if !residual.is_finite() {
            CG_NON_FINITE.inc();
            CG_ITERATIONS.add(iterations as u64);
            return Err(CircuitError::LinearNonFinite { iterations });
        }
        if residual < best_residual {
            best_residual = residual;
            since_best = 0;
        } else {
            since_best += 1;
            if let Some(window) = options.stagnation_window {
                if since_best >= window && residual > options.tolerance {
                    CG_STAGNATED.inc();
                    CG_ITERATIONS.add(iterations as u64);
                    return Err(CircuitError::LinearStagnated {
                        iterations,
                        residual,
                        window,
                    });
                }
            }
        }
    }

    if residual > options.tolerance {
        CG_NO_CONVERGENCE.inc();
        CG_ITERATIONS.add(iterations as u64);
        return Err(CircuitError::LinearNoConvergence {
            iterations,
            residual,
            tolerance: options.tolerance,
        });
    }

    CG_SOLVES.inc();
    CG_ITERATIONS.add(iterations as u64);
    CG_ITERATIONS_PER_SOLVE.record(iterations as f64);
    CG_FINAL_RESIDUAL.record(residual);

    Ok((x, CgStats {
        iterations,
        residual,
    }))
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.add(i, i, 2.0);
            if i > 0 {
                t.add(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_tridiagonal_laplacian() {
        let n = 50;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.mul_vec(&x_true);
        let (x, stats) = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "component {i}");
        }
        assert!(stats.iterations <= n + 1, "CG must converge in ≤ n+1 steps");
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let (x, stats) = solve_cg(&a, &[0.0; 10], &CgOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn empty_system() {
        let a = TripletMatrix::new(0, 0).to_csr();
        let (x, _) = solve_cg(&a, &[], &CgOptions::default()).unwrap();
        assert!(x.is_empty());
    }

    #[test]
    fn dimension_mismatch() {
        let a = laplacian_1d(4);
        assert!(matches!(
            solve_cg(&a, &[1.0, 2.0], &CgOptions::default()),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 1.0);
        let a = t.to_csr();
        assert!(matches!(
            solve_cg(&a, &[1.0, 1.0], &CgOptions::default()),
            Err(CircuitError::SingularSystem { .. })
        ));
    }

    #[test]
    fn iteration_budget_respected() {
        let a = laplacian_1d(100);
        let b = vec![1.0; 100];
        let opts = CgOptions {
            tolerance: 1e-14,
            max_iterations: IterationCap::Limit(2),
            ..CgOptions::default()
        };
        assert!(matches!(
            solve_cg(&a, &b, &opts),
            Err(CircuitError::LinearNoConvergence { iterations: 2, .. })
        ));
    }

    #[test]
    fn iteration_cap_resolves_and_converts() {
        assert_eq!(IterationCap::Auto.resolve(7), 70);
        assert_eq!(IterationCap::Limit(2).resolve(7), 2);
        assert_eq!(IterationCap::Limit(0).resolve(7), 0);
        // Deprecated numeric convention: 0 = auto, n = hard limit.
        assert_eq!(IterationCap::from(0), IterationCap::Auto);
        assert_eq!(IterationCap::from(3), IterationCap::Limit(3));
    }

    #[test]
    fn non_finite_matrix_fails_fast() {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.add(i, i, 2.0);
        }
        t.add(0, 1, f64::NAN);
        let a = t.to_csr();
        assert!(matches!(
            solve_cg(&a, &[1.0; 3], &CgOptions::default()),
            Err(CircuitError::LinearNonFinite { .. })
        ));
    }

    #[test]
    fn non_finite_warm_start_fails_before_iterating() {
        let a = laplacian_1d(4);
        let guess = [f64::NAN; 4];
        assert!(matches!(
            solve_cg_warm(&a, &[1.0; 4], Some(&guess), &CgOptions::default()),
            Err(CircuitError::LinearNonFinite { iterations: 0 })
        ));
    }

    /// A system whose true residual bottoms out near machine precision
    /// (~1e-16) long before a 1e-30 tolerance is met: the non-integer
    /// right-hand side prevents the exact cancellation that would
    /// otherwise terminate CG with a residual of exactly zero.
    fn stalling_solve() -> (CsrMatrix, Vec<f64>) {
        let a = laplacian_1d(100);
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin()).collect();
        (a, b)
    }

    #[test]
    fn unreachable_tolerance_trips_stagnation_guard() {
        let (a, b) = stalling_solve();
        let opts = CgOptions {
            tolerance: 1e-30,
            stagnation_window: Some(20),
            ..CgOptions::default()
        };
        match solve_cg(&a, &b, &opts) {
            Err(CircuitError::LinearStagnated {
                iterations,
                residual,
                window,
            }) => {
                assert_eq!(window, 20);
                assert!(iterations < 1000, "guard must fire before the budget");
                // The guard fired where the solve bottomed out, near
                // machine precision — not on a healthy converging stretch.
                assert!(residual < 1e-12, "stagnated at residual {residual:e}");
            }
            other => panic!("expected LinearStagnated, got {other:?}"),
        }
    }

    #[test]
    fn disabled_stagnation_guard_keeps_iterating() {
        // Legacy behavior: with the guard off the solver grinds on past the
        // point where the true residual stopped improving. (The recurrence
        // residual can even drift below the unreachable tolerance, so the
        // run may terminate "converged" — what it must never do is report
        // stagnation.)
        let (a, b) = stalling_solve();
        let opts = CgOptions {
            tolerance: 1e-30,
            stagnation_window: None,
            ..CgOptions::default()
        };
        match solve_cg(&a, &b, &opts) {
            Err(CircuitError::LinearStagnated { .. }) => {
                panic!("guard disabled but stagnation reported")
            }
            Ok((_, stats)) => assert!(
                stats.iterations > 100,
                "kept iterating past the stall point, got {}",
                stats.iterations
            ),
            Err(CircuitError::LinearNoConvergence { .. }) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn warm_start_from_solution_takes_zero_iterations() {
        let n = 40;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let b = a.mul_vec(&x_true);
        let (x_cold, cold) = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        let (x_warm, warm) =
            solve_cg_warm(&a, &b, Some(&x_cold), &CgOptions::default()).unwrap();
        assert_eq!(warm.iterations, 0);
        assert_eq!(x_warm, x_cold);
        assert!(cold.iterations > 0);
    }

    #[test]
    fn warm_start_near_solution_converges_faster() {
        let n = 60;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
        let b = a.mul_vec(&x_true);
        let (_, cold) = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        // A slightly perturbed solution is a realistic warm start.
        let guess: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let (x, warm) = solve_cg_warm(&a, &b, Some(&guess), &CgOptions::default()).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} !< cold {}",
            warm.iterations,
            cold.iterations
        );
        for i in 0..n {
            assert!((x[i] - x_true[i]).abs() < 1e-7, "component {i}");
        }
    }

    #[test]
    fn warm_start_dimension_checked() {
        let a = laplacian_1d(5);
        assert!(matches!(
            solve_cg_warm(&a, &[1.0; 5], Some(&[0.0; 3]), &CgOptions::default()),
            Err(CircuitError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_rhs_with_warm_start_returns_zero() {
        let a = laplacian_1d(6);
        let guess = vec![5.0; 6];
        let (x, stats) =
            solve_cg_warm(&a, &[0.0; 6], Some(&guess), &CgOptions::default()).unwrap();
        assert!(x.iter().all(|&v| v == 0.0));
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn badly_scaled_diagonal_still_converges() {
        // Mimics the crossbar situation: conductances spanning 6 decades.
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let scale = if i % 2 == 0 { 1.0 } else { 1e6 };
            t.add(i, i, 2.0 * scale);
            if i > 0 {
                t.add(i, i - 1, -0.5);
                t.add(i - 1, i, -0.5);
            }
        }
        let a = t.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let b = a.mul_vec(&x_true);
        let (x, _) = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        for i in 0..n {
            let rel = (x[i] - x_true[i]).abs() / x_true[i];
            assert!(rel < 1e-6, "component {i}: rel error {rel}");
        }
    }
}
