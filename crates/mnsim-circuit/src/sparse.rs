//! Compressed-sparse matrices (CSR and CSC).
//!
//! The conductance matrices of crossbar resistor networks are extremely
//! sparse (≈5 non-zeros per row regardless of size), so the circuit solver
//! assembles them in triplet (COO) form and converts once to a compressed
//! format: [`CsrMatrix`] for fast matrix-vector products inside the
//! conjugate-gradient loop, [`CscMatrix`] for the column-oriented sparse
//! LU factorization in [`crate::klu`].

use std::fmt;

/// A sparse matrix builder collecting `(row, col, value)` triplets.
///
/// Duplicate coordinates are *summed* on conversion, which is exactly the
/// semantics needed for stamping circuit elements into a nodal matrix.
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds `value` at `(row, col)`; repeated coordinates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet ({row},{col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-deduplication) triplets collected so far.
    pub fn triplet_count(&self) -> usize {
        self.entries.len()
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(row, col, _)| (row, col));

        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j].0 == r && sorted[j].1 == c {
                v += sorted[j].2;
                j += 1;
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
            i = j;
        }

        // Prefix-sum the per-row counts into offsets.
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Converts to CSC, summing duplicate coordinates.
    ///
    /// Entries within each column are sorted by row, and the conversion is
    /// fully deterministic: two builders with the same triplet multiset
    /// produce bit-identical matrices.
    pub fn to_csc(&self) -> CscMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(row, col, _)| (col, row));

        let mut col_ptr = vec![0usize; self.cols + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && sorted[j].0 == r && sorted[j].1 == c {
                v += sorted[j].2;
                j += 1;
            }
            row_idx.push(r);
            values.push(v);
            col_ptr[c + 1] += 1;
            i = j;
        }

        for c in 0..self.cols {
            col_ptr[c + 1] += col_ptr[c];
        }

        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            col_ptr,
            row_idx,
            values,
        }
    }
}

/// An immutable compressed-sparse-row matrix.
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored value at `(row, col)`, or 0.0 if structurally zero.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&col) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// The diagonal entries as a vector (0.0 where structurally absent).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Dense `y = A·x` product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        assert_eq!(y.len(), self.rows, "y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Allocating variant of [`Self::mul_vec_into`].
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Returns `true` if the matrix is exactly symmetric in its stored
    /// pattern and values (within `tol` relative tolerance).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                let vt = self.get(c, r);
                let scale = v.abs().max(vt.abs()).max(1e-300);
                if (v - vt).abs() / scale > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Converts to a dense row-major matrix (testing / small-system LU).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.cols]; self.rows];
        for (r, row) in dense.iter_mut().enumerate() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                row[self.col_idx[k]] = self.values[k];
            }
        }
        dense
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {{ {}x{}, nnz: {} }}",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

/// An immutable compressed-sparse-column matrix.
///
/// Column-major twin of [`CsrMatrix`]: `col_ptr[j]..col_ptr[j+1]` indexes
/// the stored entries of column `j`, whose row indices (`row_idx`, sorted
/// ascending within each column) and values run in parallel. This is the
/// natural layout for the left-looking sparse LU in [`crate::klu`], which
/// touches one column at a time.
#[derive(Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column start offsets (`cols + 1` entries).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index of every stored entry, column-major, sorted within columns.
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// The stored values, column-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The stored value at `(row, col)`, or 0.0 if structurally zero.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let start = self.col_ptr[col];
        let end = self.col_ptr[col + 1];
        match self.row_idx[start..end].binary_search(&row) {
            Ok(pos) => self.values[start + pos],
            Err(_) => 0.0,
        }
    }

    /// FNV-1a hash of the sparsity pattern (dimensions, column pointers,
    /// and row indices — *not* the values). Two matrices with equal
    /// pattern hashes are refactorization-compatible in [`crate::klu`].
    pub fn pattern_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(PRIME);
        };
        mix(self.rows as u64);
        mix(self.cols as u64);
        for &p in &self.col_ptr {
            mix(p as u64);
        }
        for &r in &self.row_idx {
            mix(r as u64);
        }
        h
    }

    /// Converts to a dense row-major matrix (testing / small systems).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.cols]; self.rows];
        for (c, w) in self.col_ptr.windows(2).enumerate() {
            for k in w[0]..w[1] {
                dense[self.row_idx[k]][c] = self.values[k];
            }
        }
        dense
    }

    /// Dense `y = A·x` product (allocating; test helper).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "x length mismatch");
        let mut y = vec![0.0; self.rows];
        for (&xc, w) in x.iter().zip(self.col_ptr.windows(2)) {
            for k in w[0]..w[1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
        y
    }
}

impl fmt::Debug for CscMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CscMatrix {{ {}x{}, nnz: {} }}",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [2 -1  0]
        // [-1 2 -1]
        // [0 -1  2]
        let mut t = TripletMatrix::new(3, 3);
        t.add(0, 0, 2.0);
        t.add(0, 1, -1.0);
        t.add(1, 0, -1.0);
        t.add(1, 1, 2.0);
        t.add(1, 2, -1.0);
        t.add(2, 1, -1.0);
        t.add(2, 2, 2.0);
        t.to_csr()
    }

    #[test]
    fn basic_assembly_and_get() {
        let m = small();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.nnz(), 7);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(2, 1), -1.0);
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1.0);
        t.add(0, 0, 2.5);
        t.add(1, 1, 1.0);
        t.add(0, 1, -1.0);
        t.add(0, 1, -1.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.get(0, 1), -2.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn zero_values_are_dropped() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 0.0);
        t.add(1, 1, 5.0);
        assert_eq!(t.triplet_count(), 1);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.add(2, 0, 1.0);
    }

    #[test]
    fn mat_vec_product() {
        let m = small();
        let y = m.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "x length mismatch")]
    fn mat_vec_dimension_check() {
        let m = small();
        let _ = m.mul_vec(&[1.0, 2.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let m = small();
        assert_eq!(m.diagonal(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn symmetry_check() {
        let m = small();
        assert!(m.is_symmetric(1e-12));

        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 1, 1.0);
        t.add(1, 0, 2.0);
        assert!(!t.to_csr().is_symmetric(1e-12));
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let d = m.to_dense();
        assert_eq!(d[1], vec![-1.0, 2.0, -1.0]);
        assert_eq!(d[0][2], 0.0);
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut t = TripletMatrix::new(4, 4);
        t.add(0, 0, 1.0);
        t.add(3, 3, 1.0);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        let y = m.mul_vec(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 1.0]);
    }
}
