//! Sparse LU numeric factorization (Gilbert–Peierls, left-looking).
//!
//! Each diagonal BTF block is factorized independently with per-column
//! symbolic reach (a DFS over the partial L's column graph, giving the
//! update order topologically) followed by a numeric sparse triangular
//! solve. Pivoting is partial with **diagonal preference**: the diagonal
//! candidate is kept whenever it is within [`PIVOT_TOL`] of the column
//! maximum. On the symmetric diagonally-dominant reduced nodal systems the
//! crossbar stamps produce, the diagonal always wins, which is what makes
//! [`Numeric::refactor`] (pivot-order replay) bit-identical to a fresh
//! factorization — the property `tests/klu.rs` pins.
//!
//! The factor pass records a *replay program* per column: the A-scatter
//! list, the U-update list in topological order, and the L row list. A
//! refactorization executes exactly that program — the same operations in
//! the same order on new values — so unchanged values reproduce the fresh
//! factorization bit for bit, and the only way it can diverge is the
//! pivot-growth screen tripping, which reports [`RefactorFail`] and lets
//! the caller fall back to a full factorization with fresh pivoting.

use crate::sparse::CscMatrix;

/// Relative threshold for preferring the diagonal candidate as pivot.
pub(crate) const PIVOT_TOL: f64 = 1e-3;

/// Refactorization growth screen: the stored pivot must not fall below
/// this fraction of its column maximum. Tripping it means partial pivoting
/// would now choose a very different pivot — values moved too far for the
/// cached pivot order to stay numerically safe.
pub(crate) const GROWTH_TOL: f64 = 1e-8;

const UNPIVOTED: usize = usize::MAX;

/// Why a numeric refactorization could not reuse the cached pivot order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum RefactorFail {
    /// A pivot became exactly zero (or its whole column vanished).
    Singular {
        /// Global permuted column index of the failing pivot.
        column: usize,
    },
    /// The stored pivot shrank below [`GROWTH_TOL`] of its column maximum.
    PivotGrowth {
        /// Global permuted column index of the failing pivot.
        column: usize,
        /// `|pivot| / column_max` observed at failure.
        ratio: f64,
    },
}

/// One factorized diagonal block, with its replay program.
#[derive(Debug, Clone)]
struct BlockFactor {
    /// Global offset of the block in the permuted index space.
    start: usize,
    /// Block dimension.
    size: usize,
    /// A-scatter program per local column: `(local row, index into A values)`.
    a_ptr: Vec<usize>,
    a_rows: Vec<usize>,
    a_src: Vec<usize>,
    /// U-update program per local column, in topological (replay) order.
    /// `u_cols[t]` is the pivot position k of the entry; `u_vals[t] = U(k, j)`.
    u_ptr: Vec<usize>,
    u_cols: Vec<usize>,
    u_vals: Vec<f64>,
    /// Diagonal of U per pivot position.
    u_diag: Vec<f64>,
    /// L multipliers per local column: rows are *original* block-local row
    /// ids (unit diagonal implicit, pivot row excluded).
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    /// `pivot_row[k]` = original block-local row chosen as pivot k.
    pivot_row: Vec<usize>,
    /// Inverse of `pivot_row`.
    pinv: Vec<usize>,
}

/// The numeric LU factorization of a BTF-permuted matrix.
#[derive(Debug, Clone)]
pub(crate) struct Numeric {
    n: usize,
    blocks: Vec<BlockFactor>,
    /// Off-diagonal (above-block) entries per global permuted column:
    /// `(global permuted row, index into A values, value)`.
    off_ptr: Vec<usize>,
    off_rows: Vec<usize>,
    off_src: Vec<usize>,
    off_vals: Vec<f64>,
}

/// Factorizes `a` under the given BTF+AMD permutations. `row_perm` /
/// `col_perm` map permuted→original; `block_ptr` bounds the diagonal
/// blocks. Returns `Err(global permuted column)` on numeric singularity.
pub(crate) fn factorize(
    a: &CscMatrix,
    row_perm: &[usize],
    col_perm: &[usize],
    block_ptr: &[usize],
) -> Result<Numeric, usize> {
    let n = a.cols();
    debug_assert_eq!(row_perm.len(), n);
    debug_assert_eq!(col_perm.len(), n);

    let mut inv_row = vec![0usize; n];
    for (new, &old) in row_perm.iter().enumerate() {
        inv_row[old] = new;
    }
    let mut block_start = vec![0usize; n];
    for w in block_ptr.windows(2) {
        block_start[w[0]..w[1]].fill(w[0]);
    }

    // Split A's entries into per-block scatter programs + off-block list.
    let mut blocks: Vec<BlockFactor> = block_ptr
        .windows(2)
        .map(|w| BlockFactor::empty(w[0], w[1] - w[0]))
        .collect();
    let mut off_ptr = Vec::with_capacity(n + 1);
    let mut off_rows = Vec::new();
    let mut off_src = Vec::new();
    off_ptr.push(0);

    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();
    let mut block_of_col = vec![0usize; n];
    for (bi, w) in block_ptr.windows(2).enumerate() {
        block_of_col[w[0]..w[1]].fill(bi);
    }
    for new_j in 0..n {
        let old_j = col_perm[new_j];
        let bi = block_of_col[new_j];
        let s = blocks[bi].start;
        let e = s + blocks[bi].size;
        for k in col_ptr[old_j]..col_ptr[old_j + 1] {
            let new_i = inv_row[row_idx[k]];
            if new_i >= s && new_i < e {
                blocks[bi].a_rows.push(new_i - s);
                blocks[bi].a_src.push(k);
            } else {
                debug_assert!(new_i < s, "BTF form has no entries below the diagonal blocks");
                off_rows.push(new_i);
                off_src.push(k);
            }
        }
        let filled = blocks[bi].a_rows.len();
        blocks[bi].a_ptr.push(filled);
        off_ptr.push(off_rows.len());
    }
    let off_vals: Vec<f64> = off_src.iter().map(|&k| a.values()[k]).collect();

    // Factorize each block.
    for block in &mut blocks {
        block.factor(a.values()).map_err(|local| block.start + local)?;
    }

    Ok(Numeric { n, blocks, off_ptr, off_rows, off_src, off_vals })
}

impl BlockFactor {
    fn empty(start: usize, size: usize) -> Self {
        BlockFactor {
            start,
            size,
            a_ptr: vec![0],
            a_rows: Vec::new(),
            a_src: Vec::new(),
            u_ptr: vec![0],
            u_cols: Vec::new(),
            u_vals: Vec::new(),
            u_diag: Vec::new(),
            l_ptr: vec![0],
            l_rows: Vec::new(),
            l_vals: Vec::new(),
            pivot_row: Vec::new(),
            pinv: Vec::new(),
        }
    }

    /// Gilbert–Peierls left-looking factorization of one block, recording
    /// the replay program as it goes. `Err(local column)` on singularity.
    fn factor(&mut self, avals: &[f64]) -> Result<(), usize> {
        let m = self.size;
        self.pinv = vec![UNPIVOTED; m];
        self.pivot_row = Vec::with_capacity(m);
        self.u_diag = Vec::with_capacity(m);

        let mut x = vec![0.0f64; m];
        let mut marked = vec![usize::MAX; m];
        let mut reach: Vec<usize> = Vec::with_capacity(m);
        let mut dfs: Vec<(usize, usize)> = Vec::new();
        let mut cands: Vec<usize> = Vec::new();

        for j in 0..m {
            // Scatter A(:, j) into the dense work vector.
            for k in self.a_ptr[j]..self.a_ptr[j + 1] {
                x[self.a_rows[k]] = avals[self.a_src[k]];
            }

            // Symbolic reach: DFS from A(:, j)'s rows through L's columns;
            // reverse postorder is the topological update order.
            reach.clear();
            for k in self.a_ptr[j]..self.a_ptr[j + 1] {
                let r = self.a_rows[k];
                if marked[r] == j {
                    continue;
                }
                marked[r] = j;
                dfs.push((r, 0));
                while let Some(&mut (node, ref mut child)) = dfs.last_mut() {
                    let piv = self.pinv[node];
                    let done = if piv == UNPIVOTED {
                        true
                    } else {
                        let lo = self.l_ptr[piv];
                        let hi = self.l_ptr[piv + 1];
                        let mut advanced = false;
                        while lo + *child < hi {
                            let nxt = self.l_rows[lo + *child];
                            *child += 1;
                            if marked[nxt] != j {
                                marked[nxt] = j;
                                dfs.push((nxt, 0));
                                advanced = true;
                                break;
                            }
                        }
                        !advanced
                    };
                    if done {
                        dfs.pop();
                        reach.push(node);
                    }
                }
            }

            // Numeric pass in topological order, recording the program.
            cands.clear();
            for &r in reach.iter().rev() {
                let k = self.pinv[r];
                if k == UNPIVOTED {
                    cands.push(r);
                    continue;
                }
                let xr = x[r];
                self.u_cols.push(k);
                self.u_vals.push(xr);
                for q in self.l_ptr[k]..self.l_ptr[k + 1] {
                    x[self.l_rows[q]] -= self.l_vals[q] * xr;
                }
            }
            self.u_ptr.push(self.u_cols.len());

            // Pivot: column max with diagonal preference.
            let mut colmax = 0.0f64;
            for &r in &cands {
                let v = x[r].abs();
                if v > colmax {
                    colmax = v;
                }
            }
            if cands.is_empty() || colmax == 0.0 || !colmax.is_finite() {
                return Err(j);
            }
            let mut pivot = usize::MAX;
            if marked[j] == j && self.pinv[j] == UNPIVOTED && x[j].abs() >= PIVOT_TOL * colmax {
                pivot = j;
            } else {
                for &r in &cands {
                    if x[r].abs() == colmax {
                        pivot = r;
                        break;
                    }
                }
            }
            let piv_val = x[pivot];
            self.pinv[pivot] = j;
            self.pivot_row.push(pivot);
            self.u_diag.push(piv_val);
            for &r in &cands {
                if r != pivot {
                    self.l_rows.push(r);
                    self.l_vals.push(x[r] / piv_val);
                }
            }
            self.l_ptr.push(self.l_rows.len());

            // Clear the work vector along the reach.
            for &r in &reach {
                x[r] = 0.0;
            }
        }
        Ok(())
    }

    /// Replays the recorded program with new values. Exactly the same
    /// operations in the same order as [`BlockFactor::factor`].
    fn refactor(&mut self, avals: &[f64]) -> Result<(), RefactorFail> {
        let m = self.size;
        let mut x = vec![0.0f64; m];
        for j in 0..m {
            for k in self.a_ptr[j]..self.a_ptr[j + 1] {
                x[self.a_rows[k]] = avals[self.a_src[k]];
            }
            for t in self.u_ptr[j]..self.u_ptr[j + 1] {
                let k = self.u_cols[t];
                let xr = x[self.pivot_row[k]];
                self.u_vals[t] = xr;
                for q in self.l_ptr[k]..self.l_ptr[k + 1] {
                    x[self.l_rows[q]] -= self.l_vals[q] * xr;
                }
            }
            let pr = self.pivot_row[j];
            let piv_val = x[pr];
            let mut colmax = piv_val.abs();
            for q in self.l_ptr[j]..self.l_ptr[j + 1] {
                let v = x[self.l_rows[q]].abs();
                if v > colmax {
                    colmax = v;
                }
            }
            if colmax == 0.0 || !colmax.is_finite() || piv_val == 0.0 {
                return Err(RefactorFail::Singular { column: self.start + j });
            }
            if piv_val.abs() < GROWTH_TOL * colmax {
                return Err(RefactorFail::PivotGrowth {
                    column: self.start + j,
                    ratio: piv_val.abs() / colmax,
                });
            }
            self.u_diag[j] = piv_val;
            for q in self.l_ptr[j]..self.l_ptr[j + 1] {
                self.l_vals[q] = x[self.l_rows[q]] / piv_val;
            }
            // Clear: U pivot rows + the pivot itself + L rows cover every
            // touched entry (the column's full L+U pattern).
            for t in self.u_ptr[j]..self.u_ptr[j + 1] {
                x[self.pivot_row[self.u_cols[t]]] = 0.0;
            }
            x[pr] = 0.0;
            for q in self.l_ptr[j]..self.l_ptr[j + 1] {
                x[self.l_rows[q]] = 0.0;
            }
        }
        Ok(())
    }

    /// Solves the block system `B y = w` in place: `w` enters holding the
    /// local right-hand side (original block-local row order) and leaves
    /// holding the solution in local *column* order via `y`.
    fn solve_local(&self, w: &mut [f64], y: &mut [f64]) {
        let m = self.size;
        debug_assert_eq!(w.len(), m);
        // Forward (L) solve in pivot order, unit diagonal.
        for k in 0..m {
            let t = w[self.pivot_row[k]];
            if t != 0.0 {
                for q in self.l_ptr[k]..self.l_ptr[k + 1] {
                    w[self.l_rows[q]] -= self.l_vals[q] * t;
                }
            }
        }
        // Gather into pivot coordinates, then backward (U) solve.
        for k in 0..m {
            y[k] = w[self.pivot_row[k]];
        }
        for j in (0..m).rev() {
            let yj = y[j] / self.u_diag[j];
            y[j] = yj;
            if yj != 0.0 {
                for t in self.u_ptr[j]..self.u_ptr[j + 1] {
                    y[self.u_cols[t]] -= self.u_vals[t] * yj;
                }
            }
        }
    }
}

impl Numeric {
    /// Refreshes the factorization for a matrix with the *same pattern* but
    /// new values, replaying the cached pivot order and elimination
    /// program. The caller is responsible for pattern compatibility.
    pub(crate) fn refactor(&mut self, a: &CscMatrix) -> Result<(), RefactorFail> {
        debug_assert_eq!(a.cols(), self.n);
        for (t, &k) in self.off_src.iter().enumerate() {
            self.off_vals[t] = a.values()[k];
        }
        for block in &mut self.blocks {
            block.refactor(a.values())?;
        }
        Ok(())
    }

    /// Solves `A x = b` (original coordinates) via block back-substitution
    /// from the last BTF block to the first.
    pub(crate) fn solve(&self, b: &[f64], row_perm: &[usize], col_perm: &[usize]) -> Vec<f64> {
        let n = self.n;
        debug_assert_eq!(b.len(), n);
        let mut pb: Vec<f64> = row_perm.iter().map(|&old| b[old]).collect();
        let mut z = vec![0.0f64; n];
        let mut y_buf = vec![0.0f64; self.blocks.iter().map(|bl| bl.size).max().unwrap_or(0)];
        for block in self.blocks.iter().rev() {
            let s = block.start;
            let e = s + block.size;
            block.solve_local(&mut pb[s..e], &mut y_buf[..block.size]);
            z[s..e].copy_from_slice(&y_buf[..block.size]);
            // Push this block's solution into the rows of earlier blocks.
            for (j, &zj) in z.iter().enumerate().take(e).skip(s) {
                if zj != 0.0 {
                    for t in self.off_ptr[j]..self.off_ptr[j + 1] {
                        pb[self.off_rows[t]] -= self.off_vals[t] * zj;
                    }
                }
            }
        }
        let mut x = vec![0.0f64; n];
        for (new_j, &old_j) in col_perm.iter().enumerate() {
            x[old_j] = z[new_j];
        }
        x
    }

    /// Total stored nonzeros in L + U (including unit diagonals) plus
    /// off-block entries — the fill metric exported as a gauge.
    pub(crate) fn lu_nnz(&self) -> usize {
        self.blocks
            .iter()
            .map(|bl| bl.l_rows.len() + bl.u_cols.len() + 2 * bl.size)
            .sum::<usize>()
            + self.off_rows.len()
    }

    /// Reconstructs the dense matrix represented by the factorization —
    /// test-only support for the L·U ≈ A structural invariant.
    #[cfg(test)]
    pub(crate) fn reconstruct_dense(&self, row_perm: &[usize], col_perm: &[usize]) -> Vec<Vec<f64>> {
        let n = self.n;
        let mut out = vec![vec![0.0f64; n]; n];
        // Column e_j of A equals A x with x = e_j; recover it by solving is
        // circular — instead rebuild per block: B = P_blk^T L U in local
        // coords, then scatter with the global permutations.
        for block in &self.blocks {
            let m = block.size;
            // Dense L (original-local-row × pivot) and U (pivot × local col).
            let mut l = vec![vec![0.0f64; m]; m];
            let mut u = vec![vec![0.0f64; m]; m];
            for k in 0..m {
                l[block.pivot_row[k]][k] = 1.0;
                for q in block.l_ptr[k]..block.l_ptr[k + 1] {
                    l[block.l_rows[q]][k] = block.l_vals[q];
                }
            }
            for j in 0..m {
                u[j][j] = block.u_diag[j];
                for t in block.u_ptr[j]..block.u_ptr[j + 1] {
                    u[block.u_cols[t]][j] = block.u_vals[t];
                }
            }
            for i in 0..m {
                for j in 0..m {
                    let mut acc = 0.0;
                    for k in 0..m {
                        acc += l[i][k] * u[k][j];
                    }
                    if acc != 0.0 {
                        out[row_perm[block.start + i]][col_perm[block.start + j]] += acc;
                    }
                }
            }
        }
        for j in 0..self.n {
            for t in self.off_ptr[j]..self.off_ptr[j + 1] {
                out[row_perm[self.off_rows[t]]][col_perm[j]] += self.off_vals[t];
            }
        }
        out
    }
}
