//! Approximate-minimum-degree fill-reducing ordering.
//!
//! A quotient-graph minimum-degree ordering in the style of
//! Amestoy–Davis–Duff AMD: eliminated pivots become *elements* whose
//! boundaries stand in for the clique their elimination would create, and
//! the degree of a variable is approximated as
//!
//! ```text
//! d(v) ≈ |A_v| + |Lp \ v| + Σ_{e ∈ elems(v), e ≠ p} |Le \ Lp|
//! ```
//!
//! which the `w`-counter trick evaluates in one sweep over the affected
//! structure (no set unions are ever formed). Supervariable detection and
//! aggressive absorption are omitted — crossbar meshes have no dense rows,
//! so the simple variant already keeps the per-pivot cost proportional to
//! the touched structure. Absorbed elements (boundary fully inside the new
//! element) are removed, which bounds the quotient graph's size.
//!
//! The ordering is *advisory*: any permutation keeps the factorization
//! correct, a poor one only costs fill. The structural contract (output is
//! a permutation of `0..n`) is what [`crate::klu`]'s tests pin.

use std::collections::BinaryHeap;
use std::cmp::Reverse;

/// Computes a fill-reducing elimination order for a symmetric sparsity
/// pattern given as an adjacency list (self-loops ignored, must be
/// symmetric). Returns the permutation as `order[new] = old`.
pub(crate) fn min_degree_order(n: usize, adj_in: &[Vec<usize>]) -> Vec<usize> {
    debug_assert_eq!(adj_in.len(), n);
    if n <= 2 {
        return (0..n).collect();
    }

    // Quotient graph: per-variable plain neighbors + element memberships.
    let mut adj: Vec<Vec<usize>> = adj_in
        .iter()
        .enumerate()
        .map(|(v, nbrs)| {
            let mut list: Vec<usize> = nbrs.iter().copied().filter(|&u| u != v).collect();
            list.sort_unstable();
            list.dedup();
            list
        })
        .collect();
    let mut elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut element_vars: Vec<Vec<usize>> = Vec::new();
    let mut element_alive: Vec<bool> = Vec::new();

    let mut degree: Vec<usize> = adj.iter().map(Vec::len).collect();
    let mut eliminated = vec![false; n];

    // Lazy-deletion min-heap of (degree, variable); stale entries are
    // skipped on pop. Tie-break on the variable id keeps the order fully
    // deterministic.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(2 * n);
    for (v, &d) in degree.iter().enumerate() {
        heap.push(Reverse((d, v)));
    }

    // Timestamped scratch marks.
    let mut mark = vec![0u64; n];
    let mut stamp = 0u64;
    let mut elem_w: Vec<usize> = Vec::new();
    let mut elem_stamp: Vec<u64> = Vec::new();

    let mut order = Vec::with_capacity(n);

    while order.len() < n {
        // Pick the minimum-degree uneliminated variable.
        let p = loop {
            let Reverse((d, v)) = heap.pop().expect("heap never empties before n pivots");
            if !eliminated[v] && degree[v] == d {
                break v;
            }
        };
        eliminated[p] = true;
        order.push(p);

        // Form the new element's boundary Lp = (A_p ∪ ⋃ Le) \ {p, eliminated}.
        stamp += 1;
        mark[p] = stamp;
        let mut lp: Vec<usize> = Vec::new();
        for &v in &adj[p] {
            if !eliminated[v] && mark[v] != stamp {
                mark[v] = stamp;
                lp.push(v);
            }
        }
        for &e in &elems[p] {
            if !element_alive[e] {
                continue;
            }
            for &v in &element_vars[e] {
                if !eliminated[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    lp.push(v);
                }
            }
            // Every parent element is absorbed into the new one.
            element_alive[e] = false;
        }
        if lp.is_empty() {
            continue;
        }

        // w-counter sweep: |Le \ Lp| for every element adjacent to Lp.
        for &v in &lp {
            for &e in &elems[v] {
                if !element_alive[e] {
                    continue;
                }
                if elem_stamp[e] != stamp {
                    elem_stamp[e] = stamp;
                    elem_w[e] = element_vars[e].len();
                }
                elem_w[e] -= 1;
            }
        }

        // Register the new element.
        let e_new = element_vars.len();
        element_vars.push(lp.clone());
        element_alive.push(true);
        elem_w.push(0);
        elem_stamp.push(0);

        let lp_len = lp.len();
        for &v in &lp {
            // Prune plain edges now covered by the new element (members of
            // Lp and the pivot itself), drop edges to eliminated variables.
            adj[v].retain(|&u| !eliminated[u] && mark[u] != stamp);

            // Drop dead elements; absorb those fully covered by Lp.
            let mut kept = Vec::with_capacity(elems[v].len() + 1);
            let mut boundary_sum = 0usize;
            for &e in &elems[v] {
                if !element_alive[e] {
                    continue;
                }
                if elem_stamp[e] == stamp && elem_w[e] == 0 {
                    element_alive[e] = false;
                    continue;
                }
                boundary_sum += if elem_stamp[e] == stamp {
                    elem_w[e]
                } else {
                    element_vars[e].len().saturating_sub(1)
                };
                kept.push(e);
            }
            kept.push(e_new);
            elems[v] = kept;

            // Approximate external degree, capped by the live count.
            let d = (adj[v].len() + (lp_len - 1) + boundary_sum).min(n - order.len() - 1);
            degree[v] = d;
            heap.push(Reverse((d, v)));
        }
    }

    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Vec<Vec<usize>> {
        (0..n)
            .map(|i| {
                let mut nbrs = Vec::new();
                if i > 0 {
                    nbrs.push(i - 1);
                }
                if i + 1 < n {
                    nbrs.push(i + 1);
                }
                nbrs
            })
            .collect()
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        order.len() == n
            && order.iter().all(|&v| {
                if v < n && !seen[v] {
                    seen[v] = true;
                    true
                } else {
                    false
                }
            })
    }

    #[test]
    fn path_graph_orders_all_vertices() {
        let order = min_degree_order(7, &path_graph(7));
        assert!(is_permutation(&order, 7));
        // Endpoints have degree 1 and must be eliminated before any interior
        // vertex of the initial graph.
        assert!(order[0] == 0 || order[0] == 6);
    }

    #[test]
    fn star_center_outlasts_most_leaves() {
        // Star: center 0 adjacent to all leaves. The center's degree equals
        // the number of remaining leaves, so it cannot be picked while two
        // or more leaves survive (its degree only ties a leaf's at 1).
        let n = 9;
        let mut adj = vec![Vec::new(); n];
        for leaf in 1..n {
            adj[0].push(leaf);
            adj[leaf].push(0);
        }
        let order = min_degree_order(n, &adj);
        assert!(is_permutation(&order, n));
        let center_pos = order.iter().position(|&v| v == 0).unwrap();
        assert!(center_pos >= n - 2, "center eliminated at {center_pos} of {n}");
    }

    #[test]
    fn disconnected_and_isolated_vertices_covered() {
        // Two components + an isolated vertex: the output must still be a
        // full permutation, isolated vertex first (degree 0).
        let mut adj = vec![Vec::new(); 5];
        adj[0].push(1);
        adj[1].push(0);
        adj[3].push(4);
        adj[4].push(3);
        let order = min_degree_order(5, &adj);
        assert!(is_permutation(&order, 5));
        assert_eq!(order[0], 2);
    }

    #[test]
    fn grid_ordering_is_a_permutation() {
        // 8×8 grid graph — the crossbar-like case.
        let side = 8;
        let n = side * side;
        let mut adj = vec![Vec::new(); n];
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    adj[v].push(v + 1);
                    adj[v + 1].push(v);
                }
                if r + 1 < side {
                    adj[v].push(v + side);
                    adj[v + side].push(v);
                }
            }
        }
        let order = min_degree_order(n, &adj);
        assert!(is_permutation(&order, n));
    }
}
