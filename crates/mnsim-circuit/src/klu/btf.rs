//! Block-triangular-form (BTF) pre-ordering.
//!
//! Two classical passes:
//!
//! 1. **Maximum transversal** (MC21-style augmenting paths): a row
//!    permutation putting a structural nonzero on every diagonal position.
//!    A matrix with no complete transversal is structurally singular and
//!    can never be factorized, whatever the values — that case is reported
//!    as a typed error carrying the first deficient column.
//! 2. **Tarjan SCC** on the matched graph: strongly connected components
//!    of `col j → col owning row r` (for each entry row `r` of column `j`)
//!    are the diagonal blocks. Emitting components in Tarjan completion
//!    order yields a block **upper** triangular form: every off-diagonal
//!    entry lands above its diagonal block, so the numeric phase
//!    factorizes each block independently and back-substitutes from the
//!    last block to the first.
//!
//! Reduced crossbar nodal systems are irreducible (one block) in the
//! healthy case; BTF earns its keep when fault overlays disconnect parts
//! of the mesh, and it doubles as the structural-singularity detector.

use crate::sparse::CscMatrix;

/// Output of the BTF analysis.
pub(crate) struct BtfForm {
    /// Row permutation, `row_perm[new] = old`.
    pub row_perm: Vec<usize>,
    /// Column permutation, `col_perm[new] = old`.
    pub col_perm: Vec<usize>,
    /// Half-open block boundaries over the permuted index space:
    /// block `b` spans `block_ptr[b]..block_ptr[b + 1]`.
    pub block_ptr: Vec<usize>,
}

/// Computes the block triangular form of a square matrix. Returns
/// `Err(column)` with the first column structurally impossible to match
/// when the matrix is structurally singular.
pub(crate) fn block_triangular_form(a: &CscMatrix) -> Result<BtfForm, usize> {
    let n = a.cols();
    debug_assert_eq!(a.rows(), n);
    if n == 0 {
        return Ok(BtfForm { row_perm: Vec::new(), col_perm: Vec::new(), block_ptr: vec![0] });
    }

    let row_of_col = maximum_transversal(a)?;
    // col_of_row inverts the matching for the successor function below.
    let mut col_of_row = vec![usize::MAX; n];
    for (j, &r) in row_of_col.iter().enumerate() {
        col_of_row[r] = j;
    }

    let components = tarjan_components(a, &col_of_row);

    // An entry A(r, j) with r matched to column c lands at permuted
    // position (pos(c), pos(j)); upper form needs block(c) ≤ block(j) for
    // every edge j → c. Tarjan emits a component only after everything
    // reachable from it, so emission order itself puts every edge target
    // at or before its source → block upper triangular.
    let mut col_perm = Vec::with_capacity(n);
    let mut block_ptr = Vec::with_capacity(components.len() + 1);
    block_ptr.push(0);
    for comp in &components {
        col_perm.extend_from_slice(comp);
        block_ptr.push(col_perm.len());
    }
    let row_perm: Vec<usize> = col_perm.iter().map(|&j| row_of_col[j]).collect();

    Ok(BtfForm { row_perm, col_perm, block_ptr })
}

/// MC21-style maximum matching: for each column, search an alternating
/// augmenting path. Returns `row_of_col[j]` = matched row, or `Err(j)` for
/// the first column left unmatched (structural singularity).
fn maximum_transversal(a: &CscMatrix) -> Result<Vec<usize>, usize> {
    let n = a.cols();
    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();

    let mut row_of_col = vec![usize::MAX; n];
    let mut col_of_row = vec![usize::MAX; n];
    // "Cheap" pointer: entries of column j before cheap[j] are known matched.
    let mut cheap: Vec<usize> = col_ptr[..n].to_vec();
    let mut visited = vec![usize::MAX; n]; // per-augmentation column marks
    // DFS stacks: current column, its entry cursor, and the path taken.
    let mut col_stack = Vec::with_capacity(n);
    let mut cursor_stack = Vec::with_capacity(n);
    let mut path_row = Vec::with_capacity(n);

    for start in 0..n {
        if row_of_col[start] != usize::MAX {
            continue;
        }
        col_stack.clear();
        cursor_stack.clear();
        path_row.clear();
        col_stack.push(start);
        cursor_stack.push(col_ptr[start]);
        visited[start] = start;
        let mut found = false;

        'dfs: while let Some(&j) = col_stack.last() {
            // Cheap scan first: any still-unmatched row ends the search.
            while cheap[j] < col_ptr[j + 1] {
                let r = row_idx[cheap[j]];
                cheap[j] += 1;
                if col_of_row[r] == usize::MAX {
                    path_row.push(r);
                    found = true;
                    break 'dfs;
                }
            }
            // Otherwise follow matched rows into their owning columns.
            let cursor = cursor_stack.last_mut().expect("stacks move in lockstep");
            let mut advanced = false;
            while *cursor < col_ptr[j + 1] {
                let r = row_idx[*cursor];
                *cursor += 1;
                let next_col = col_of_row[r];
                debug_assert_ne!(next_col, usize::MAX, "cheap scan exhausted unmatched rows");
                if visited[next_col] != start {
                    visited[next_col] = start;
                    path_row.push(r);
                    col_stack.push(next_col);
                    cursor_stack.push(col_ptr[next_col]);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // Dead end: retreat, discarding the edge that led here.
                col_stack.pop();
                cursor_stack.pop();
                path_row.pop();
            }
        }

        if !found {
            return Err(start);
        }
        // Flip the alternating path: column k on the stack takes the row
        // that led out of it.
        debug_assert_eq!(path_row.len(), col_stack.len());
        for (&j, &r) in col_stack.iter().zip(path_row.iter()) {
            row_of_col[j] = r;
            col_of_row[r] = j;
        }
    }

    Ok(row_of_col)
}

/// Iterative Tarjan SCC over the matched column graph. Components are
/// returned in completion (emission) order; members of one component keep
/// the deterministic order they held on Tarjan's stack.
fn tarjan_components(a: &CscMatrix, col_of_row: &[usize]) -> Vec<Vec<usize>> {
    let n = a.cols();
    let col_ptr = a.col_ptr();
    let row_idx = a.row_idx();

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frames: (column, next entry cursor).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        scc_stack.push(root);
        on_stack[root] = true;
        frames.push((root, col_ptr[root]));

        while let Some(&mut (j, ref mut cursor)) = frames.last_mut() {
            if *cursor < col_ptr[j + 1] {
                let succ = col_of_row[row_idx[*cursor]];
                *cursor += 1;
                if index[succ] == UNVISITED {
                    index[succ] = next_index;
                    lowlink[succ] = next_index;
                    next_index += 1;
                    scc_stack.push(succ);
                    on_stack[succ] = true;
                    frames.push((succ, col_ptr[succ]));
                } else if on_stack[succ] {
                    lowlink[j] = lowlink[j].min(index[succ]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[j]);
                }
                if lowlink[j] == index[j] {
                    // j is a component root: pop its members off the stack.
                    let mut comp = Vec::new();
                    loop {
                        let v = scc_stack.pop().expect("component root is on the stack");
                        on_stack[v] = false;
                        comp.push(v);
                        if v == j {
                            break;
                        }
                    }
                    // Popped in reverse discovery order; restore it.
                    comp.reverse();
                    components.push(comp);
                }
            }
        }
    }

    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    fn csc(n: usize, entries: &[(usize, usize, f64)]) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for &(r, c, v) in entries {
            t.add(r, c, v);
        }
        t.to_csc()
    }

    fn assert_block_upper(a: &CscMatrix, form: &BtfForm) {
        let n = a.cols();
        let mut inv_row = vec![0usize; n];
        for (new, &old) in form.row_perm.iter().enumerate() {
            inv_row[old] = new;
        }
        let mut block_of = vec![0usize; n];
        for b in 0..form.block_ptr.len() - 1 {
            for k in form.block_ptr[b]..form.block_ptr[b + 1] {
                block_of[k] = b;
            }
        }
        for (new_j, &old_j) in form.col_perm.iter().enumerate() {
            for k in a.col_ptr()[old_j]..a.col_ptr()[old_j + 1] {
                let new_i = inv_row[a.row_idx()[k]];
                assert!(
                    block_of[new_i] <= block_of[new_j],
                    "entry at permuted ({new_i}, {new_j}) falls below its diagonal block"
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_gives_unit_blocks() {
        let a = csc(4, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0)]);
        let form = block_triangular_form(&a).expect("nonsingular");
        assert_eq!(form.block_ptr.len(), 5);
        assert_block_upper(&a, &form);
    }

    #[test]
    fn irreducible_matrix_is_one_block() {
        // Dense 3×3: everything reaches everything.
        let mut entries = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                entries.push((r, c, 1.0 + (r * 3 + c) as f64));
            }
        }
        let a = csc(3, &entries);
        let form = block_triangular_form(&a).expect("nonsingular");
        assert_eq!(form.block_ptr, vec![0, 3]);
        assert_block_upper(&a, &form);
    }

    #[test]
    fn two_independent_blocks_partition() {
        // {0,1} coupled, {2,3} coupled, no cross terms.
        let a = csc(
            4,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (2, 2, 3.0),
                (2, 3, -1.0),
                (3, 2, -1.0),
                (3, 3, 3.0),
            ],
        );
        let form = block_triangular_form(&a).expect("nonsingular");
        assert_eq!(form.block_ptr.len(), 3);
        assert_block_upper(&a, &form);
        // Blocks partition 0..n.
        assert_eq!(*form.block_ptr.last().unwrap(), 4);
    }

    #[test]
    fn one_way_coupling_yields_upper_form() {
        // Block {0,1} feeds block {2}: entry (0, 2) couples column 2 into
        // rows of the first block. Upper form must place {2}'s columns
        // after {0,1}'s... or before, depending on edge direction — the
        // invariant checked is only block-upper-triangularity.
        let a = csc(
            3,
            &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0), (0, 2, 5.0), (2, 2, 1.0)],
        );
        let form = block_triangular_form(&a).expect("nonsingular");
        assert_block_upper(&a, &form);
        // Two blocks: the {0,1} cycle and the singleton {2}.
        assert_eq!(form.block_ptr.len(), 3);
    }

    #[test]
    fn structurally_singular_matrix_reports_column() {
        // Column 1 is empty: no transversal can exist.
        let a = csc(3, &[(0, 0, 1.0), (2, 2, 1.0), (0, 2, 1.0)]);
        assert!(block_triangular_form(&a).is_err());
    }

    #[test]
    fn zero_row_is_structurally_singular() {
        // Row 1 empty: columns can never cover it; some column fails.
        let a = csc(3, &[(0, 0, 1.0), (0, 1, 1.0), (2, 2, 1.0)]);
        assert!(block_triangular_form(&a).is_err());
    }

    #[test]
    fn permutations_are_permutations() {
        let a = csc(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (0, 0, 0.5),
                (3, 3, 0.5),
            ],
        );
        let form = block_triangular_form(&a).expect("nonsingular");
        for perm in [&form.row_perm, &form.col_perm] {
            let mut seen = vec![false; 4];
            for &p in perm {
                assert!(!seen[p]);
                seen[p] = true;
            }
        }
        assert_block_upper(&a, &form);
    }
}
