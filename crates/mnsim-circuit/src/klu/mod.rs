//! KLU-style sparse direct solver for the reduced nodal system.
//!
//! The classic KLU recipe (Davis & Palamadai Natarajan), reimplemented for
//! the crossbar workload:
//!
//! 1. **BTF** (`btf`): a maximum transversal puts nonzeros on the
//!    diagonal (or proves structural singularity), and Tarjan SCCs carve
//!    the matrix into independent diagonal blocks in block upper
//!    triangular form.
//! 2. **AMD** (`amd`): each block gets a fill-reducing
//!    approximate-minimum-degree ordering on its symmetrized pattern.
//! 3. **Numeric LU** (`factor`): left-looking Gilbert–Peierls
//!    factorization per block with diagonally-preferenced partial
//!    pivoting, recording a replay program.
//!
//! Steps 1–2 plus the replay program are the *symbolic* work, done once
//! per sparsity pattern ([`SymbolicAnalysis`] + the program cached inside
//! [`SparseLu`]). When only values change — fault overlays, variation
//! sweeps, weight reprogramming — [`SparseLu::refactor`] redoes only the
//! numeric pass over the cached pivot order at a fraction of the cost, and
//! [`SparseLu::refresh`] adds the contractual fallback: a pivot-growth or
//! singularity failure triggers one full refactorization with fresh
//! pivoting before giving up.
//!
//! On the symmetric diagonally-dominant systems crossbar stamping
//! produces, diagonal preference always keeps the diagonal pivot, so
//! `refactor` is **bit-identical** to a fresh `factor` on the same values
//! — the property that lets the batched fault path cache factorizations
//! without breaking the workspace-wide "bit-identical at any thread
//! count" contract.
//!
//! Everything here is deterministic: no randomization, ties broken by
//! index, identical inputs give identical factors on every run.

mod amd;
mod btf;
mod factor;

use crate::error::CircuitError;
use crate::sparse::CscMatrix;
use mnsim_obs as obs;

static KLU_ANALYSES: obs::Counter = obs::Counter::new("solver.klu.analyses");
static KLU_FACTORS: obs::Counter = obs::Counter::new("solver.klu.factors");
static KLU_REFACTORS: obs::Counter = obs::Counter::new("solver.klu.refactor");
static KLU_REFACTOR_FALLBACKS: obs::Counter = obs::Counter::new("solver.klu.refactor_fallbacks");
static KLU_SOLVES: obs::Counter = obs::Counter::new("solver.klu.solves");
static KLU_LU_NNZ: obs::Gauge = obs::Gauge::new("solver.klu.lu_nnz");

/// Why [`SparseLu::refactor`] refused to reuse the cached pivot order.
///
/// `PatternChanged` means the caller handed a structurally different
/// matrix — a programming error or a stale cache, never recoverable by
/// refactoring. The other two are numeric: values moved far enough that
/// the cached pivots are unusable, and a full factorization with fresh
/// pivoting (see [`SparseLu::refresh`]) is the documented fallback.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum RefactorError {
    /// The matrix's sparsity pattern differs from the analyzed one.
    PatternChanged,
    /// A pivot became exactly zero — the new values are singular under the
    /// cached pivot order.
    Singular {
        /// Permuted column index of the vanished pivot.
        at: usize,
    },
    /// The stored pivot fell below the growth threshold relative to its
    /// column maximum; fresh partial pivoting would choose differently.
    PivotGrowth {
        /// Permuted column index of the failing pivot.
        column: usize,
        /// Observed `|pivot| / column_max` at failure.
        ratio: f64,
    },
}

impl std::fmt::Display for RefactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefactorError::PatternChanged => {
                write!(f, "sparsity pattern differs from the analyzed structure")
            }
            RefactorError::Singular { at } => {
                write!(f, "pivot vanished at permuted column {at}")
            }
            RefactorError::PivotGrowth { column, ratio } => {
                write!(
                    f,
                    "pivot growth at permuted column {column}: |pivot|/colmax = {ratio:.3e}"
                )
            }
        }
    }
}

impl std::error::Error for RefactorError {}

/// The structure-only half of the factorization: BTF permutations, block
/// boundaries, per-block AMD orderings, and the pattern fingerprint that
/// gates refactorization. Computed once per sparsity pattern by
/// [`analyze`] and shared by every numeric factorization of that
/// structure.
#[derive(Debug, Clone)]
pub struct SymbolicAnalysis {
    n: usize,
    /// Final row permutation (BTF ∘ AMD), `row_perm[new] = old`.
    row_perm: Vec<usize>,
    /// Final column permutation, `col_perm[new] = old`.
    col_perm: Vec<usize>,
    /// Half-open diagonal-block boundaries over the permuted index space.
    block_ptr: Vec<usize>,
    /// [`CscMatrix::pattern_hash`] of the analyzed matrix.
    pattern_hash: u64,
}

impl SymbolicAnalysis {
    /// Matrix dimension the analysis was computed for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row permutation, `row_perm()[new] = old`.
    pub fn row_perm(&self) -> &[usize] {
        &self.row_perm
    }

    /// Column permutation, `col_perm()[new] = old`.
    pub fn col_perm(&self) -> &[usize] {
        &self.col_perm
    }

    /// Diagonal blocks as half-open `(start, end)` ranges over the
    /// permuted index space; together they partition `0..n`.
    pub fn block_ranges(&self) -> Vec<(usize, usize)> {
        self.block_ptr.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Number of BTF diagonal blocks.
    pub fn block_count(&self) -> usize {
        self.block_ptr.len().saturating_sub(1)
    }

    /// Pattern fingerprint of the analyzed matrix (see
    /// [`CscMatrix::pattern_hash`]); a matrix refactorizes against this
    /// analysis iff the hashes match.
    pub fn pattern_hash(&self) -> u64 {
        self.pattern_hash
    }

    /// Whether `a` has the same sparsity pattern as the analyzed matrix.
    pub fn compatible_with(&self, a: &CscMatrix) -> bool {
        a.cols() == self.n && a.rows() == self.n && a.pattern_hash() == self.pattern_hash
    }
}

/// Computes the symbolic analysis of a square matrix: BTF block form plus
/// a per-block AMD fill-reducing ordering.
///
/// # Errors
///
/// [`CircuitError::SingularSystem`] when the matrix is *structurally*
/// singular (no complete transversal exists) — no assignment of values
/// could ever make it factorizable.
pub fn analyze(a: &CscMatrix) -> Result<SymbolicAnalysis, CircuitError> {
    let n = a.cols();
    assert_eq!(a.rows(), n, "symbolic analysis requires a square matrix");
    let form = btf::block_triangular_form(a).map_err(|col| CircuitError::SingularSystem { at: col })?;

    // Per-block AMD on the symmetrized block pattern, composed into the
    // BTF permutations: new[s + i] = btf[s + amd[i]].
    let mut inv_row = vec![0usize; n];
    for (new, &old) in form.row_perm.iter().enumerate() {
        inv_row[old] = new;
    }
    let mut row_perm = form.row_perm.clone();
    let mut col_perm = form.col_perm.clone();
    for w in form.block_ptr.windows(2) {
        let (s, e) = (w[0], w[1]);
        let m = e - s;
        if m <= 2 {
            continue;
        }
        // Block-local symmetrized adjacency from A's pattern.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        for local_j in 0..m {
            let old_j = form.col_perm[s + local_j];
            for k in a.col_ptr()[old_j]..a.col_ptr()[old_j + 1] {
                let new_i = inv_row[a.row_idx()[k]];
                if new_i >= s && new_i < e {
                    let local_i = new_i - s;
                    if local_i != local_j {
                        adj[local_i].push(local_j);
                        adj[local_j].push(local_i);
                    }
                }
            }
        }
        let order = amd::min_degree_order(m, &adj);
        for (i, &local) in order.iter().enumerate() {
            row_perm[s + i] = form.row_perm[s + local];
            col_perm[s + i] = form.col_perm[s + local];
        }
    }

    KLU_ANALYSES.add(1);
    Ok(SymbolicAnalysis {
        n,
        row_perm,
        col_perm,
        block_ptr: form.block_ptr,
        pattern_hash: a.pattern_hash(),
    })
}

/// A sparse LU factorization: cached symbolic analysis + numeric factors
/// + the elimination replay program that powers [`SparseLu::refactor`].
#[derive(Debug, Clone)]
pub struct SparseLu {
    symbolic: SymbolicAnalysis,
    numeric: factor::Numeric,
}

impl SparseLu {
    /// Analyzes and factorizes `a` from scratch.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] for structural or numeric
    /// singularity, carrying the permuted column where elimination broke
    /// down.
    pub fn factor(a: &CscMatrix) -> Result<SparseLu, CircuitError> {
        let symbolic = analyze(a)?;
        SparseLu::factor_with(a, symbolic)
    }

    /// Factorizes `a` reusing an existing symbolic analysis (fresh
    /// pivoting, no ordering/BTF recomputation).
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] on numeric singularity, or when
    /// `a`'s pattern does not match `symbolic` (reported at column 0).
    pub fn factor_with(a: &CscMatrix, symbolic: SymbolicAnalysis) -> Result<SparseLu, CircuitError> {
        if !symbolic.compatible_with(a) {
            return Err(CircuitError::SingularSystem { at: 0 });
        }
        let numeric = factor::factorize(a, &symbolic.row_perm, &symbolic.col_perm, &symbolic.block_ptr)
            .map_err(|col| CircuitError::SingularSystem { at: col })?;
        KLU_FACTORS.add(1);
        KLU_LU_NNZ.set(numeric.lu_nnz() as f64);
        Ok(SparseLu { symbolic, numeric })
    }

    /// Numeric-only refresh for a matrix with the same pattern but new
    /// values: replays the cached pivot order and elimination program.
    ///
    /// On any `Err` the factorization is left in an unspecified numeric
    /// state and must not be used for solves until a successful
    /// [`SparseLu::factor_with`]/[`SparseLu::refresh`] — which is exactly
    /// what `refresh` automates.
    ///
    /// # Errors
    ///
    /// [`RefactorError::PatternChanged`] if `a` is not
    /// refactorization-compatible; [`RefactorError::Singular`] /
    /// [`RefactorError::PivotGrowth`] when the new values defeat the
    /// cached pivots.
    pub fn refactor(&mut self, a: &CscMatrix) -> Result<(), RefactorError> {
        if !self.symbolic.compatible_with(a) {
            return Err(RefactorError::PatternChanged);
        }
        self.numeric.refactor(a).map_err(|fail| match fail {
            factor::RefactorFail::Singular { column } => RefactorError::Singular { at: column },
            factor::RefactorFail::PivotGrowth { column, ratio } => {
                RefactorError::PivotGrowth { column, ratio }
            }
        })?;
        KLU_REFACTORS.add(1);
        Ok(())
    }

    /// Value refresh with the contractual fallback: try [`SparseLu::refactor`],
    /// and on pivot-growth or numeric-singularity failure redo a full
    /// factorization with fresh pivoting (same symbolic analysis). Returns
    /// `true` when the fast path sufficed.
    ///
    /// # Errors
    ///
    /// [`CircuitError::SingularSystem`] when even fresh pivoting cannot
    /// factorize the new values, or when `a`'s pattern does not match the
    /// cached analysis (pattern mismatches are never retried — they mean a
    /// stale cache, which the fallback could silently mask).
    pub fn refresh(&mut self, a: &CscMatrix) -> Result<bool, CircuitError> {
        match self.refactor(a) {
            Ok(()) => Ok(true),
            Err(RefactorError::PatternChanged) => Err(CircuitError::SingularSystem { at: 0 }),
            Err(RefactorError::Singular { .. }) | Err(RefactorError::PivotGrowth { .. }) => {
                KLU_REFACTOR_FALLBACKS.add(1);
                let fresh = SparseLu::factor_with(a, self.symbolic.clone())?;
                *self = fresh;
                Ok(false)
            }
        }
    }

    /// Solves `A x = b` in original (unpermuted) coordinates.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.symbolic.n, "right-hand side length mismatch");
        KLU_SOLVES.add(1);
        self.numeric.solve(b, &self.symbolic.row_perm, &self.symbolic.col_perm)
    }

    /// The cached symbolic analysis.
    pub fn symbolic(&self) -> &SymbolicAnalysis {
        &self.symbolic
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.symbolic.n
    }

    /// Stored nonzeros in L + U (fill metric, also exported as the
    /// `solver.klu.lu_nnz` gauge).
    pub fn lu_nnz(&self) -> usize {
        self.numeric.lu_nnz()
    }

    /// Reconstructs L·U (with permutations undone) as a dense matrix —
    /// test support for the `L·U ≈ A` invariant.
    #[cfg(test)]
    pub(crate) fn reconstruct_dense(&self) -> Vec<Vec<f64>> {
        self.numeric.reconstruct_dense(&self.symbolic.row_perm, &self.symbolic.col_perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletMatrix;

    fn csc(n: usize, entries: &[(usize, usize, f64)]) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for &(r, c, v) in entries {
            t.add(r, c, v);
        }
        t.to_csc()
    }

    /// A small SDD "laplacian + diagonal shift" system, the shape the
    /// reduced crossbar stamps produce.
    fn sdd_system(n: usize, shift: f64) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            let mut diag = shift;
            if i > 0 {
                t.add(i, i - 1, -1.0);
                diag += 1.0;
            }
            if i + 1 < n {
                t.add(i, i + 1, -1.0);
                diag += 1.0;
            }
            t.add(i, i, diag);
        }
        t.to_csc()
    }

    fn solve_dense_ref(a: &CscMatrix, b: &[f64]) -> Vec<f64> {
        let dense = crate::dense::DenseMatrix::from_rows(&a.to_dense());
        dense.solve(b).expect("reference dense solve")
    }

    #[test]
    fn identity_solve_is_exact() {
        let a = csc(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let lu = SparseLu::factor(&a).expect("identity factors");
        assert_eq!(lu.solve(&[3.0, -1.0, 2.5]), vec![3.0, -1.0, 2.5]);
    }

    #[test]
    fn sdd_solve_matches_dense() {
        let a = sdd_system(12, 0.5);
        let b: Vec<f64> = (0..12).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let lu = SparseLu::factor(&a).expect("factors");
        let x = lu.solve(&b);
        let x_ref = solve_dense_ref(&a, &b);
        for (xi, ri) in x.iter().zip(&x_ref) {
            assert!((xi - ri).abs() < 1e-10, "{xi} vs {ri}");
        }
    }

    #[test]
    fn unsymmetric_permuted_system_matches_dense() {
        // Zero diagonal forces the transversal to permute rows; entries
        // chosen so pivoting matters.
        let a = csc(
            4,
            &[
                (0, 1, 2.0),
                (0, 3, 1.0),
                (1, 0, 3.0),
                (1, 2, -1.0),
                (2, 1, 0.5),
                (2, 2, 4.0),
                (3, 0, -2.0),
                (3, 3, 5.0),
            ],
        );
        let b = [1.0, -2.0, 0.5, 3.0];
        let lu = SparseLu::factor(&a).expect("factors");
        let x = lu.solve(&b);
        let x_ref = solve_dense_ref(&a, &b);
        for (xi, ri) in x.iter().zip(&x_ref) {
            assert!((xi - ri).abs() < 1e-10, "{xi} vs {ri}");
        }
    }

    #[test]
    fn lu_reconstructs_a() {
        let a = sdd_system(9, 0.25);
        let lu = SparseLu::factor(&a).expect("factors");
        let rebuilt = lu.reconstruct_dense();
        let dense = a.to_dense();
        for i in 0..9 {
            for j in 0..9 {
                assert!(
                    (rebuilt[i][j] - dense[i][j]).abs() < 1e-12,
                    "L·U mismatch at ({i}, {j}): {} vs {}",
                    rebuilt[i][j],
                    dense[i][j]
                );
            }
        }
    }

    #[test]
    fn refactor_same_values_is_bit_identical() {
        let a = sdd_system(16, 0.75);
        let b: Vec<f64> = (0..16).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();
        let fresh = SparseLu::factor(&a).expect("factors");
        let mut replayed = fresh.clone();
        replayed.refactor(&a).expect("same pattern refactors");
        let x_fresh = fresh.solve(&b);
        let x_replay = replayed.solve(&b);
        for (f, r) in x_fresh.iter().zip(&x_replay) {
            assert_eq!(f.to_bits(), r.to_bits(), "refactor diverged from factor");
        }
    }

    #[test]
    fn refactor_new_values_matches_fresh_factor() {
        let a1 = sdd_system(10, 0.5);
        // Same pattern, scaled values.
        let mut t = TripletMatrix::new(10, 10);
        for j in 0..10 {
            for k in a1.col_ptr()[j]..a1.col_ptr()[j + 1] {
                t.add(a1.row_idx()[k], j, a1.values()[k] * 3.5);
            }
        }
        let a2 = t.to_csc();
        assert_eq!(a1.pattern_hash(), a2.pattern_hash());

        let mut lu = SparseLu::factor(&a1).expect("factors");
        lu.refactor(&a2).expect("same pattern");
        let fresh = SparseLu::factor(&a2).expect("factors");
        let b = vec![1.0; 10];
        let x_re = lu.solve(&b);
        let x_fr = fresh.solve(&b);
        for (r, f) in x_re.iter().zip(&x_fr) {
            assert_eq!(r.to_bits(), f.to_bits());
        }
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let a = sdd_system(6, 0.5);
        let other = csc(6, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0), (4, 4, 1.0), (5, 5, 1.0)]);
        let mut lu = SparseLu::factor(&a).expect("factors");
        assert_eq!(lu.refactor(&other), Err(RefactorError::PatternChanged));
    }

    #[test]
    fn structural_singularity_is_typed() {
        // Empty column 1.
        let a = csc(3, &[(0, 0, 1.0), (2, 2, 1.0), (1, 0, 1.0)]);
        assert!(matches!(analyze(&a), Err(CircuitError::SingularSystem { .. })));
    }

    #[test]
    fn numeric_singularity_is_typed() {
        // Structurally fine, numerically rank-deficient: two equal rows.
        let a = csc(2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 1.0), (1, 1, 2.0)]);
        assert!(matches!(SparseLu::factor(&a), Err(CircuitError::SingularSystem { .. })));
    }

    #[test]
    fn refresh_falls_back_on_pivot_collapse() {
        // Factor with a strong diagonal, then refresh with values that
        // zero the first pivot: the replay must fail and the fallback with
        // fresh pivoting must still produce the right answer.
        let a1 = csc(2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 4.0)]);
        let mut t = TripletMatrix::new(2, 2);
        t.add(0, 0, 1e-14);
        t.add(0, 1, 1.0);
        t.add(1, 0, 1.0);
        t.add(1, 1, 1e-14);
        let a2 = t.to_csc();
        assert_eq!(a1.pattern_hash(), a2.pattern_hash());

        let mut lu = SparseLu::factor(&a1).expect("factors");
        let fast = lu.refresh(&a2).expect("fallback succeeds");
        assert!(!fast, "pivot collapse must route through the fallback");
        let x = lu.solve(&[1.0, 2.0]);
        let x_ref = solve_dense_ref(&a2, &[1.0, 2.0]);
        for (xi, ri) in x.iter().zip(&x_ref) {
            assert!((xi - ri).abs() < 1e-9, "{xi} vs {ri}");
        }
    }

    #[test]
    fn block_ranges_partition_the_matrix() {
        let a = csc(
            5,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (2, 2, 1.0),
                (3, 3, 3.0),
                (3, 4, -1.0),
                (4, 3, -1.0),
                (4, 4, 3.0),
            ],
        );
        let sym = analyze(&a).expect("nonsingular");
        let ranges = sym.block_ranges();
        assert_eq!(ranges.first().map(|r| r.0), Some(0));
        assert_eq!(ranges.last().map(|r| r.1), Some(5));
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "blocks must tile 0..n contiguously");
        }
    }
}
