//! DC operating-point analysis.
//!
//! [`solve_dc`] computes the DC solution of a [`Circuit`]:
//!
//! 1. **Linear circuits** are solved in one shot. If every voltage source is
//!    referenced to ground (true for every crossbar netlist), the nodal
//!    matrix reduced over the driven nodes is symmetric positive-definite
//!    and the large-system path uses Jacobi-preconditioned conjugate
//!    gradients; small systems and circuits with floating sources use a
//!    dense LU over the full modified-nodal-analysis system.
//! 2. **Non-linear circuits** (memristors with a sinh I-V model) are solved
//!    by Newton-Raphson: each memristor is replaced by its companion model
//!    (differential conductance + equivalent current source) at the present
//!    operating point and the linear solve is repeated until the node
//!    voltages stop moving.

use std::collections::HashMap;

use mnsim_obs as obs;
use mnsim_tech::memristor::IvModel;

use crate::cg::{solve_cg, CgOptions};

static DC_SOLVES: obs::Counter = obs::Counter::new("circuit.solve.dc_solves");
static DC_SPAN: obs::Span = obs::Span::new("circuit.solve.dc");
static LINEAR_DENSE: obs::Counter = obs::Counter::new("circuit.solve.dense_lu");
static LINEAR_SPARSE: obs::Counter = obs::Counter::new("circuit.solve.sparse_lu");
static LINEAR_CG: obs::Counter = obs::Counter::new("circuit.solve.cg");
static LINEAR_FULL_MNA: obs::Counter = obs::Counter::new("circuit.solve.full_mna");
static NEWTON_ITERATIONS: obs::Counter = obs::Counter::new("circuit.solve.newton_iterations");
use crate::dense::DenseMatrix;
use crate::error::CircuitError;
use crate::mna::{Circuit, DcSolution, Element};
use crate::sparse::TripletMatrix;

/// Linear-solver selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Dense LU below `DENSE_CUTOFF` (96) unknowns, KLU-style sparse direct
    /// LU up to `SPARSE_CUTOFF` (200 000), conjugate gradients beyond (all for
    /// grounded-source systems; floating sources use full MNA).
    #[default]
    Auto,
    /// Force the dense LU path (exact, `O(n³)`).
    DenseLu,
    /// Force the sparse direct path ([`crate::klu`]; exact, fill-bounded).
    SparseLu,
    /// Force conjugate gradients (requires grounded voltage sources).
    Cg,
}

/// Options for [`solve_dc`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Linear-solver selection.
    pub method: Method,
    /// Conjugate-gradient parameters.
    pub cg: CgOptions,
    /// Newton convergence threshold on the largest node-voltage update, in
    /// volts.
    pub newton_tolerance: f64,
    /// Newton iteration cap.
    pub newton_max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            method: Method::Auto,
            cg: CgOptions::default(),
            newton_tolerance: 1e-9,
            newton_max_iterations: 60,
        }
    }
}

/// Number of unknowns below which `Method::Auto` prefers the dense LU.
/// Shared with [`crate::batch`] so prepared systems pick the same path.
pub(crate) const DENSE_CUTOFF: usize = 96;

/// Number of unknowns at which `Method::Auto` stops using the sparse
/// direct path and switches to conjugate gradients: a 256×256 crossbar
/// (~131k unknowns) still factorizes comfortably, while 512×512 (~524k)
/// would pay more in fill memory than CG pays in iterations.
pub(crate) const SPARSE_CUTOFF: usize = 200_000;

/// The concrete linear engine a reduced (grounded-source) solve uses.
/// Shared with [`crate::batch`] so prepared systems pick the same path as
/// one-shot solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinearEngine {
    /// Dense LU with partial pivoting.
    Dense,
    /// KLU-style sparse direct LU ([`crate::klu`]).
    Sparse,
    /// Jacobi-preconditioned conjugate gradients.
    Cg,
}

/// `Method::Auto` engine choice by problem size.
pub(crate) fn auto_engine(unknowns: usize) -> LinearEngine {
    if unknowns < DENSE_CUTOFF {
        LinearEngine::Dense
    } else if unknowns < SPARSE_CUTOFF {
        LinearEngine::Sparse
    } else {
        LinearEngine::Cg
    }
}

/// One linearized conductive branch: `I(n1→n2) = g·(v1 − v2) + i_eq`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Linearized {
    pub(crate) g: f64,
    pub(crate) ieq: f64,
}

/// Solves the DC operating point of `circuit`.
///
/// # Errors
///
/// Propagates solver failures ([`CircuitError::SingularSystem`],
/// [`CircuitError::LinearNoConvergence`],
/// [`CircuitError::NewtonNoConvergence`]) and topology errors (a node driven
/// by two conflicting sources, CG requested for floating sources).
pub fn solve_dc(circuit: &Circuit, options: &SolveOptions) -> Result<DcSolution, CircuitError> {
    let _span = DC_SPAN.enter();
    let _trace_span = obs::trace::span("circuit.solve_dc", obs::trace::Level::Stage);
    DC_SOLVES.inc();
    if circuit.is_nonlinear() {
        solve_newton(circuit, options)
    } else {
        let lin = linearize(circuit, None);
        let voltages = solve_linear(circuit, &lin, options)?;
        finish(circuit, &lin, voltages)
    }
}

/// Newton-Raphson outer loop for circuits with non-linear memristors.
fn solve_newton(circuit: &Circuit, options: &SolveOptions) -> Result<DcSolution, CircuitError> {
    // Initial operating point: every memristor at its low-field resistance.
    let lin0 = linearize(circuit, None);
    let mut voltages = solve_linear(circuit, &lin0, options)?;

    for _ in 0..options.newton_max_iterations {
        NEWTON_ITERATIONS.inc();
        let lin = linearize(circuit, Some(&voltages));
        let next = solve_linear(circuit, &lin, options)?;
        let max_update = voltages
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        voltages = next;
        if max_update < options.newton_tolerance {
            let lin = linearize(circuit, Some(&voltages));
            return finish(circuit, &lin, voltages);
        }
    }

    Err(CircuitError::NewtonNoConvergence {
        iterations: options.newton_max_iterations,
        last_update: f64::NAN,
    })
}

/// Produces the per-element linearization. `operating_point` supplies node
/// voltages for the Newton companion models; `None` linearizes memristors at
/// their low-field state.
pub(crate) fn linearize(
    circuit: &Circuit,
    operating_point: Option<&[f64]>,
) -> Vec<Option<Linearized>> {
    circuit
        .elements()
        .iter()
        .map(|element| match element {
            Element::Resistor { resistance, .. } => Some(Linearized {
                g: 1.0 / resistance.ohms(),
                ieq: 0.0,
            }),
            Element::Memristor { n1, n2, state, iv } => match (iv, operating_point) {
                (IvModel::Linear, _) | (_, None) => Some(Linearized {
                    g: 1.0 / state.ohms(),
                    ieq: 0.0,
                }),
                (IvModel::Sinh { .. }, Some(v)) => {
                    let vd = v[*n1] - v[*n2];
                    let bias = mnsim_tech::units::Voltage::from_volts(vd);
                    let g_d = 1.0 / iv.differential_resistance(*state, bias).ohms();
                    let i = iv.current(*state, bias).amperes();
                    Some(Linearized {
                        g: g_d,
                        ieq: i - g_d * vd,
                    })
                }
            },
            Element::VoltageSource { .. } | Element::CurrentSource { .. } => None,
            // Capacitors are open circuits at DC; the transient solver
            // replaces them with backward-Euler companions.
            Element::Capacitor { .. } => None,
        })
        .collect()
}

/// Classification of the voltage sources in a circuit.
struct SourceInfo {
    /// node → fixed voltage, for grounded sources.
    driven: HashMap<usize, f64>,
    /// `true` if every source has one terminal at ground.
    all_grounded: bool,
}

fn classify_sources(circuit: &Circuit) -> Result<SourceInfo, CircuitError> {
    let mut driven = HashMap::new();
    let mut all_grounded = true;
    for element in circuit.elements() {
        if let Element::VoltageSource {
            npos,
            nneg,
            voltage,
        } = element
        {
            let (node, value) = if *nneg == Circuit::GROUND {
                (*npos, voltage.volts())
            } else if *npos == Circuit::GROUND {
                (*nneg, -voltage.volts())
            } else {
                all_grounded = false;
                continue;
            };
            if let Some(existing) = driven.insert(node, value) {
                if existing != value {
                    return Err(CircuitError::InvalidElement {
                        reason: format!(
                            "node {node} driven to both {existing} V and {value} V"
                        ),
                    });
                }
            }
        }
    }
    Ok(SourceInfo {
        driven,
        all_grounded,
    })
}

/// Solves the linearized circuit, returning the full node-voltage vector.
pub(crate) fn solve_linear(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
    options: &SolveOptions,
) -> Result<Vec<f64>, CircuitError> {
    let sources = classify_sources(circuit)?;
    let reduced_ok = sources.all_grounded;

    match options.method {
        Method::Cg => {
            if !reduced_ok {
                return Err(CircuitError::InvalidElement {
                    reason: "conjugate-gradient path requires all voltage sources grounded"
                        .into(),
                });
            }
            solve_reduced(circuit, lin, &sources, options, LinearEngine::Cg)
        }
        Method::DenseLu => {
            if reduced_ok {
                solve_reduced(circuit, lin, &sources, options, LinearEngine::Dense)
            } else {
                solve_full_mna(circuit, lin)
            }
        }
        Method::SparseLu => {
            if reduced_ok {
                solve_reduced(circuit, lin, &sources, options, LinearEngine::Sparse)
            } else {
                solve_full_mna(circuit, lin)
            }
        }
        Method::Auto => {
            if reduced_ok {
                let unknowns = circuit.node_count() - 1 - sources.driven.len();
                solve_reduced(circuit, lin, &sources, options, auto_engine(unknowns))
            } else {
                solve_full_mna(circuit, lin)
            }
        }
    }
}

/// Reduced nodal solve: unknowns are all nodes that are neither ground nor
/// driven; the system is SPD.
fn solve_reduced(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
    sources: &SourceInfo,
    options: &SolveOptions,
    engine: LinearEngine,
) -> Result<Vec<f64>, CircuitError> {
    let n_nodes = circuit.node_count();
    // Map node → unknown index.
    let mut index = vec![usize::MAX; n_nodes];
    let mut unknowns = 0usize;
    for (node, slot) in index.iter_mut().enumerate().skip(1) {
        if !sources.driven.contains_key(&node) {
            *slot = unknowns;
            unknowns += 1;
        }
    }

    let fixed_voltage = |node: usize| -> Option<f64> {
        if node == Circuit::GROUND {
            Some(0.0)
        } else {
            sources.driven.get(&node).copied()
        }
    };

    let mut triplets = TripletMatrix::new(unknowns, unknowns);
    let mut b = vec![0.0; unknowns];

    for (idx, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { n1, n2, .. }
            | Element::Memristor { n1, n2, .. }
            | Element::Capacitor { n1, n2, .. } => {
                // Capacitors only carry a companion in transient mode.
                let Some(Linearized { g, ieq }) = lin[idx] else {
                    continue;
                };
                stamp_conductance(
                    &mut triplets,
                    &mut b,
                    &index,
                    &fixed_voltage,
                    *n1,
                    *n2,
                    g,
                    ieq,
                );
            }
            Element::CurrentSource { from, to, current } => {
                let i = current.amperes();
                if index[*from] != usize::MAX {
                    b[index[*from]] -= i;
                }
                if index[*to] != usize::MAX {
                    b[index[*to]] += i;
                }
            }
            Element::VoltageSource { .. } => {} // encoded via `driven`
        }
    }

    let x = if unknowns == 0 {
        Vec::new()
    } else {
        match engine {
            LinearEngine::Dense => {
                LINEAR_DENSE.inc();
                let csr = triplets.to_csr();
                DenseMatrix::from_rows(&csr.to_dense()).solve(&b)?
            }
            LinearEngine::Sparse => {
                LINEAR_SPARSE.inc();
                let csc = triplets.to_csc();
                crate::klu::SparseLu::factor(&csc)?.solve(&b)
            }
            LinearEngine::Cg => {
                LINEAR_CG.inc();
                let csr = triplets.to_csr();
                solve_cg(&csr, &b, &options.cg)?.0
            }
        }
    };

    // Reassemble the full voltage vector.
    let mut voltages = vec![0.0; n_nodes];
    for node in 1..n_nodes {
        voltages[node] = if let Some(v) = fixed_voltage(node) {
            v
        } else {
            x[index[node]]
        };
    }
    Ok(voltages)
}

/// Stamps one conductive branch with equivalent current into the reduced
/// system.
#[allow(clippy::too_many_arguments)]
fn stamp_conductance(
    triplets: &mut TripletMatrix,
    b: &mut [f64],
    index: &[usize],
    fixed_voltage: &dyn Fn(usize) -> Option<f64>,
    n1: usize,
    n2: usize,
    g: f64,
    ieq: f64,
) {
    let i1 = index[n1];
    let i2 = index[n2];
    // KCL at n1: +g(v1 − v2) + ieq ; at n2: −g(v1 − v2) − ieq.
    if i1 != usize::MAX {
        triplets.add(i1, i1, g);
        match fixed_voltage(n2) {
            Some(v2) => b[i1] += g * v2,
            None => triplets.add(i1, i2, -g),
        }
        b[i1] -= ieq;
    }
    if i2 != usize::MAX {
        triplets.add(i2, i2, g);
        match fixed_voltage(n1) {
            Some(v1) => b[i2] += g * v1,
            None => triplets.add(i2, i1, -g),
        }
        b[i2] += ieq;
    }
}

/// Full modified nodal analysis with explicit source branch currents
/// (handles floating sources; dense LU).
fn solve_full_mna(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
) -> Result<Vec<f64>, CircuitError> {
    LINEAR_FULL_MNA.inc();
    let n_nodes = circuit.node_count();
    let n_v = n_nodes - 1; // unknown node voltages (ground excluded)
    let sources: Vec<usize> = circuit
        .elements()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Element::VoltageSource { .. }))
        .map(|(i, _)| i)
        .collect();
    let n = n_v + sources.len();
    let mut a = DenseMatrix::zeros(n);
    let mut b = vec![0.0; n];

    // node id → matrix row (ground has none).
    let row = |node: usize| -> Option<usize> {
        if node == Circuit::GROUND {
            None
        } else {
            Some(node - 1)
        }
    };

    for (idx, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { n1, n2, .. }
            | Element::Memristor { n1, n2, .. }
            | Element::Capacitor { n1, n2, .. } => {
                let Some(Linearized { g, ieq }) = lin[idx] else {
                    continue;
                };
                if let Some(r1) = row(*n1) {
                    a[(r1, r1)] += g;
                    if let Some(r2) = row(*n2) {
                        a[(r1, r2)] -= g;
                    }
                    b[r1] -= ieq;
                }
                if let Some(r2) = row(*n2) {
                    a[(r2, r2)] += g;
                    if let Some(r1) = row(*n1) {
                        a[(r2, r1)] -= g;
                    }
                    b[r2] += ieq;
                }
            }
            Element::CurrentSource { from, to, current } => {
                if let Some(r) = row(*from) {
                    b[r] -= current.amperes();
                }
                if let Some(r) = row(*to) {
                    b[r] += current.amperes();
                }
            }
            Element::VoltageSource { .. } => {}
        }
    }

    for (k, &src_idx) in sources.iter().enumerate() {
        if let Element::VoltageSource {
            npos,
            nneg,
            voltage,
        } = &circuit.elements()[src_idx]
        {
            let col = n_v + k;
            if let Some(r) = row(*npos) {
                a[(r, col)] += 1.0;
                a[(col, r)] += 1.0;
            }
            if let Some(r) = row(*nneg) {
                a[(r, col)] -= 1.0;
                a[(col, r)] -= 1.0;
            }
            b[col] = voltage.volts();
        }
    }

    let x = a.solve(&b)?;
    let mut voltages = vec![0.0; n_nodes];
    voltages[1..n_nodes].copy_from_slice(&x[..n_v]);
    Ok(voltages)
}

/// Computes per-element branch currents and wraps the solution.
pub(crate) fn finish(
    circuit: &Circuit,
    lin: &[Option<Linearized>],
    voltages: Vec<f64>,
) -> Result<DcSolution, CircuitError> {
    let mut currents = vec![0.0; circuit.element_count()];

    for (idx, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { n1, n2, .. }
            | Element::Memristor { n1, n2, .. }
            | Element::Capacitor { n1, n2, .. } => {
                // Capacitors carry zero current at DC (no companion).
                if let Some(Linearized { g, ieq }) = lin[idx] {
                    currents[idx] = g * (voltages[*n1] - voltages[*n2]) + ieq;
                }
            }
            Element::CurrentSource { current, .. } => {
                currents[idx] = current.amperes();
            }
            Element::VoltageSource { .. } => {} // second pass below
        }
    }

    // Voltage-source branch currents by KCL at the positive terminal:
    // i_branch (npos → nneg internal) = −(current delivered into the node).
    for (idx, element) in circuit.elements().iter().enumerate() {
        if let Element::VoltageSource { npos, nneg, .. } = element {
            let node = if *npos != Circuit::GROUND { *npos } else { *nneg };
            let sign = if *npos != Circuit::GROUND { 1.0 } else { -1.0 };
            let mut leaving = 0.0;
            for (jdx, other) in circuit.elements().iter().enumerate() {
                if jdx == idx {
                    continue;
                }
                match other {
                    Element::Resistor { n1, n2, .. }
                    | Element::Memristor { n1, n2, .. }
                    | Element::Capacitor { n1, n2, .. } => {
                        if *n1 == node {
                            leaving += currents[jdx];
                        } else if *n2 == node {
                            leaving -= currents[jdx];
                        }
                    }
                    Element::CurrentSource { from, to, .. } => {
                        if *from == node {
                            leaving += currents[jdx];
                        } else if *to == node {
                            leaving -= currents[jdx];
                        }
                    }
                    Element::VoltageSource { .. } => {
                        // Series ideal sources on a non-ground node would
                        // need the full-MNA current; grounded crossbar
                        // netlists never hit this.
                    }
                }
            }
            currents[idx] = sign * -leaving;
        }
    }

    Ok(DcSolution::new(voltages, currents))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::units::{Current, Resistance, Voltage};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn voltage_divider() {
        let mut c = Circuit::new();
        let top = c.add_node();
        let mid = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(10.0))
            .unwrap();
        c.add_resistor(top, mid, Resistance::from_kilo_ohms(1.0))
            .unwrap();
        c.add_resistor(mid, Circuit::GROUND, Resistance::from_kilo_ohms(3.0))
            .unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert_close(sol.voltage(mid).volts(), 7.5, 1e-9);
    }

    #[test]
    fn divider_matches_on_all_methods() {
        let mut c = Circuit::new();
        let top = c.add_node();
        let mid = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_resistor(top, mid, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_resistor(mid, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        for method in [Method::Auto, Method::DenseLu, Method::SparseLu, Method::Cg] {
            let options = SolveOptions {
                method,
                ..SolveOptions::default()
            };
            let sol = solve_dc(&c, &options).unwrap();
            assert_close(sol.voltage(mid).volts(), 0.5, 1e-8);
        }
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n = c.add_node();
        c.add_current_source(Circuit::GROUND, n, Current::from_amperes(2e-3))
            .unwrap();
        c.add_resistor(n, Circuit::GROUND, Resistance::from_kilo_ohms(1.0))
            .unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert_close(sol.voltage(n).volts(), 2.0, 1e-9);
    }

    #[test]
    fn wheatstone_bridge_balance() {
        // Balanced bridge: zero volts across the detector resistor.
        let mut c = Circuit::new();
        let top = c.add_node();
        let left = c.add_node();
        let right = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(5.0))
            .unwrap();
        let r = Resistance::from_kilo_ohms(1.0);
        c.add_resistor(top, left, r).unwrap();
        c.add_resistor(top, right, r).unwrap();
        c.add_resistor(left, Circuit::GROUND, r).unwrap();
        c.add_resistor(right, Circuit::GROUND, r).unwrap();
        c.add_resistor(left, right, Resistance::from_ohms(123.0))
            .unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert_close(
            sol.voltage(left).volts() - sol.voltage(right).volts(),
            0.0,
            1e-9,
        );
    }

    #[test]
    fn source_power_equals_dissipated_power() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(3.0))
            .unwrap();
        c.add_resistor(a, b, Resistance::from_ohms(150.0)).unwrap();
        c.add_resistor(b, Circuit::GROUND, Resistance::from_ohms(150.0))
            .unwrap();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(300.0))
            .unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert_close(
            sol.source_power(&c).watts(),
            sol.dissipated_power(&c).watts(),
            1e-12,
        );
        // P = V²/Req, Req = 300 ∥ 300 = 150 → P = 9/150 = 60 mW
        assert_close(sol.source_power(&c).watts(), 0.06, 1e-9);
    }

    #[test]
    fn floating_source_uses_full_mna() {
        // Source floating between two nodes, each tied to ground by R.
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_resistor(b, Circuit::GROUND, Resistance::from_ohms(100.0))
            .unwrap();
        c.add_voltage_source(a, b, Voltage::from_volts(2.0)).unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert_close(sol.voltage(a).volts() - sol.voltage(b).volts(), 2.0, 1e-9);
        // Symmetry: va = +1, vb = −1.
        assert_close(sol.voltage(a).volts(), 1.0, 1e-9);
        assert_close(sol.voltage(b).volts(), -1.0, 1e-9);
    }

    #[test]
    fn cg_rejects_floating_sources() {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(1.0))
            .unwrap();
        c.add_resistor(b, Circuit::GROUND, Resistance::from_ohms(1.0))
            .unwrap();
        c.add_voltage_source(a, b, Voltage::from_volts(1.0)).unwrap();
        let options = SolveOptions {
            method: Method::Cg,
            ..SolveOptions::default()
        };
        assert!(solve_dc(&c, &options).is_err());
    }

    #[test]
    fn conflicting_drivers_rejected() {
        let mut c = Circuit::new();
        let a = c.add_node();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(2.0))
            .unwrap();
        c.add_resistor(a, Circuit::GROUND, Resistance::from_ohms(1.0))
            .unwrap();
        assert!(matches!(
            solve_dc(&c, &SolveOptions::default()),
            Err(CircuitError::InvalidElement { .. })
        ));
    }

    #[test]
    fn nonlinear_memristor_draws_more_current() {
        // sinh model conducts more at bias than the linear state resistance.
        let build = |iv: IvModel| {
            let mut c = Circuit::new();
            let a = c.add_node();
            c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
                .unwrap();
            let m = c
                .add_memristor(a, Circuit::GROUND, Resistance::from_kilo_ohms(10.0), iv)
                .unwrap();
            (c, m)
        };
        let (lin_c, lin_m) = build(IvModel::Linear);
        let (non_c, non_m) = build(IvModel::Sinh { alpha: 2.0 });
        let lin_sol = solve_dc(&lin_c, &SolveOptions::default()).unwrap();
        let non_sol = solve_dc(&non_c, &SolveOptions::default()).unwrap();
        let i_lin = lin_sol.element_current(lin_m).amperes();
        let i_non = non_sol.element_current(non_m).amperes();
        assert!(i_non > i_lin, "{i_non} vs {i_lin}");
        // Analytic check: I = sinh(2·1)/(2·10k)
        assert_close(i_non, (2.0f64).sinh() / 2.0e4, 1e-9);
    }

    #[test]
    fn newton_converges_on_divider_with_memristor() {
        // Series resistor + nonlinear memristor: solve and verify KCL.
        let mut c = Circuit::new();
        let top = c.add_node();
        let mid = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        let r = c
            .add_resistor(top, mid, Resistance::from_kilo_ohms(5.0))
            .unwrap();
        let m = c
            .add_memristor(
                mid,
                Circuit::GROUND,
                Resistance::from_kilo_ohms(10.0),
                IvModel::Sinh { alpha: 3.0 },
            )
            .unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        let i_r = sol.element_current(r).amperes();
        let i_m = sol.element_current(m).amperes();
        assert_close(i_r, i_m, 1e-12);
        // The memristor's extra conduction pulls mid below the linear 2/3 V.
        assert!(sol.voltage(mid).volts() < 2.0 / 3.0);
        assert!(sol.voltage(mid).volts() > 0.0);
    }

    #[test]
    fn newton_iteration_budget() {
        let mut c = Circuit::new();
        let a = c.add_node();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.0))
            .unwrap();
        c.add_memristor(
            a,
            Circuit::GROUND,
            Resistance::from_kilo_ohms(1.0),
            IvModel::Sinh { alpha: 2.0 },
        )
        .unwrap();
        let options = SolveOptions {
            newton_max_iterations: 0,
            ..SolveOptions::default()
        };
        assert!(matches!(
            solve_dc(&c, &options),
            Err(CircuitError::NewtonNoConvergence { .. })
        ));
    }

    #[test]
    fn superposition_on_linear_network() {
        // v(both sources) == v(source1) + v(source2) for a linear circuit.
        let build = |v1: f64, v2: f64| {
            let mut c = Circuit::new();
            let a = c.add_node();
            let b = c.add_node();
            let mid = c.add_node();
            c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(v1))
                .unwrap();
            c.add_voltage_source(b, Circuit::GROUND, Voltage::from_volts(v2))
                .unwrap();
            c.add_resistor(a, mid, Resistance::from_ohms(100.0)).unwrap();
            c.add_resistor(b, mid, Resistance::from_ohms(220.0)).unwrap();
            c.add_resistor(mid, Circuit::GROUND, Resistance::from_ohms(330.0))
                .unwrap();
            let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
            sol.voltage(mid).volts()
        };
        let both = build(1.0, 2.0);
        let only1 = build(1.0, 0.0);
        let only2 = build(0.0, 2.0);
        assert_close(both, only1 + only2, 1e-9);
    }
}
