//! SPICE netlist export and import.
//!
//! MNSIM can emit its generated circuits as SPICE-compatible netlists so
//! that designers can continue in a transistor-level simulator (paper
//! §IV.A, last paragraph). The emitted dialect is the common denominator:
//! `R`/`V`/`I` cards with integer node names and a final `.end`.
//!
//! Non-linear memristors are exported as resistor cards at their programmed
//! state resistance, annotated with a comment carrying the sinh coefficient —
//! the importer restores them as memristor elements.

use mnsim_tech::memristor::IvModel;
use mnsim_tech::units::{Capacitance, Current, Resistance, Voltage};

use crate::error::CircuitError;
use crate::mna::{Circuit, Element};

/// Serializes a circuit to SPICE netlist text.
pub fn to_netlist(circuit: &Circuit, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("* {title}\n"));
    out.push_str(&format!("* nodes: {}\n", circuit.node_count()));
    for (idx, element) in circuit.elements().iter().enumerate() {
        match element {
            Element::Resistor { n1, n2, resistance } => {
                out.push_str(&format!("R{idx} {n1} {n2} {:.12e}\n", resistance.ohms()));
            }
            Element::VoltageSource {
                npos,
                nneg,
                voltage,
            } => {
                out.push_str(&format!("V{idx} {npos} {nneg} DC {:.12e}\n", voltage.volts()));
            }
            Element::CurrentSource { from, to, current } => {
                out.push_str(&format!("I{idx} {from} {to} DC {:.12e}\n", current.amperes()));
            }
            Element::Capacitor {
                n1,
                n2,
                capacitance,
            } => {
                out.push_str(&format!("C{idx} {n1} {n2} {:.12e}\n", capacitance.farads()));
            }
            Element::Memristor { n1, n2, state, iv } => {
                match iv {
                    IvModel::Linear => {
                        out.push_str(&format!("* memristor linear\nRM{idx} {n1} {n2} {:.12e}\n", state.ohms()));
                    }
                    IvModel::Sinh { alpha } => {
                        out.push_str(&format!(
                            "* memristor sinh alpha={alpha:.12e}\nRM{idx} {n1} {n2} {:.12e}\n",
                            state.ohms()
                        ));
                    }
                }
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// Parses netlist text produced by [`to_netlist`] (or hand-written in the
/// same dialect) back into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::NetlistParse`] with the offending line number on
/// malformed input.
pub fn from_netlist(text: &str) -> Result<Circuit, CircuitError> {
    let mut circuit = Circuit::new();
    let mut pending_memristor: Option<IvModel> = None;

    let parse_err = |line: usize, reason: &str| CircuitError::NetlistParse {
        line,
        reason: reason.to_string(),
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line_number = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('*') {
            let comment = comment.trim();
            if comment == "memristor linear" {
                pending_memristor = Some(IvModel::Linear);
            } else if let Some(rest) = comment.strip_prefix("memristor sinh alpha=") {
                let alpha: f64 = rest
                    .parse()
                    .map_err(|_| parse_err(line_number, "bad sinh alpha"))?;
                pending_memristor = Some(IvModel::Sinh { alpha });
            }
            continue;
        }
        if line.eq_ignore_ascii_case(".end") {
            break;
        }

        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 4 {
            return Err(parse_err(line_number, "expected `<card> n1 n2 [DC] value`"));
        }
        let card = tokens[0];
        let n1: usize = tokens[1]
            .parse()
            .map_err(|_| parse_err(line_number, "bad node id"))?;
        let n2: usize = tokens[2]
            .parse()
            .map_err(|_| parse_err(line_number, "bad node id"))?;
        let value_token = if tokens[3].eq_ignore_ascii_case("dc") {
            *tokens
                .get(4)
                .ok_or_else(|| parse_err(line_number, "missing DC value"))?
        } else {
            tokens[3]
        };
        let value: f64 = value_token
            .parse()
            .map_err(|_| parse_err(line_number, "bad element value"))?;

        while circuit.node_count() <= n1.max(n2) {
            circuit.add_node();
        }

        let first = card.chars().next().unwrap_or(' ').to_ascii_uppercase();
        let result = match first {
            'R' => {
                if let Some(iv) = pending_memristor.take() {
                    circuit
                        .add_memristor(n1, n2, Resistance::from_ohms(value), iv)
                        .map(|_| ())
                } else {
                    circuit
                        .add_resistor(n1, n2, Resistance::from_ohms(value))
                        .map(|_| ())
                }
            }
            'V' => circuit
                .add_voltage_source(n1, n2, Voltage::from_volts(value))
                .map(|_| ()),
            'I' => circuit
                .add_current_source(n1, n2, Current::from_amperes(value))
                .map(|_| ()),
            'C' => circuit
                .add_capacitor(n1, n2, Capacitance::from_farads(value))
                .map(|_| ()),
            other => {
                return Err(parse_err(
                    line_number,
                    &format!("unsupported element card `{other}`"),
                ))
            }
        };
        result.map_err(|e| parse_err(line_number, &e.to_string()))?;
    }

    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{solve_dc, SolveOptions};

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new();
        let a = c.add_node();
        let b = c.add_node();
        c.add_voltage_source(a, Circuit::GROUND, Voltage::from_volts(1.5))
            .unwrap();
        c.add_resistor(a, b, Resistance::from_ohms(220.0)).unwrap();
        c.add_memristor(
            b,
            Circuit::GROUND,
            Resistance::from_kilo_ohms(4.7),
            IvModel::Sinh { alpha: 1.5 },
        )
        .unwrap();
        c.add_current_source(Circuit::GROUND, b, Current::from_microamperes(10.0))
            .unwrap();
        c
    }

    #[test]
    fn export_contains_all_cards() {
        let text = to_netlist(&sample_circuit(), "sample");
        assert!(text.starts_with("* sample\n"));
        assert!(text.contains("V0 1 0 DC"));
        assert!(text.contains("R1 1 2"));
        assert!(text.contains("* memristor sinh alpha="));
        assert!(text.contains("RM2 2 0"));
        assert!(text.contains("I3 0 2 DC"));
        assert!(text.trim_end().ends_with(".end"));
    }

    #[test]
    fn roundtrip_preserves_solution() {
        let original = sample_circuit();
        let text = to_netlist(&original, "roundtrip");
        let restored = from_netlist(&text).unwrap();
        assert_eq!(restored.element_count(), original.element_count());
        assert!(restored.is_nonlinear());

        let options = SolveOptions::default();
        let sol_a = solve_dc(&original, &options).unwrap();
        let sol_b = solve_dc(&restored, &options).unwrap();
        for node in 0..original.node_count() {
            assert!(
                (sol_a.voltage(node).volts() - sol_b.voltage(node).volts()).abs() < 1e-9,
                "node {node}"
            );
        }
    }

    #[test]
    fn parse_hand_written_netlist() {
        let text = "* divider\nV1 1 0 DC 10\nR1 1 2 1000\nR2 2 0 3000\n.end\n";
        let c = from_netlist(text).unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert!((sol.voltage(2).volts() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn parse_value_without_dc_keyword() {
        let text = "V1 1 0 5.0\nR1 1 0 100\n";
        let c = from_netlist(text).unwrap();
        let sol = solve_dc(&c, &SolveOptions::default()).unwrap();
        assert!((sol.voltage(1).volts() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let text = "R1 1 0 100\nX9 1 0 5\n";
        match from_netlist(text) {
            Err(CircuitError::NetlistParse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }

        let text = "R1 1 zero 100\n";
        assert!(matches!(
            from_netlist(text),
            Err(CircuitError::NetlistParse { line: 1, .. })
        ));

        let text = "R1 1 0\n";
        assert!(from_netlist(text).is_err());
    }

    #[test]
    fn lines_after_end_are_ignored() {
        let text = "R1 1 0 50\n.end\ngarbage that should not parse\n";
        assert!(from_netlist(text).is_ok());
    }
}
