//! Scaling check of the DC solver on worst-case crossbars: solve time and
//! the wire-induced output droop per size.
//!
//! ```text
//! cargo run --release -p mnsim-circuit --example perf_check
//! ```

use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_circuit::solve::{solve_dc, SolveOptions};
use mnsim_tech::units::{Resistance, Voltage};
use std::time::Instant;

fn main() {
    println!("{:>6} {:>14} {:>12} {:>12}", "size", "solve time", "worst col", "ideal");
    for size in [16usize, 32, 64, 128, 256] {
        let spec = CrossbarSpec::uniform(
            size,
            size,
            Resistance::from_ohms(500.0),
            Resistance::from_ohms(2.9),
            Resistance::from_ohms(500.0),
            Voltage::from_volts(0.5),
        );
        let xbar = spec.build().expect("valid spec");
        let start = Instant::now();
        let solution = solve_dc(xbar.circuit(), &SolveOptions::default()).expect("solvable");
        let elapsed = start.elapsed();
        let out = xbar.output_voltages(&solution);
        println!(
            "{size:>6} {elapsed:>14.2?} {:>11.5}V {:>11.5}V",
            out[size - 1].volts(),
            spec.ideal_output_voltages()[size - 1].volts()
        );
    }
}
