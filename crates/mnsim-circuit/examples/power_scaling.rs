//! Wire-ladder power saturation: circuit-measured crossbar power vs the
//! naive M·N·V²/R rule and the transmission-line estimate. This is the
//! measurement behind the power-model refinement in
//! `mnsim_core::modules::crossbar` (see DESIGN.md §11).
//!
//! ```text
//! cargo run --release -p mnsim-circuit --example power_scaling
//! ```

use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_circuit::solve::{solve_dc, SolveOptions};
use mnsim_tech::units::{Resistance, Voltage};

fn main() {
    let v = 0.5_f64 / 2.0_f64.sqrt(); // RMS of a 0.5 V read at 50 % activity
    let r_cell = 999.0; // harmonic mean of [500 Ω, 500 kΩ]
    for r_seg in [0.86_f64, 2.7] {
        println!("wire segment r = {r_seg} Ω");
        for size in [8usize, 16, 32, 64, 128] {
            let spec = CrossbarSpec::uniform(
                size,
                size,
                Resistance::from_ohms(r_cell),
                Resistance::from_ohms(r_seg),
                Resistance::from_ohms(10.0),
                Voltage::from_volts(v),
            );
            let xbar = spec.build().expect("valid spec");
            let solution =
                solve_dc(xbar.circuit(), &SolveOptions::default()).expect("solvable");
            let measured = solution.dissipated_power(xbar.circuit()).watts();
            let naive = (size * size) as f64 * v * v / r_cell;
            println!(
                "  size {size:>4}: circuit {measured:>8.4} W   naive {naive:>8.4} W  ({:>5.1}x over)",
                naive / measured
            );
        }
    }
}
