//! Property-based tests of the circuit solver: random ladder networks
//! against analytic answers, netlist round-trips of random circuits, and
//! linearity checks.

use mnsim_circuit::mna::Circuit;
use mnsim_circuit::netlist::{from_netlist, to_netlist};
use mnsim_circuit::solve::{solve_dc, SolveOptions};
use mnsim_tech::units::{Current, Resistance, Voltage};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A resistor ladder (series chain with taps to ground) solved by the
    /// solver matches the hand-computed nodal solution.
    #[test]
    fn ladder_matches_analytic(
        series in proptest::collection::vec(10.0f64..10_000.0, 1..8),
        shunt in 10.0f64..10_000.0,
        volts in 0.1f64..10.0,
    ) {
        // V — R1 — n1 — R2 — n2 … with a shunt at the final node.
        let mut c = Circuit::new();
        let top = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(volts)).unwrap();
        let mut prev = top;
        for &r in &series {
            let n = c.add_node();
            c.add_resistor(prev, n, Resistance::from_ohms(r)).unwrap();
            prev = n;
        }
        c.add_resistor(prev, Circuit::GROUND, Resistance::from_ohms(shunt)).unwrap();

        let solution = solve_dc(&c, &SolveOptions::default()).unwrap();
        // Single branch: the current is V / (ΣR + shunt) and the final
        // node sits at I·shunt.
        let total: f64 = series.iter().sum::<f64>() + shunt;
        let expect = volts * shunt / total;
        let got = solution.voltage(prev).volts();
        prop_assert!((got - expect).abs() < 1e-9 * volts, "{got} vs {expect}");
    }

    /// Linearity: scaling the source scales every node voltage.
    #[test]
    fn source_scaling_is_linear(
        rs in proptest::collection::vec(10.0f64..5_000.0, 2..6),
        volts in 0.1f64..5.0,
        scale in 1.5f64..4.0,
    ) {
        let build = |v: f64| {
            let mut c = Circuit::new();
            let top = c.add_node();
            c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(v)).unwrap();
            let mut prev = top;
            for &r in &rs {
                let n = c.add_node();
                c.add_resistor(prev, n, Resistance::from_ohms(r)).unwrap();
                c.add_resistor(n, Circuit::GROUND, Resistance::from_ohms(r * 2.0)).unwrap();
                prev = n;
            }
            solve_dc(&c, &SolveOptions::default()).unwrap()
        };
        let base = build(volts);
        let scaled = build(volts * scale);
        for (a, b) in base.voltages().iter().zip(scaled.voltages()) {
            prop_assert!((b - a * scale).abs() < 1e-9 * volts.max(1.0));
        }
    }

    /// Netlist export → import preserves the DC solution for random
    /// resistor/source circuits.
    #[test]
    fn netlist_roundtrip_preserves_solution(
        rs in proptest::collection::vec(10.0f64..100_000.0, 1..6),
        volts in 0.1f64..5.0,
        micro_amps in 0.0f64..100.0,
    ) {
        let mut c = Circuit::new();
        let top = c.add_node();
        c.add_voltage_source(top, Circuit::GROUND, Voltage::from_volts(volts)).unwrap();
        let mut prev = top;
        for &r in &rs {
            let n = c.add_node();
            c.add_resistor(prev, n, Resistance::from_ohms(r)).unwrap();
            prev = n;
        }
        c.add_resistor(prev, Circuit::GROUND, Resistance::from_ohms(777.0)).unwrap();
        c.add_current_source(Circuit::GROUND, prev, Current::from_microamperes(micro_amps))
            .unwrap();

        let restored = from_netlist(&to_netlist(&c, "prop")).unwrap();
        let a = solve_dc(&c, &SolveOptions::default()).unwrap();
        let b = solve_dc(&restored, &SolveOptions::default()).unwrap();
        for node in 0..c.node_count() {
            prop_assert!(
                (a.voltage(node).volts() - b.voltage(node).volts()).abs() < 1e-9,
                "node {}", node
            );
        }
    }
}
