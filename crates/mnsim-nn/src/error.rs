//! Error types for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or running networks.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor shapes are incompatible for the attempted operation.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Vec<usize>,
        /// Shape actually provided.
        actual: Vec<usize>,
        /// The operation that failed.
        operation: &'static str,
    },
    /// A layer was configured with invalid hyper-parameters.
    InvalidLayer {
        /// Description of the problem.
        reason: String,
    },
    /// The network is empty or layers do not chain.
    InvalidNetwork {
        /// Description of the problem.
        reason: String,
    },
    /// A quantizer was configured with an invalid range or precision.
    InvalidQuantizer {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                expected,
                actual,
                operation,
            } => write!(
                f,
                "shape mismatch in {operation}: expected {expected:?}, got {actual:?}"
            ),
            NnError::InvalidLayer { reason } => write!(f, "invalid layer: {reason}"),
            NnError::InvalidNetwork { reason } => write!(f, "invalid network: {reason}"),
            NnError::InvalidQuantizer { reason } => write!(f, "invalid quantizer: {reason}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_shapes() {
        let e = NnError::ShapeMismatch {
            expected: vec![3, 4],
            actual: vec![4, 3],
            operation: "matmul",
        };
        let s = e.to_string();
        assert!(s.contains("matmul") && s.contains("[3, 4]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
