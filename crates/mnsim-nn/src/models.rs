//! Descriptors of the reference networks used in the paper's experiments.

use crate::descriptor::{BankDescriptor, ConvShape, NetworkDescriptor};
use crate::error::NnError;

/// A fully-connected multi-layer perceptron: `dims[0] → dims[1] → …`.
///
/// `mlp(&[128, 128, 128])` is the 3-layer NN the paper validates against
/// SPICE (Table II: two 128×128 network layers).
///
/// # Errors
///
/// Returns [`NnError::InvalidNetwork`] if fewer than two sizes are given.
pub fn mlp(dims: &[usize]) -> Result<NetworkDescriptor, NnError> {
    if dims.len() < 2 {
        return Err(NnError::InvalidNetwork {
            reason: format!("an MLP needs at least two sizes, got {dims:?}"),
        });
    }
    let banks = dims
        .windows(2)
        .map(|pair| BankDescriptor::FullyConnected {
            inputs: pair[0],
            outputs: pair[1],
        })
        .collect();
    NetworkDescriptor::new(format!("mlp-{dims:?}"), banks)
}

/// The 64-16-64 autoencoder of the paper's JPEG-encoding accuracy
/// validation (§VII.A, after Li et al.'s RRAM approximate computing).
pub fn autoencoder_64_16_64() -> NetworkDescriptor {
    mlp(&[64, 16, 64]).expect("static dims are valid")
}

/// The single 2048×1024 fully-connected layer of the large-computation-bank
/// case study (paper §VII.C, Tables IV/V, Figs. 7/8).
pub fn large_bank_layer() -> NetworkDescriptor {
    mlp(&[2048, 1024]).expect("static dims are valid")
}

/// VGG-16 (Simonyan & Zisserman) on 224×224×3 inputs: 13 convolution
/// banks + 3 fully-connected banks — the paper's deep-CNN case study
/// (§VII.D, Table VI).
pub fn vgg16() -> NetworkDescriptor {
    let mut banks = Vec::new();
    let mut h = 224usize;
    let mut in_c = 3usize;
    // (out_channels, convs in block); every block ends with 2×2 pooling.
    let blocks: [(usize, usize); 5] = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)];
    for (out_c, convs) in blocks {
        for i in 0..convs {
            let pooling = if i + 1 == convs { Some(2) } else { None };
            banks.push(BankDescriptor::Conv {
                shape: ConvShape {
                    in_channels: in_c,
                    out_channels: out_c,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    input_h: h,
                    input_w: h,
                },
                pooling,
            });
            in_c = out_c;
        }
        h /= 2;
    }
    // After 5 pools: 7×7×512 = 25088.
    banks.push(BankDescriptor::FullyConnected {
        inputs: 512 * h * h,
        outputs: 4096,
    });
    banks.push(BankDescriptor::FullyConnected {
        inputs: 4096,
        outputs: 4096,
    });
    banks.push(BankDescriptor::FullyConnected {
        inputs: 4096,
        outputs: 1000,
    });
    NetworkDescriptor::new("vgg16", banks).expect("static shape is valid")
}

/// CaffeNet/AlexNet on 227×227×3 inputs.
///
/// The paper counts CaffeNet as a 7-layer CNN (§III.A); the canonical
/// model has 5 convolution + 3 fully-connected weight layers. We keep all
/// 8 weight-bearing layers as banks and note that the paper's "7" merges
/// the last two fully-connected layers into one bank in its counting.
pub fn caffenet() -> NetworkDescriptor {
    let banks = vec![
        BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 3,
                out_channels: 96,
                kernel: 11,
                stride: 4,
                padding: 0,
                input_h: 227,
                input_w: 227,
            },
            pooling: Some(2),
        },
        BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 96,
                out_channels: 256,
                kernel: 5,
                stride: 1,
                padding: 2,
                input_h: 27,
                input_w: 27,
            },
            pooling: Some(2),
        },
        BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 256,
                out_channels: 384,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 13,
                input_w: 13,
            },
            pooling: None,
        },
        BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 384,
                out_channels: 384,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 13,
                input_w: 13,
            },
            pooling: None,
        },
        BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 384,
                out_channels: 256,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 13,
                input_w: 13,
            },
            pooling: Some(2),
        },
        BankDescriptor::FullyConnected {
            inputs: 256 * 6 * 6,
            outputs: 4096,
        },
        BankDescriptor::FullyConnected {
            inputs: 4096,
            outputs: 4096,
        },
        BankDescriptor::FullyConnected {
            inputs: 4096,
            outputs: 1000,
        },
    ];
    NetworkDescriptor::new("caffenet", banks).expect("static shape is valid")
}

/// The 256×256 single-layer DNN task used for the PRIME FF-subarray case
/// study (paper §VII.E-1).
pub fn prime_task() -> NetworkDescriptor {
    mlp(&[256, 256]).expect("static dims are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::BankDescriptor;

    #[test]
    fn mlp_shapes() {
        let net = mlp(&[128, 128, 128]).unwrap();
        assert_eq!(net.depth(), 2);
        assert_eq!(net.total_weights(), 2 * 128 * 128);
        assert!(mlp(&[64]).is_err());
    }

    #[test]
    fn autoencoder_is_64_16_64() {
        let net = autoencoder_64_16_64();
        assert_eq!(net.depth(), 2);
        assert_eq!(net.input_size(), 64);
        assert_eq!(net.output_size(), 64);
        assert_eq!(net.total_weights(), 64 * 16 + 16 * 64);
    }

    #[test]
    fn vgg16_structure() {
        let net = vgg16();
        assert_eq!(net.depth(), 16, "13 conv + 3 fc banks");
        // The famous 138M-ish weight count (we exclude biases).
        let w = net.total_weights();
        assert!(
            (130_000_000..145_000_000).contains(&w),
            "VGG-16 weights ≈ 138M, got {w}"
        );
        // The first fully-connected bank must see 7·7·512 inputs.
        match &net.banks[13] {
            BankDescriptor::FullyConnected { inputs, outputs } => {
                assert_eq!(*inputs, 25088);
                assert_eq!(*outputs, 4096);
            }
            other => panic!("bank 13 should be fully-connected, got {other:?}"),
        }
    }

    #[test]
    fn vgg16_feature_maps_chain() {
        let net = vgg16();
        let mut expect_in = 3usize;
        for bank in &net.banks {
            if let BankDescriptor::Conv { shape, .. } = bank {
                assert_eq!(shape.in_channels, expect_in);
                expect_in = shape.out_channels;
            }
        }
    }

    #[test]
    fn caffenet_structure() {
        let net = caffenet();
        assert_eq!(net.depth(), 8);
        // conv1: 227 → (227-11)/4+1 = 55
        if let BankDescriptor::Conv { shape, .. } = &net.banks[0] {
            assert_eq!(shape.output_hw(), (55, 55));
        } else {
            panic!("bank 0 must be conv");
        }
        // ~61M weights
        let w = net.total_weights();
        assert!((55_000_000..65_000_000).contains(&w), "got {w}");
    }

    #[test]
    fn large_bank_case() {
        let net = large_bank_layer();
        assert_eq!(net.depth(), 1);
        assert_eq!(net.total_weights(), 2048 * 1024);
    }

    #[test]
    fn prime_task_shape() {
        let net = prime_task();
        assert_eq!(net.input_size(), 256);
        assert_eq!(net.output_size(), 256);
    }
}
