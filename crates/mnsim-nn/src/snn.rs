//! Rate-coded spiking neural network simulation (paper §II.B-2).
//!
//! The paper maps SNNs whose memristor cells store *fixed* weights: the
//! synapse function is still a matrix-vector multiplication, and the
//! neuron is integrate-and-fire. This module simulates such a network over
//! discrete time steps: inputs are encoded as Bernoulli spike trains whose
//! rates equal the analog values, membrane potentials integrate the
//! weighted spikes, and a neuron fires (and resets by subtraction) when
//! its potential crosses the threshold. Over enough time steps the spike
//! rates converge to the equivalent ReLU network's activations — the
//! standard rate-coding argument, which the tests verify.

use rand::Rng;

use crate::error::NnError;
use crate::layers::FullyConnected;
use crate::tensor::Tensor;

/// A layer of integrate-and-fire neurons with its synapse weights.
#[derive(Debug, Clone)]
struct SpikingLayer {
    synapse: FullyConnected,
    /// Membrane potentials (state across time steps).
    membrane: Vec<f64>,
    /// Firing threshold.
    threshold: f64,
}

/// A rate-coded spiking network.
#[derive(Debug, Clone)]
pub struct SpikingNetwork {
    layers: Vec<SpikingLayer>,
}

/// The result of a spiking simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeTrace {
    /// Time steps simulated.
    pub steps: usize,
    /// Output spike counts per neuron.
    pub output_spikes: Vec<u32>,
}

impl SpikeTrace {
    /// Output firing rates (spikes per step) — the rate-coded estimate of
    /// the equivalent analog activations.
    pub fn rates(&self) -> Vec<f64> {
        self.output_spikes
            .iter()
            .map(|&s| f64::from(s) / self.steps as f64)
            .collect()
    }

    /// Index of the most active output neuron (classification readout).
    ///
    /// # Panics
    ///
    /// Panics if the network has no outputs (valid networks always do).
    pub fn argmax(&self) -> usize {
        self.output_spikes
            .iter()
            .enumerate()
            .max_by_key(|(i, &s)| (s, usize::MAX - i))
            .map(|(i, _)| i)
            .expect("network has outputs")
    }
}

impl SpikingNetwork {
    /// Builds a spiking network from fully-connected synapse layers, all
    /// neurons sharing `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNetwork`] for an empty layer list,
    /// non-chaining layers, or a non-positive threshold.
    pub fn new(synapses: Vec<FullyConnected>, threshold: f64) -> Result<Self, NnError> {
        if synapses.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "a spiking network needs at least one synapse layer".into(),
            });
        }
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(NnError::InvalidNetwork {
                reason: format!("firing threshold must be positive, got {threshold}"),
            });
        }
        for pair in synapses.windows(2) {
            if pair[0].outputs() != pair[1].inputs() {
                return Err(NnError::InvalidNetwork {
                    reason: format!(
                        "synapse layers do not chain: {} outputs feed {} inputs",
                        pair[0].outputs(),
                        pair[1].inputs()
                    ),
                });
            }
        }
        Ok(SpikingNetwork {
            layers: synapses
                .into_iter()
                .map(|synapse| {
                    let outputs = synapse.outputs();
                    SpikingLayer {
                        synapse,
                        membrane: vec![0.0; outputs],
                        threshold,
                    }
                })
                .collect(),
        })
    }

    /// Number of input neurons.
    pub fn inputs(&self) -> usize {
        self.layers[0].synapse.inputs()
    }

    /// Number of output neurons.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("non-empty").synapse.outputs()
    }

    /// Resets all membrane potentials.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer.membrane.iter_mut().for_each(|m| *m = 0.0);
        }
    }

    /// Simulates `steps` time steps with Bernoulli rate coding of `input`
    /// (values clamped to `[0, 1]` as firing probabilities).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input length differs from
    /// the network's input count.
    pub fn run(
        &mut self,
        input: &Tensor,
        steps: usize,
        rng: &mut impl Rng,
    ) -> Result<SpikeTrace, NnError> {
        if input.shape() != [self.inputs()] {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.inputs()],
                actual: input.shape().to_vec(),
                operation: "spiking run",
            });
        }
        self.reset();
        let mut output_spikes = vec![0u32; self.outputs()];

        for _ in 0..steps {
            // Encode the input as one spike frame.
            let mut spikes: Vec<f64> = input
                .data()
                .iter()
                .map(|&p| {
                    if rng.gen_range(0.0..1.0) < p.clamp(0.0, 1.0) {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();

            let last = self.layers.len() - 1;
            for (li, layer) in self.layers.iter_mut().enumerate() {
                let drive = layer
                    .synapse
                    .forward(&Tensor::vector(&spikes))
                    .expect("chained shapes verified at construction");
                let mut out = vec![0.0; layer.membrane.len()];
                for (j, (m, d)) in layer.membrane.iter_mut().zip(drive.data()).enumerate() {
                    *m += d;
                    if *m >= layer.threshold {
                        *m -= layer.threshold; // reset by subtraction
                        out[j] = 1.0;
                        if li == last {
                            output_spikes[j] += 1;
                        }
                    }
                }
                spikes = out;
            }
        }

        Ok(SpikeTrace {
            steps,
            output_spikes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn identity_synapse(n: usize, gain: f64) -> FullyConnected {
        let mut fc = FullyConnected::zeros(n, n);
        for i in 0..n {
            *fc.weights.at2_mut(i, i) = gain;
        }
        fc
    }

    #[test]
    fn construction_validation() {
        assert!(SpikingNetwork::new(vec![], 1.0).is_err());
        assert!(SpikingNetwork::new(vec![identity_synapse(2, 1.0)], 0.0).is_err());
        let nonchain = vec![FullyConnected::zeros(2, 3), FullyConnected::zeros(2, 1)];
        assert!(SpikingNetwork::new(nonchain, 1.0).is_err());
        assert!(SpikingNetwork::new(vec![identity_synapse(4, 1.0)], 1.0).is_ok());
    }

    #[test]
    fn rates_converge_to_input_rates_through_identity() {
        // Identity weights, threshold 1: each output spikes exactly when
        // its input spikes, so the output rate estimates the input value.
        let mut net = SpikingNetwork::new(vec![identity_synapse(3, 1.0)], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let input = Tensor::vector(&[0.1, 0.5, 0.9]);
        let trace = net.run(&input, 4000, &mut rng).unwrap();
        for (rate, &expected) in trace.rates().iter().zip(input.data()) {
            assert!(
                (rate - expected).abs() < 0.05,
                "rate {rate} vs input {expected}"
            );
        }
    }

    #[test]
    fn rate_coding_approximates_relu_network() {
        // A 2-layer network with mixed-sign weights: spike rates must
        // track the equivalent ReLU activations.
        let mut fc = FullyConnected::zeros(2, 2);
        fc.weights.data_mut().copy_from_slice(&[0.8, 0.2, -0.5, 1.0]);
        let mut net = SpikingNetwork::new(vec![fc.clone()], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let input = Tensor::vector(&[0.9, 0.6]);
        let trace = net.run(&input, 6000, &mut rng).unwrap();
        let analog = fc.forward(&input).unwrap();
        for (rate, &a) in trace.rates().iter().zip(analog.data()) {
            let expected = a.clamp(0.0, 1.0); // ReLU, rate-capped at 1
            assert!(
                (rate - expected).abs() < 0.06,
                "rate {rate} vs ReLU {expected}"
            );
        }
    }

    #[test]
    fn classification_readout_picks_strongest_drive() {
        let mut fc = FullyConnected::zeros(2, 3);
        // Output 1 gets by far the strongest drive.
        fc.weights
            .data_mut()
            .copy_from_slice(&[0.1, 0.0, 0.9, 0.9, 0.1, 0.0]);
        let mut net = SpikingNetwork::new(vec![fc], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let trace = net
            .run(&Tensor::vector(&[0.8, 0.8]), 500, &mut rng)
            .unwrap();
        assert_eq!(trace.argmax(), 1);
    }

    #[test]
    fn reset_clears_state_between_samples() {
        let mut net = SpikingNetwork::new(vec![identity_synapse(1, 1.0)], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let a = net.run(&Tensor::vector(&[1.0]), 100, &mut rng).unwrap();
        let b = net.run(&Tensor::vector(&[0.0]), 100, &mut rng).unwrap();
        assert_eq!(a.output_spikes[0], 100);
        assert_eq!(b.output_spikes[0], 0, "state must not leak across runs");
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut net = SpikingNetwork::new(vec![identity_synapse(3, 1.0)], 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(net.run(&Tensor::vector(&[0.5; 2]), 10, &mut rng).is_err());
    }

    #[test]
    fn deeper_networks_propagate_spikes() {
        let layers = vec![identity_synapse(2, 1.0), identity_synapse(2, 1.0)];
        let mut net = SpikingNetwork::new(layers, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trace = net
            .run(&Tensor::vector(&[0.7, 0.3]), 3000, &mut rng)
            .unwrap();
        let rates = trace.rates();
        assert!((rates[0] - 0.7).abs() < 0.06);
        assert!((rates[1] - 0.3).abs() < 0.06);
    }
}
