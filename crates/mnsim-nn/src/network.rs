//! Network container: an ordered pipeline of layers.

use mnsim_obs::trace;

use crate::error::NnError;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// A feed-forward network: layers applied in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Creates a network from a layer list.
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        Network { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the whole network forward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNetwork`] for an empty network, and
    /// propagates layer shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "network has no layers".into(),
            });
        }
        let mut current = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = trace::span_at("nn.layer", trace::Level::Layer, i as i64);
            current = layer.forward(&current)?;
        }
        Ok(current)
    }

    /// Runs a batch of independent inputs forward, sharding the batch
    /// over up to `threads` scoped worker threads (`0` = the machine's
    /// available parallelism, `1` = the serial loop on the calling
    /// thread).
    ///
    /// Inputs are independent samples, each worker owns a contiguous
    /// shard, and outputs are returned in input order, so the result is
    /// **bit-identical** to `inputs.iter().map(|x| net.forward(x))` for
    /// every thread count. (This crate sits below `mnsim-core`, so it
    /// carries its own minimal shard loop rather than depending on the
    /// `exec` engine; the determinism contract is the same.)
    ///
    /// # Errors
    ///
    /// Same as [`Self::forward`]; on failure the error of the earliest
    /// failing input is returned regardless of thread interleaving.
    pub fn forward_batch(&self, inputs: &[Tensor], threads: usize) -> Result<Vec<Tensor>, NnError> {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        }
        .min(inputs.len().max(1));
        if threads <= 1 {
            return inputs.iter().map(|input| self.forward(input)).collect();
        }

        // Contiguous near-equal shards; worker results concatenate back in
        // input order, and a collect over ordered Results yields the
        // earliest error.
        let base = inputs.len() / threads;
        let extra = inputs.len() % threads;
        let mut shards: Vec<&[Tensor]> = Vec::with_capacity(threads);
        let mut rest = inputs;
        for shard in 0..threads {
            let len = base + usize::from(shard < extra);
            let (head, tail) = rest.split_at(len);
            shards.push(head);
            rest = tail;
        }
        let outputs: Vec<Vec<Result<Tensor, NnError>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .map(|shard| {
                    scope.spawn(move || shard.iter().map(|input| self.forward(input)).collect())
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
                .collect()
        });
        outputs.into_iter().flatten().collect()
    }

    /// Runs forward while recording every intermediate activation
    /// (input excluded, output of each layer included).
    ///
    /// # Errors
    ///
    /// Same as [`Self::forward`].
    pub fn forward_trace(&self, input: &Tensor) -> Result<Vec<Tensor>, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "network has no layers".into(),
            });
        }
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = trace::span_at("nn.layer", trace::Level::Layer, i as i64);
            current = layer.forward(&current)?;
            activations.push(current.clone());
        }
        Ok(activations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, FullyConnected};

    fn tiny_network() -> Network {
        let mut fc = FullyConnected::zeros(2, 2);
        fc.weights.data_mut().copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        Network::from_layers(vec![
            Layer::FullyConnected(fc),
            Layer::Activation(Activation::Relu),
        ])
    }

    #[test]
    fn forward_chains_layers() {
        let net = tiny_network();
        let out = net.forward(&Tensor::vector(&[-3.0, 5.0])).unwrap();
        assert_eq!(out.data(), &[0.0, 5.0]);
    }

    #[test]
    fn empty_network_rejected() {
        let net = Network::new();
        assert!(net.is_empty());
        assert!(matches!(
            net.forward(&Tensor::vector(&[1.0])),
            Err(NnError::InvalidNetwork { .. })
        ));
    }

    #[test]
    fn trace_records_every_layer() {
        let net = tiny_network();
        let trace = net.forward_trace(&Tensor::vector(&[-3.0, 5.0])).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].data(), &[-3.0, 5.0]);
        assert_eq!(trace[1].data(), &[0.0, 5.0]);
    }

    #[test]
    fn forward_batch_matches_serial_for_every_thread_count() {
        let net = tiny_network();
        let inputs: Vec<Tensor> = (0..23)
            .map(|i| Tensor::vector(&[i as f64 - 11.0, 0.5 * i as f64]))
            .collect();
        let serial: Vec<Tensor> = inputs.iter().map(|x| net.forward(x).unwrap()).collect();
        for threads in [0usize, 1, 2, 3, 7, 64] {
            let batch = net.forward_batch(&inputs, threads).unwrap();
            assert_eq!(serial, batch, "threads={threads}");
        }
        assert!(net.forward_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn forward_batch_reports_earliest_error() {
        let net = tiny_network();
        let inputs = vec![
            Tensor::vector(&[1.0, 2.0]),
            Tensor::vector(&[1.0, 2.0, 3.0]), // wrong shape: first failure
            Tensor::vector(&[1.0]),           // also wrong, later
        ];
        for threads in [1usize, 2, 4] {
            assert!(net.forward_batch(&inputs, threads).is_err(), "threads={threads}");
        }
    }

    #[test]
    fn push_builds_incrementally() {
        let mut net = Network::new();
        net.push(Layer::Activation(Activation::Sigmoid));
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn shape_error_propagates() {
        let net = tiny_network();
        assert!(net.forward(&Tensor::vector(&[1.0, 2.0, 3.0])).is_err());
    }
}
