//! Network container: an ordered pipeline of layers.

use mnsim_obs::trace;

use crate::error::NnError;
use crate::layers::Layer;
use crate::tensor::Tensor;

/// A feed-forward network: layers applied in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Creates a network from a layer list.
    pub fn from_layers(layers: Vec<Layer>) -> Self {
        Network { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Runs the whole network forward.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNetwork`] for an empty network, and
    /// propagates layer shape errors.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "network has no layers".into(),
            });
        }
        let mut current = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = trace::span_at("nn.layer", trace::Level::Layer, i as i64);
            current = layer.forward(&current)?;
        }
        Ok(current)
    }

    /// Runs forward while recording every intermediate activation
    /// (input excluded, output of each layer included).
    ///
    /// # Errors
    ///
    /// Same as [`Self::forward`].
    pub fn forward_trace(&self, input: &Tensor) -> Result<Vec<Tensor>, NnError> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "network has no layers".into(),
            });
        }
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = input.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let _span = trace::span_at("nn.layer", trace::Level::Layer, i as i64);
            current = layer.forward(&current)?;
            activations.push(current.clone());
        }
        Ok(activations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Activation, FullyConnected};

    fn tiny_network() -> Network {
        let mut fc = FullyConnected::zeros(2, 2);
        fc.weights.data_mut().copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        Network::from_layers(vec![
            Layer::FullyConnected(fc),
            Layer::Activation(Activation::Relu),
        ])
    }

    #[test]
    fn forward_chains_layers() {
        let net = tiny_network();
        let out = net.forward(&Tensor::vector(&[-3.0, 5.0])).unwrap();
        assert_eq!(out.data(), &[0.0, 5.0]);
    }

    #[test]
    fn empty_network_rejected() {
        let net = Network::new();
        assert!(net.is_empty());
        assert!(matches!(
            net.forward(&Tensor::vector(&[1.0])),
            Err(NnError::InvalidNetwork { .. })
        ));
    }

    #[test]
    fn trace_records_every_layer() {
        let net = tiny_network();
        let trace = net.forward_trace(&Tensor::vector(&[-3.0, 5.0])).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].data(), &[-3.0, 5.0]);
        assert_eq!(trace[1].data(), &[0.0, 5.0]);
    }

    #[test]
    fn push_builds_incrementally() {
        let mut net = Network::new();
        net.push(Layer::Activation(Activation::Sigmoid));
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn shape_error_propagates() {
        let net = tiny_network();
        assert!(net.forward(&Tensor::vector(&[1.0, 2.0, 3.0])).is_err());
    }
}
