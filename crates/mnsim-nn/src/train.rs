//! A small SGD/backprop trainer for multi-layer perceptrons.
//!
//! The paper maps *well-trained* networks onto the memristor hardware; this
//! module produces such networks for the application-level accuracy
//! experiments (the 64-16-64 JPEG-style autoencoder of §VII.A and synthetic
//! classifiers). Mean-squared-error loss, full-batch or mini-batch SGD.

use mnsim_obs as obs;
use rand::Rng;

use crate::error::NnError;

static TRAIN_EPOCHS: obs::Counter = obs::Counter::new("nn.train.epochs");
static TRAIN_SAMPLES: obs::Counter = obs::Counter::new("nn.train.samples");
static EPOCH_SPAN: obs::Span = obs::Span::new("nn.train.epoch");
use crate::layers::{Activation, FullyConnected, Layer};
use crate::network::Network;
use crate::tensor::Tensor;

/// A trainable multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<FullyConnected>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Creates an MLP with Xavier-uniform random weights.
    ///
    /// `dims` lists neuron counts per layer (`[in, hidden…, out]`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNetwork`] if fewer than two sizes are given
    /// or any size is zero.
    pub fn random(
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut impl Rng,
    ) -> Result<Self, NnError> {
        if dims.len() < 2 || dims.contains(&0) {
            return Err(NnError::InvalidNetwork {
                reason: format!("MLP dims must be ≥2 positive sizes, got {dims:?}"),
            });
        }
        let layers = dims
            .windows(2)
            .map(|pair| {
                let (n_in, n_out) = (pair[0], pair[1]);
                let bound = (6.0 / (n_in + n_out) as f64).sqrt();
                let mut fc = FullyConnected::zeros(n_in, n_out);
                for w in fc.weights.data_mut() {
                    *w = rng.gen_range(-bound..bound);
                }
                fc
            })
            .collect();
        Ok(Mlp {
            layers,
            hidden_activation,
            output_activation,
        })
    }

    /// Layer sizes `[in, hidden…, out]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.layers[0].inputs()];
        dims.extend(self.layers.iter().map(FullyConnected::outputs));
        dims
    }

    /// The activation of layer `index` (output layer uses the output
    /// activation).
    fn activation(&self, index: usize) -> Activation {
        if index + 1 == self.layers.len() {
            self.output_activation
        } else {
            self.hidden_activation
        }
    }

    /// Runs the network forward.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let mut current = input.clone();
        for (i, fc) in self.layers.iter().enumerate() {
            let act = self.activation(i);
            current = fc.forward(&current)?.map(|v| act.apply(v));
        }
        Ok(current)
    }

    /// One SGD step on a single `(input, target)` pair with MSE loss;
    /// returns the pre-update loss.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn train_sample(
        &mut self,
        input: &Tensor,
        target: &Tensor,
        learning_rate: f64,
    ) -> Result<f64, NnError> {
        // Forward with caches.
        let mut activations = vec![input.clone()];
        let mut pre_activations = Vec::with_capacity(self.layers.len());
        for (i, fc) in self.layers.iter().enumerate() {
            let z = fc.forward(activations.last().expect("non-empty"))?;
            let act = self.activation(i);
            activations.push(z.map(|v| act.apply(v)));
            pre_activations.push(z);
        }
        let output = activations.last().expect("non-empty");
        let loss = output.mse(target)?;

        // Backward.
        let n_out = output.len() as f64;
        let mut delta: Vec<f64> = output
            .data()
            .iter()
            .zip(target.data())
            .zip(pre_activations.last().expect("non-empty").data())
            .map(|((y, t), z)| {
                2.0 / n_out * (y - t) * self.activation(self.layers.len() - 1).derivative(*z)
            })
            .collect();

        for i in (0..self.layers.len()).rev() {
            let input_act = activations[i].clone();
            // Gradient for the previous layer's delta, before updating W.
            let prev_delta: Vec<f64> = if i > 0 {
                let fc = &self.layers[i];
                let prev_act = self.activation(i - 1);
                let prev_z = &pre_activations[i - 1];
                (0..fc.inputs())
                    .map(|j| {
                        let mut acc = 0.0;
                        for (k, dk) in delta.iter().enumerate() {
                            acc += fc.weights.at2(k, j) * dk;
                        }
                        acc * prev_act.derivative(prev_z.data()[j])
                    })
                    .collect()
            } else {
                Vec::new()
            };

            let fc = &mut self.layers[i];
            for (k, dk) in delta.iter().enumerate() {
                for j in 0..fc.inputs() {
                    *fc.weights.at2_mut(k, j) -= learning_rate * dk * input_act.data()[j];
                }
                fc.bias.data_mut()[k] -= learning_rate * dk;
            }
            delta = prev_delta;
        }
        Ok(loss)
    }

    /// Trains for `epochs` full passes over the dataset; returns the mean
    /// loss per epoch.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches and rejects an empty dataset.
    pub fn train(
        &mut self,
        samples: &[(Tensor, Tensor)],
        epochs: usize,
        learning_rate: f64,
    ) -> Result<Vec<f64>, NnError> {
        if samples.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "training set is empty".into(),
            });
        }
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let _epoch = EPOCH_SPAN.enter();
            TRAIN_EPOCHS.inc();
            TRAIN_SAMPLES.add(samples.len() as u64);
            let mut total = 0.0;
            for (input, target) in samples {
                total += self.train_sample(input, target, learning_rate)?;
            }
            history.push(total / samples.len() as f64);
        }
        Ok(history)
    }

    /// Mean loss over a dataset without updating weights.
    ///
    /// # Errors
    ///
    /// Propagates shape mismatches.
    pub fn evaluate(&self, samples: &[(Tensor, Tensor)]) -> Result<f64, NnError> {
        let mut total = 0.0;
        for (input, target) in samples {
            total += self.forward(input)?.mse(target)?;
        }
        Ok(total / samples.len().max(1) as f64)
    }

    /// Converts the trained MLP into an inference [`Network`] of alternating
    /// fully-connected and activation layers.
    pub fn to_network(&self) -> Network {
        let mut layers = Vec::with_capacity(self.layers.len() * 2);
        for (i, fc) in self.layers.iter().enumerate() {
            layers.push(Layer::FullyConnected(fc.clone()));
            layers.push(Layer::Activation(self.activation(i)));
        }
        Network::from_layers(layers)
    }

    /// The weight matrices (one per layer, shape `(out, in)`).
    pub fn weight_matrices(&self) -> Vec<&Tensor> {
        self.layers.iter().map(|fc| &fc.weights).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_init_respects_dims() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::random(&[4, 8, 2], Activation::Sigmoid, Activation::Sigmoid, &mut rng)
            .unwrap();
        assert_eq!(mlp.dims(), vec![4, 8, 2]);
        assert!(Mlp::random(&[4], Activation::Relu, Activation::Relu, &mut rng).is_err());
        assert!(Mlp::random(&[4, 0], Activation::Relu, Activation::Relu, &mut rng).is_err());
    }

    #[test]
    fn training_reduces_loss_on_xor() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::random(
            &[2, 8, 1],
            Activation::Sigmoid,
            Activation::Sigmoid,
            &mut rng,
        )
        .unwrap();
        let data: Vec<(Tensor, Tensor)> = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ]
        .iter()
        .map(|(x, y)| (Tensor::vector(x), Tensor::vector(&[*y])))
        .collect();

        let history = mlp.train(&data, 2000, 2.0).unwrap();
        let first = history[0];
        let last = *history.last().unwrap();
        assert!(
            last < first / 4.0,
            "loss should fall substantially: {first} → {last}"
        );
        // The trained network must actually classify XOR.
        for (x, t) in &data {
            let y = mlp.forward(x).unwrap().data()[0];
            assert!((y - t.data()[0]).abs() < 0.35, "input {:?} → {y}", x.data());
        }
    }

    #[test]
    fn identity_autoencoder_learns() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::random(
            &[4, 4, 4],
            Activation::Sigmoid,
            Activation::Sigmoid,
            &mut rng,
        )
        .unwrap();
        let data: Vec<(Tensor, Tensor)> = (0..4)
            .map(|i| {
                let mut v = vec![0.15; 4];
                v[i] = 0.85;
                (Tensor::vector(&v), Tensor::vector(&v))
            })
            .collect();
        let before = mlp.evaluate(&data).unwrap();
        mlp.train(&data, 1500, 1.0).unwrap();
        let after = mlp.evaluate(&data).unwrap();
        assert!(after < before / 2.0, "{before} → {after}");
    }

    #[test]
    fn to_network_matches_forward() {
        let mut rng = StdRng::seed_from_u64(11);
        let mlp =
            Mlp::random(&[3, 5, 2], Activation::Relu, Activation::Sigmoid, &mut rng).unwrap();
        let x = Tensor::vector(&[0.2, -0.4, 0.9]);
        let direct = mlp.forward(&x).unwrap();
        let via_network = mlp.to_network().forward(&x).unwrap();
        assert_eq!(direct, via_network);
    }

    #[test]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp =
            Mlp::random(&[2, 2], Activation::Relu, Activation::Relu, &mut rng).unwrap();
        assert!(mlp.train(&[], 1, 0.1).is_err());
    }

    #[test]
    fn weight_matrices_exposed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp =
            Mlp::random(&[6, 4, 2], Activation::Relu, Activation::Relu, &mut rng).unwrap();
        let ws = mlp.weight_matrices();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].shape(), &[4, 6]);
        assert_eq!(ws[1].shape(), &[2, 4]);
    }
}
