//! Hardware-error injection into quantized activations.
//!
//! The behavior-level accuracy model of `mnsim-core` predicts a *digital
//! deviation*: by how many quantization levels a read value can differ from
//! the ideal fixed-point result (paper Eqs. 12-14). This module applies such
//! a deviation to real activations, which is how the application-level
//! accuracy validation (the 64-16-64 autoencoder of §VII.A) turns the model
//! prediction into an end-to-end quality number.

use rand::Rng;

use crate::quantize::Quantizer;
use crate::tensor::Tensor;

/// Perturbs every element of `tensor` by up to `max_deviation_levels`
/// quantization levels (uniform over the *integer* levels `-d ..= +d`,
/// independent per element), then re-quantizes. Elements are clamped to the
/// quantizer range.
///
/// `max_deviation_levels` may be fractional: a fractional bound `d` behaves
/// as `⌊d⌋` with probability `1 − frac(d)` and `⌊d⌋ + 1` with probability
/// `frac(d)`, so the expected bound equals `d` (e.g. `0.4` perturbs at most
/// 40 % of the elements, by one level).
///
/// Sampling is over the integers directly — *not* by rounding a uniform
/// float times `d`, which would give the endpoint levels `±d` only half the
/// probability of the interior levels and so systematically understate the
/// worst-case deviation the accuracy model predicts.
pub fn inject_digital_deviation(
    tensor: &Tensor,
    quantizer: &Quantizer,
    max_deviation_levels: f64,
    rng: &mut impl Rng,
) -> Tensor {
    let levels = quantizer.levels() as i64;
    let whole = max_deviation_levels.floor();
    let frac = max_deviation_levels - whole;
    let data: Vec<f64> = tensor
        .data()
        .iter()
        .map(|&v| {
            let level = quantizer.level_of(v) as i64;
            let bound = whole as i64 + i64::from(frac > 0.0 && rng.gen_bool(frac));
            let deviation = if bound == 0 {
                0
            } else {
                rng.gen_range(-bound..=bound)
            };
            let perturbed = (level + deviation).clamp(0, levels - 1);
            quantizer.value_of(perturbed as u32)
        })
        .collect();
    Tensor::from_vec(tensor.shape(), data).expect("shape preserved")
}

/// Relative accuracy of `actual` against `reference`, normalized by the
/// reference full scale:
///
/// ```text
/// accuracy = 1 − mean(|actual − reference|) / (max(reference) − min(reference))
/// ```
///
/// This matches the paper's "Average Relative Accuracy (%)" metric in
/// Table II (values near 95 %).
///
/// # Panics
///
/// Panics if the tensors have different shapes or the reference is
/// constant (zero full scale).
pub fn relative_accuracy(reference: &Tensor, actual: &Tensor) -> f64 {
    assert_eq!(
        reference.shape(),
        actual.shape(),
        "tensors must have identical shapes"
    );
    let (min, max) = reference
        .data()
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let scale = max - min;
    assert!(scale > 0.0, "reference tensor is constant");
    let mean_abs: f64 = reference
        .data()
        .iter()
        .zip(actual.data())
        .map(|(r, a)| (r - a).abs())
        .sum::<f64>()
        / reference.len() as f64;
    1.0 - mean_abs / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_deviation_is_pure_quantization() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::vector(&[0.1, 0.5, 0.9]);
        let out = inject_digital_deviation(&t, &q, 0.0, &mut rng);
        assert_eq!(out, q.quantize_tensor(&t));
    }

    #[test]
    fn deviation_is_bounded() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::vector(&vec![0.5; 1000]);
        let max_dev = 3.0;
        let out = inject_digital_deviation(&t, &q, max_dev, &mut rng);
        let bound = max_dev * q.step() + 1e-12;
        for (&a, &b) in t.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= bound + q.step() / 2.0);
        }
    }

    #[test]
    fn deviation_actually_perturbs() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::vector(&vec![0.5; 100]);
        let out = inject_digital_deviation(&t, &q, 2.0, &mut rng);
        let changed = t
            .data()
            .iter()
            .zip(out.data())
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 30, "only {changed} elements changed");
    }

    #[test]
    fn clamping_at_range_edges() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let t = Tensor::vector(&[0.0, 1.0]);
        for _ in 0..50 {
            let out = inject_digital_deviation(&t, &q, 5.0, &mut rng);
            assert!(out.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn deviation_levels_are_uniform_including_endpoints() {
        // With d = 2 the five levels −2..=+2 must be equally likely. The old
        // round(uniform·d) sampling gave ±2 half the interior probability.
        let q = Quantizer::unsigned_unit(6).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mid = q.value_of(q.levels() / 2);
        let n = 20_000usize;
        let t = Tensor::vector(&vec![mid; n]);
        let out = inject_digital_deviation(&t, &q, 2.0, &mut rng);
        let mid_level = q.level_of(mid) as i64;
        let mut counts = [0usize; 5];
        for &v in out.data() {
            let dev = q.level_of(v) as i64 - mid_level;
            counts[(dev + 2) as usize] += 1;
        }
        let expected = n as f64 / 5.0;
        for (k, &count) in counts.iter().enumerate() {
            let rel = (count as f64 - expected).abs() / expected;
            assert!(rel < 0.1, "level {}: {count} vs {expected} (rel {rel:.3})", k as i64 - 2);
        }
    }

    #[test]
    fn fractional_deviation_bound_is_bernoulli() {
        // d = 0.25 must perturb ≈ 25 %·(2/3) of elements… more precisely:
        // bound is 1 with p = 0.25, and then the deviation is ±1 with
        // probability 2/3 — so ≈ 16.7 % of elements move by exactly one.
        let q = Quantizer::unsigned_unit(6).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000usize;
        let t = Tensor::vector(&vec![0.5; n]);
        let out = inject_digital_deviation(&t, &q, 0.25, &mut rng);
        let reference = q.quantize_tensor(&t);
        let moved = reference
            .data()
            .iter()
            .zip(out.data())
            .filter(|(a, b)| a != b)
            .count();
        let rate = moved as f64 / n as f64;
        assert!((rate - 0.25 * 2.0 / 3.0).abs() < 0.02, "moved rate {rate}");
        // No element may move by more than one level.
        for (&a, &b) in reference.data().iter().zip(out.data()) {
            assert!((a - b).abs() <= q.step() + 1e-12);
        }
    }

    #[test]
    fn relative_accuracy_perfect_and_degraded() {
        let r = Tensor::vector(&[0.0, 0.5, 1.0]);
        assert!((relative_accuracy(&r, &r) - 1.0).abs() < 1e-12);
        let worse = Tensor::vector(&[0.1, 0.6, 0.9]);
        let acc = relative_accuracy(&r, &worse);
        assert!((acc - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn relative_accuracy_rejects_constant_reference() {
        let r = Tensor::vector(&[0.5, 0.5]);
        let _ = relative_accuracy(&r, &r);
    }

    #[test]
    fn accuracy_decreases_with_deviation() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let t = Tensor::vector(&(0..200).map(|i| i as f64 / 199.0).collect::<Vec<_>>());
        let reference = q.quantize_tensor(&t);
        let small = inject_digital_deviation(&t, &q, 1.0, &mut rng);
        let large = inject_digital_deviation(&t, &q, 8.0, &mut rng);
        let acc_small = relative_accuracy(&reference, &small);
        let acc_large = relative_accuracy(&reference, &large);
        assert!(acc_small > acc_large);
        assert!(acc_small > 0.98);
    }
}
