//! Convolution as matrix-vector multiplication (paper §II.B-3).
//!
//! "The primary function of a Conv layer is the convolution kernel, which
//! can also be regarded as vector-vector multiplication. Since multiple
//! kernels in the same layer share the input vectors, multiple kernels can
//! be regarded as matrix-vector multiplication." This module makes that
//! mapping executable: [`im2col`] lowers each output position's receptive
//! field to a column vector, [`kernel_matrix`] flattens the kernels into
//! the weight matrix a crossbar stores, and [`conv_via_matvec`] runs the
//! convolution as the sequence of matrix-vector products a computation
//! bank performs — one per output pixel, which is exactly
//! `BankDescriptor::ops_per_sample()`.

use crate::error::NnError;
use crate::layers::Conv2d;
use crate::tensor::Tensor;

/// Extracts the receptive field feeding output position `(oy, ox)` as a
/// flat vector of length `in_channels · k²` (zero-padded out of bounds).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if the input is not 3-D with the
/// convolution's channel count.
pub fn im2col(
    conv: &Conv2d,
    input: &Tensor,
    oy: usize,
    ox: usize,
) -> Result<Tensor, NnError> {
    let shape = input.shape();
    if shape.len() != 3 || shape[0] != conv.in_channels() {
        return Err(NnError::ShapeMismatch {
            expected: vec![conv.in_channels()],
            actual: shape.to_vec(),
            operation: "im2col",
        });
    }
    let (h, w) = (shape[1], shape[2]);
    let k = conv.kernel();
    let mut column = Vec::with_capacity(conv.in_channels() * k * k);
    for c in 0..conv.in_channels() {
        for ky in 0..k {
            let iy = (oy * conv.stride + ky) as isize - conv.padding as isize;
            for kx in 0..k {
                let ix = (ox * conv.stride + kx) as isize - conv.padding as isize;
                let v = if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                    0.0
                } else {
                    input.at3(c, iy as usize, ix as usize)
                };
                column.push(v);
            }
        }
    }
    Ok(Tensor::vector(&column))
}

/// Flattens the convolution kernels into the `(out_channels, in·k²)`
/// weight matrix a crossbar block stores — the rows/cols that
/// `BankDescriptor::matrix_rows()/matrix_cols()` report.
pub fn kernel_matrix(conv: &Conv2d) -> Tensor {
    let rows = conv.out_channels();
    let cols = conv.in_channels() * conv.kernel() * conv.kernel();
    Tensor::from_vec(&[rows, cols], conv.weights.data().to_vec())
        .expect("kernel tensor is exactly rows × cols")
}

/// Runs the convolution as one matrix-vector product per output position.
///
/// Produces bit-identical results to [`Conv2d::forward`]; the tests verify
/// this, establishing that the hardware's MVM view computes the same
/// function as the algorithmic convolution.
///
/// # Errors
///
/// Same conditions as [`Conv2d::forward`].
pub fn conv_via_matvec(conv: &Conv2d, input: &Tensor) -> Result<Tensor, NnError> {
    let shape = input.shape();
    if shape.len() != 3 || shape[0] != conv.in_channels() {
        return Err(NnError::ShapeMismatch {
            expected: vec![conv.in_channels()],
            actual: shape.to_vec(),
            operation: "conv_via_matvec",
        });
    }
    let (oh, ow) = conv.output_hw(shape[1], shape[2]);
    let matrix = kernel_matrix(conv);
    let mut out = Tensor::zeros(&[conv.out_channels(), oh, ow]);
    for oy in 0..oh {
        for ox in 0..ow {
            let column = im2col(conv, input, oy, ox)?;
            let result = matrix.matvec(&column)?;
            for (oc, v) in result.data().iter().enumerate() {
                *out.at3_mut(oc, oy, ox) = v + conv.bias.data()[oc];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_conv(in_c: usize, out_c: usize, k: usize, stride: usize, pad: usize) -> Conv2d {
        let mut rng = StdRng::seed_from_u64(31);
        let mut conv = Conv2d::zeros(in_c, out_c, k, stride, pad).unwrap();
        for w in conv.weights.data_mut() {
            *w = rng.gen_range(-1.0..1.0);
        }
        for b in conv.bias.data_mut() {
            *b = rng.gen_range(-0.5..0.5);
        }
        conv
    }

    fn random_input(c: usize, h: usize, w: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(17);
        let data = (0..c * h * w).map(|_| rng.gen_range(0.0..1.0)).collect();
        Tensor::from_vec(&[c, h, w], data).unwrap()
    }

    #[test]
    fn matvec_view_matches_direct_convolution() {
        for (in_c, out_c, k, stride, pad, h) in [
            (1usize, 1usize, 3usize, 1usize, 0usize, 6usize),
            (3, 8, 3, 1, 1, 8),
            (2, 4, 5, 2, 2, 9),
            (4, 2, 1, 1, 0, 5),
        ] {
            let conv = random_conv(in_c, out_c, k, stride, pad);
            let input = random_input(in_c, h, h);
            let direct = conv.forward(&input).unwrap();
            let via_matvec = conv_via_matvec(&conv, &input).unwrap();
            assert_eq!(direct.shape(), via_matvec.shape());
            for (a, b) in direct.data().iter().zip(via_matvec.data()) {
                assert!((a - b).abs() < 1e-12, "{a} vs {b} (k={k}, s={stride}, p={pad})");
            }
        }
    }

    #[test]
    fn kernel_matrix_matches_bank_descriptor_geometry() {
        use crate::descriptor::{BankDescriptor, ConvShape};
        let conv = random_conv(3, 64, 3, 1, 1);
        let matrix = kernel_matrix(&conv);
        let bank = BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 3,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 32,
                input_w: 32,
            },
            pooling: None,
        };
        // The crossbar stores the transpose view: matrix rows = bank
        // matrix_cols (outputs), matrix cols = bank matrix_rows (inputs).
        assert_eq!(matrix.shape()[0], bank.matrix_cols());
        assert_eq!(matrix.shape()[1], bank.matrix_rows());
    }

    #[test]
    fn im2col_zero_pads_borders() {
        let conv = random_conv(1, 1, 3, 1, 1);
        let input = random_input(1, 4, 4);
        // Top-left output: the first row and column of the window fall in
        // the padding.
        let col = im2col(&conv, &input, 0, 0).unwrap();
        assert_eq!(col.len(), 9);
        assert_eq!(col.data()[0], 0.0); // (-1,-1)
        assert_eq!(col.data()[1], 0.0); // (-1, 0)
        assert_eq!(col.data()[3], 0.0); // ( 0,-1)
        assert_eq!(col.data()[4], input.at3(0, 0, 0));
    }

    #[test]
    fn shape_errors_rejected() {
        let conv = random_conv(2, 1, 3, 1, 0);
        let wrong = random_input(3, 5, 5);
        assert!(im2col(&conv, &wrong, 0, 0).is_err());
        assert!(conv_via_matvec(&conv, &wrong).is_err());
    }
}
