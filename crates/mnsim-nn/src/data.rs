//! Synthetic workload generation.
//!
//! The original experiments use MNIST/ImageNet-style inputs and a JPEG
//! encoding task. Those datasets are not needed to exercise the simulator —
//! the accuracy model is input-distribution-agnostic — so this module
//! generates statistically similar stand-ins (documented substitution in
//! `DESIGN.md`):
//!
//! * [`gaussian_clusters`] — separable classification data for classifier
//!   training,
//! * [`smooth_patches`] — 8×8 low-frequency image patches in `[0, 1]` for
//!   the 64-16-64 autoencoding ("JPEG encoding") task,
//! * [`random_weight_matrix`] / [`random_input_vector`] — the random
//!   weight/input samples used by the SPICE validation (Table II uses 20
//!   random weight matrices × 100 random inputs).

use rand::Rng;

use crate::tensor::Tensor;

/// Generates labelled Gaussian-cluster classification data.
///
/// Produces `classes × per_class` samples of dimension `dim` in `[0, 1]`,
/// with one cluster centre per class and isotropic spread `sigma`.
///
/// # Panics
///
/// Panics if `classes`, `per_class` or `dim` is zero.
pub fn gaussian_clusters(
    classes: usize,
    per_class: usize,
    dim: usize,
    sigma: f64,
    rng: &mut impl Rng,
) -> Vec<(Tensor, usize)> {
    assert!(
        classes > 0 && per_class > 0 && dim > 0,
        "classes, per_class and dim must be positive"
    );
    let centres: Vec<Vec<f64>> = (0..classes)
        .map(|_| (0..dim).map(|_| rng.gen_range(0.2..0.8)).collect())
        .collect();
    let mut samples = Vec::with_capacity(classes * per_class);
    for (label, centre) in centres.iter().enumerate() {
        for _ in 0..per_class {
            let point: Vec<f64> = centre
                .iter()
                .map(|&c| (c + gaussian(rng) * sigma).clamp(0.0, 1.0))
                .collect();
            samples.push((Tensor::vector(&point), label));
        }
    }
    samples
}

/// Generates `count` smooth 8×8 patches (flattened to 64 values in `[0,1]`).
///
/// Each patch is a random low-frequency 2-D cosine mixture — the same
/// frequency content JPEG's DCT concentrates on, which is what makes the
/// 64-16-64 autoencoder learnable.
pub fn smooth_patches(count: usize, rng: &mut impl Rng) -> Vec<Tensor> {
    (0..count)
        .map(|_| {
            // 3×3 low-frequency DCT coefficients.
            let coeffs: Vec<f64> = (0..9).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut data = Vec::with_capacity(64);
            for y in 0..8 {
                for x in 0..8 {
                    let mut v = 0.0;
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let basis = (std::f64::consts::PI * ky as f64 * (y as f64 + 0.5)
                                / 8.0)
                                .cos()
                                * (std::f64::consts::PI * kx as f64 * (x as f64 + 0.5) / 8.0)
                                    .cos();
                            v += coeffs[ky * 3 + kx] * basis;
                        }
                    }
                    data.push(v);
                }
            }
            // Normalize to [0, 1].
            let (min, max) = data
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let span = (max - min).max(1e-12);
            Tensor::vector(&data.iter().map(|v| (v - min) / span).collect::<Vec<_>>())
        })
        .collect()
}

/// A random weight matrix with entries in `[-1, 1]`, shape `(rows, cols)`.
pub fn random_weight_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
    Tensor::from_vec(&[rows, cols], data).expect("shape matches data")
}

/// A random input vector with entries in `[0, 1]`, length `n`.
pub fn random_input_vector(n: usize, rng: &mut impl Rng) -> Tensor {
    Tensor::vector(&(0..n).map(|_| rng.gen_range(0.0..1.0)).collect::<Vec<_>>())
}

/// Standard-normal sample via Box-Muller.
fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clusters_have_expected_counts_and_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = gaussian_clusters(3, 10, 4, 0.05, &mut rng);
        assert_eq!(data.len(), 30);
        for (x, label) in &data {
            assert_eq!(x.shape(), &[4]);
            assert!(*label < 3);
            assert!(x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn clusters_are_separable() {
        // Same-class points must be closer to their own centroid than to
        // the other centroid on average.
        let mut rng = StdRng::seed_from_u64(9);
        let data = gaussian_clusters(2, 50, 8, 0.02, &mut rng);
        let centroid = |label: usize| -> Vec<f64> {
            let points: Vec<&Tensor> = data
                .iter()
                .filter(|(_, l)| *l == label)
                .map(|(x, _)| x)
                .collect();
            let mut c = vec![0.0; 8];
            for p in &points {
                for (ci, v) in c.iter_mut().zip(p.data()) {
                    *ci += v / points.len() as f64;
                }
            }
            c
        };
        let c0 = centroid(0);
        let c1 = centroid(1);
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
        };
        let mut correct = 0;
        for (x, label) in &data {
            let d0 = dist(x.data(), &c0);
            let d1 = dist(x.data(), &c1);
            let predicted = if d0 < d1 { 0 } else { 1 };
            if predicted == *label {
                correct += 1;
            }
        }
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn patches_are_normalized() {
        let mut rng = StdRng::seed_from_u64(13);
        let patches = smooth_patches(20, &mut rng);
        assert_eq!(patches.len(), 20);
        for p in &patches {
            assert_eq!(p.shape(), &[64]);
            let min = p.data().iter().cloned().fold(f64::INFINITY, f64::min);
            let max = p.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(min >= 0.0 && max <= 1.0 + 1e-12);
            assert!(max - min > 0.5, "patches should use most of the range");
        }
    }

    #[test]
    fn patches_are_smooth() {
        // Neighbouring pixels should differ far less than the full range.
        let mut rng = StdRng::seed_from_u64(21);
        let patches = smooth_patches(10, &mut rng);
        for p in &patches {
            let mut total_step = 0.0;
            let mut steps = 0;
            for y in 0..8 {
                for x in 0..7 {
                    total_step += (p.data()[y * 8 + x + 1] - p.data()[y * 8 + x]).abs();
                    steps += 1;
                }
            }
            assert!(total_step / (steps as f64) < 0.35);
        }
    }

    #[test]
    fn random_matrices_and_vectors() {
        let mut rng = StdRng::seed_from_u64(17);
        let w = random_weight_matrix(3, 5, &mut rng);
        assert_eq!(w.shape(), &[3, 5]);
        assert!(w.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        let x = random_input_vector(7, &mut rng);
        assert_eq!(x.shape(), &[7]);
        assert!(x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(
            random_weight_matrix(4, 4, &mut a).data(),
            random_weight_matrix(4, 4, &mut b).data()
        );
    }
}
