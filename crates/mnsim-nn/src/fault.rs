//! Behavior-level mirror of crossbar hard defects.
//!
//! The circuit path (`mnsim-circuit`) injects a
//! [`FaultMap`] as netlist edits: pinned cell
//! resistances and near-open wire segments. This module applies the *same*
//! map to a behavioral weight matrix, so that the fast accuracy-model path
//! and the slow circuit path both see the same silicon:
//!
//! * a stuck-at-HRS cell conducts minimally → its weight collapses to the
//!   quantizer's bottom level,
//! * a stuck-at-LRS cell conducts maximally → its weight saturates at the
//!   top level,
//! * a drifted cell's resistance scales by a factor `f`, so its conductance
//!   (and, in the linear weight-to-conductance mapping MNSIM uses, its
//!   weight level) scales by `1/f`,
//! * a cell isolated by a broken word/bit line contributes no current →
//!   bottom level, which also blanks whole rows (broken word line) and
//!   column tails (broken bit line).
//!
//! Weight matrices are laid out like the physical array: element `(i, j)`
//! of the tensor is the cell at word line `i`, bit line `j`.

use mnsim_tech::fault::{CellFault, FaultMap};

use crate::error::NnError;
use crate::quantize::Quantizer;
use crate::tensor::Tensor;

/// Applies `map` to a `rows × cols` weight matrix, returning the weights the
/// defective array effectively implements.
///
/// Healthy cells are re-quantized (the array can only hold quantized
/// weights); defective cells are transformed as described at module level.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if `weights` is not a 2-D tensor
/// matching the map's geometry.
pub fn apply_fault_map(
    weights: &Tensor,
    quantizer: &Quantizer,
    map: &FaultMap,
) -> Result<Tensor, NnError> {
    if weights.shape() != [map.rows, map.cols] {
        return Err(NnError::ShapeMismatch {
            expected: vec![map.rows, map.cols],
            actual: weights.shape().to_vec(),
            operation: "apply_fault_map",
        });
    }
    let top = quantizer.levels() - 1;
    let mut out = Tensor::zeros(weights.shape());
    for row in 0..map.rows {
        for col in 0..map.cols {
            let level = quantizer.level_of(weights.at2(row, col));
            let faulted = if map.is_isolated(row, col) {
                0
            } else {
                match map.cells.get(&(row, col)) {
                    Some(CellFault::StuckAtHrs) => 0,
                    Some(CellFault::StuckAtLrs) => top,
                    Some(CellFault::Drifted { factor }) => {
                        let scaled = (level as f64 / factor).round();
                        (scaled.clamp(0.0, top as f64)) as u32
                    }
                    None => level,
                }
            };
            *out.at2_mut(row, col) = quantizer.value_of(faulted);
        }
    }
    Ok(out)
}

/// Mean absolute deviation between the faulted and clean weight matrices,
/// in quantization *levels* — a cheap proxy for how much damage a map does
/// before running any inference.
///
/// # Errors
///
/// Propagates [`apply_fault_map`] failures.
pub fn weight_damage_levels(
    weights: &Tensor,
    quantizer: &Quantizer,
    map: &FaultMap,
) -> Result<f64, NnError> {
    let clean = quantizer.quantize_tensor(weights);
    let faulted = apply_fault_map(weights, quantizer, map)?;
    let step = quantizer.step();
    let total: f64 = clean
        .data()
        .iter()
        .zip(faulted.data())
        .map(|(c, f)| (c - f).abs() / step)
        .sum();
    Ok(total / clean.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Tensor {
        let data = (0..rows * cols)
            .map(|k| k as f64 / (rows * cols - 1) as f64)
            .collect();
        Tensor::from_vec(&[rows, cols], data).unwrap()
    }

    #[test]
    fn clean_map_is_pure_quantization() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        let w = ramp(4, 4);
        let out = apply_fault_map(&w, &q, &FaultMap::empty(4, 4)).unwrap();
        assert_eq!(out, q.quantize_tensor(&w));
        assert_eq!(weight_damage_levels(&w, &q, &FaultMap::empty(4, 4)).unwrap(), 0.0);
    }

    #[test]
    fn stuck_cells_pin_weight_levels() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        let w = ramp(2, 2);
        let mut map = FaultMap::empty(2, 2);
        map.cells.insert((0, 0), CellFault::StuckAtLrs);
        map.cells.insert((1, 1), CellFault::StuckAtHrs);
        let out = apply_fault_map(&w, &q, &map).unwrap();
        assert_eq!(out.at2(0, 0), q.value_of(q.levels() - 1));
        assert_eq!(out.at2(1, 1), q.value_of(0));
        // Healthy cells untouched beyond quantization.
        assert_eq!(out.at2(0, 1), q.quantize(w.at2(0, 1)));
    }

    #[test]
    fn drift_scales_levels_inversely() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let w = Tensor::from_vec(&[1, 1], vec![0.8]).unwrap();
        let level = q.level_of(0.8);
        let mut map = FaultMap::empty(1, 1);
        map.cells.insert((0, 0), CellFault::Drifted { factor: 2.0 });
        let out = apply_fault_map(&w, &q, &map).unwrap();
        let expected = q.value_of((level as f64 / 2.0).round() as u32);
        assert_eq!(out.at2(0, 0), expected);
        assert!(out.at2(0, 0) < 0.8);
    }

    #[test]
    fn broken_wordline_blanks_row_tail() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        let w = ramp(3, 4);
        let mut map = FaultMap::empty(3, 4);
        map.broken_wordlines.insert(1, 2); // cells (1, 2) and (1, 3) dead
        let out = apply_fault_map(&w, &q, &map).unwrap();
        assert_eq!(out.at2(1, 2), q.value_of(0));
        assert_eq!(out.at2(1, 3), q.value_of(0));
        assert_eq!(out.at2(1, 1), q.quantize(w.at2(1, 1)));
        assert_eq!(out.at2(0, 2), q.quantize(w.at2(0, 2)));
    }

    #[test]
    fn detached_sense_blanks_whole_column() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        let w = ramp(3, 3);
        let mut map = FaultMap::empty(3, 3);
        map.broken_bitlines.insert(2, 3); // seg == rows
        let out = apply_fault_map(&w, &q, &map).unwrap();
        for row in 0..3 {
            assert_eq!(out.at2(row, 2), q.value_of(0));
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        let w = ramp(2, 3);
        assert!(matches!(
            apply_fault_map(&w, &q, &FaultMap::empty(3, 2)),
            Err(NnError::ShapeMismatch { .. })
        ));
        let v = Tensor::vector(&[0.1, 0.2]);
        assert!(apply_fault_map(&v, &q, &FaultMap::empty(2, 1)).is_err());
    }

    #[test]
    fn damage_grows_with_defect_density() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let w = ramp(8, 8);
        let light = FaultMap::generate(8, 8, &mnsim_tech::fault::FaultRates::stuck_at(0.05), 5)
            .unwrap();
        let heavy = FaultMap::generate(8, 8, &mnsim_tech::fault::FaultRates::stuck_at(0.5), 5)
            .unwrap();
        let d_light = weight_damage_levels(&w, &q, &light).unwrap();
        let d_heavy = weight_damage_levels(&w, &q, &heavy).unwrap();
        assert!(d_light < d_heavy, "{d_light} !< {d_heavy}");
    }
}
