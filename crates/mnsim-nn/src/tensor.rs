//! Minimal dense tensor for the network substrate.
//!
//! MNSIM's application substrate only needs small dense tensors: 1-D
//! activation vectors, 2-D weight matrices and 3-D `(channels, height,
//! width)` feature maps. Data is `f64`; fixed-point behaviour is applied
//! explicitly through [`crate::quantize::Quantizer`], mirroring how the
//! paper separates quantization error from analog-computation error (§VI).

use crate::error::NnError;

/// A dense row-major tensor of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(
            !shape.is_empty() && shape.iter().all(|&d| d > 0),
            "tensor shape must be non-empty with positive dimensions, got {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len()` does not match the
    /// shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f64>) -> Result<Self, NnError> {
        let volume: usize = shape.iter().product();
        if data.len() != volume {
            return Err(NnError::ShapeMismatch {
                expected: shape.to_vec(),
                actual: vec![data.len()],
                operation: "from_vec",
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a 1-D tensor from a slice.
    pub fn vector(data: &[f64]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of range.
    pub fn at2(&self, i: usize, j: usize) -> f64 {
        assert_eq!(self.shape.len(), 2, "at2 requires a 2-D tensor");
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the indices are out of range.
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        assert_eq!(self.shape.len(), 2, "at2_mut requires a 2-D tensor");
        &mut self.data[i * self.shape[1] + j]
    }

    /// Element access for 3-D `(c, h, w)` tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the indices are out of range.
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f64 {
        assert_eq!(self.shape.len(), 3, "at3 requires a 3-D tensor");
        let (h, w) = (self.shape[1], self.shape[2]);
        assert!(c < self.shape[0] && y < h && x < w, "index out of range");
        self.data[(c * h + y) * w + x]
    }

    /// Mutable element access for 3-D `(c, h, w)` tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 3-D or the indices are out of range.
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f64 {
        assert_eq!(self.shape.len(), 3, "at3_mut requires a 3-D tensor");
        let (h, w) = (self.shape[1], self.shape[2]);
        assert!(c < self.shape[0] && y < h && x < w, "index out of range");
        &mut self.data[(c * h + y) * w + x]
    }

    /// Reinterprets the tensor with a new shape of the same volume.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, NnError> {
        let volume: usize = shape.iter().product();
        if volume != self.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: shape.to_vec(),
                operation: "reshape",
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        })
    }

    /// Matrix-vector product `W·x` for a 2-D `(m, n)` weight tensor and a
    /// length-`n` vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on incompatible shapes.
    pub fn matvec(&self, x: &Tensor) -> Result<Tensor, NnError> {
        if self.shape.len() != 2 || x.shape.len() != 1 || self.shape[1] != x.shape[0] {
            return Err(NnError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: x.shape.clone(),
                operation: "matvec",
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m];
        for (i, out_i) in out.iter_mut().enumerate() {
            let row = &self.data[i * n..(i + 1) * n];
            *out_i = row.iter().zip(&x.data).map(|(w, v)| w * v).sum();
        }
        Ok(Tensor {
            shape: vec![m],
            data: out,
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, NnError> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
                operation: "add",
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Mean squared difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if shapes differ.
    pub fn mse(&self, other: &Tensor) -> Result<f64, NnError> {
        if self.shape != other.shape {
            return Err(NnError::ShapeMismatch {
                expected: self.shape.clone(),
                actual: other.shape.clone(),
                operation: "mse",
            });
        }
        let sum: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        Ok(sum / self.data.len() as f64)
    }

    /// Index of the largest element (ties broken toward the lower index).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty (valid tensors never are).
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("tensor is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "positive dimensions")]
    fn zero_dimension_panics() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn from_vec_validates_volume() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 5]).is_err());
    }

    #[test]
    fn index_2d_and_3d() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at2_mut(1, 2) = 7.0;
        assert_eq!(t.at2(1, 2), 7.0);
        assert_eq!(t.data()[5], 7.0);

        let mut f = Tensor::zeros(&[2, 2, 2]);
        *f.at3_mut(1, 0, 1) = 3.0;
        assert_eq!(f.at3(1, 0, 1), 3.0);
        assert_eq!(f.data()[5], 3.0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn index_3d_bounds_checked() {
        let f = Tensor::zeros(&[1, 2, 2]);
        let _ = f.at3(0, 2, 0);
    }

    #[test]
    fn matvec_known_answer() {
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let x = Tensor::vector(&[1.0, 0.0, -1.0]);
        let y = w.matvec(&x).unwrap();
        assert_eq!(y.data(), &[-2.0, -2.0]);
    }

    #[test]
    fn matvec_shape_checked() {
        let w = Tensor::zeros(&[2, 3]);
        let x = Tensor::vector(&[1.0, 2.0]);
        assert!(matches!(w.matvec(&x), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn add_and_map() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(a.map(|v| v * 10.0).data(), &[10.0, 20.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f64).collect()).unwrap();
        let r = t.reshape(&[3, 2]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[7]).is_err());
    }

    #[test]
    fn mse_and_argmax() {
        let a = Tensor::vector(&[0.0, 1.0, 0.5]);
        let b = Tensor::vector(&[0.0, 0.0, 0.5]);
        assert!((a.mse(&b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.argmax(), 1);
        // ties break toward lower index
        let t = Tensor::vector(&[2.0, 2.0]);
        assert_eq!(t.argmax(), 0);
    }
}
