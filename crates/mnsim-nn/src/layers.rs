//! Network layers: fully-connected, convolution, pooling, activations.
//!
//! These are the algorithm-side counterparts of the hardware hierarchy:
//! a [`FullyConnected`] or [`Conv2d`] layer maps to one MNSIM *computation
//! bank* (its matrix-vector multiplication runs on memristor crossbars),
//! [`MaxPool2d`] maps to the pooling module + line buffer, and
//! [`Activation`] maps to the non-linear neuron module (paper §III.B).

use crate::error::NnError;
use crate::tensor::Tensor;

/// The non-linear neuron function at the end of a layer (paper §III.B-4):
/// sigmoid for DNN, ReLU for CNN, integrate-and-fire for SNN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Rate-coded integrate-and-fire: the output is the number of threshold
    /// crossings `⌊max(0, x) / threshold⌋` (an abstraction of spike counts
    /// over a fixed time window).
    IntegrateFire {
        /// Firing threshold (must be positive).
        threshold: f64,
    },
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(&self, x: f64) -> f64 {
        match *self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::IntegrateFire { threshold } => (x.max(0.0) / threshold).floor(),
        }
    }

    /// Derivative with respect to the input, used by the trainer.
    ///
    /// For [`Activation::IntegrateFire`] the straight-through estimator is
    /// used (derivative 1 where the neuron is above rest, 0 otherwise).
    pub fn derivative(&self, x: f64) -> f64 {
        match *self {
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::IntegrateFire { .. } => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A fully-connected (dense) layer: `y = W·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct FullyConnected {
    /// Weight matrix of shape `(outputs, inputs)`.
    pub weights: Tensor,
    /// Bias vector of shape `(outputs)`.
    pub bias: Tensor,
}

impl FullyConnected {
    /// Creates a zero-initialized layer.
    pub fn zeros(inputs: usize, outputs: usize) -> Self {
        FullyConnected {
            weights: Tensor::zeros(&[outputs, inputs]),
            bias: Tensor::zeros(&[outputs]),
        }
    }

    /// Creates a layer from a weight matrix and bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] if the weight tensor is not 2-D or
    /// the bias does not match the output count.
    pub fn new(weights: Tensor, bias: Tensor) -> Result<Self, NnError> {
        if weights.shape().len() != 2 {
            return Err(NnError::InvalidLayer {
                reason: format!("weights must be 2-D, got {:?}", weights.shape()),
            });
        }
        if bias.shape() != [weights.shape()[0]] {
            return Err(NnError::InvalidLayer {
                reason: format!(
                    "bias shape {:?} must be [{}]",
                    bias.shape(),
                    weights.shape()[0]
                ),
            });
        }
        Ok(FullyConnected { weights, bias })
    }

    /// Number of input neurons.
    pub fn inputs(&self) -> usize {
        self.weights.shape()[1]
    }

    /// Number of output neurons.
    pub fn outputs(&self) -> usize {
        self.weights.shape()[0]
    }

    /// Computes the pre-activation output `W·x + b`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on incompatible input length.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        self.weights.matvec(input)?.add(&self.bias)
    }
}

/// A 2-D convolution layer over `(channels, height, width)` feature maps.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Kernels of shape `(out_channels, in_channels, kernel_h, kernel_w)`.
    pub weights: Tensor,
    /// Bias of shape `(out_channels)`.
    pub bias: Tensor,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl Conv2d {
    /// Creates a zero-initialized convolution layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] if kernel size or stride is zero.
    pub fn zeros(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, NnError> {
        if kernel == 0 || stride == 0 {
            return Err(NnError::InvalidLayer {
                reason: "kernel size and stride must be positive".into(),
            });
        }
        Ok(Conv2d {
            weights: Tensor::zeros(&[out_channels, in_channels, kernel, kernel]),
            bias: Tensor::zeros(&[out_channels]),
            stride,
            padding,
        })
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weights.shape()[0]
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weights.shape()[1]
    }

    /// Kernel height/width.
    pub fn kernel(&self) -> usize {
        self.weights.shape()[2]
    }

    /// Spatial output size for a given input size.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel()) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel()) / self.stride + 1;
        (oh, ow)
    }

    /// Computes the convolution of a `(c, h, w)` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input is not 3-D with the
    /// expected channel count, or smaller than the kernel.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[0] != self.in_channels() {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.in_channels()],
                actual: shape.to_vec(),
                operation: "conv2d",
            });
        }
        let (h, w) = (shape[1], shape[2]);
        let k = self.kernel();
        if h + 2 * self.padding < k || w + 2 * self.padding < k {
            return Err(NnError::ShapeMismatch {
                expected: vec![k, k],
                actual: vec![h, w],
                operation: "conv2d (input smaller than kernel)",
            });
        }
        let (oh, ow) = self.output_hw(h, w);
        let mut out = Tensor::zeros(&[self.out_channels(), oh, ow]);

        let wdata = self.weights.data();
        let (ic, kk) = (self.in_channels(), k);
        for oc in 0..self.out_channels() {
            let b = self.bias.data()[oc];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    for c in 0..ic {
                        for ky in 0..kk {
                            let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kk {
                                let ix =
                                    (ox * self.stride + kx) as isize - self.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let wv = wdata[((oc * ic + c) * kk + ky) * kk + kx];
                                acc += wv * input.at3(c, iy as usize, ix as usize);
                            }
                        }
                    }
                    *out.at3_mut(oc, oy, ox) = acc;
                }
            }
        }
        Ok(out)
    }
}

/// A spatial max-pooling layer (`k × k` window, stride `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    /// Pooling window size (and stride).
    pub size: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] if `size == 0`.
    pub fn new(size: usize) -> Result<Self, NnError> {
        if size == 0 {
            return Err(NnError::InvalidLayer {
                reason: "pooling size must be positive".into(),
            });
        }
        Ok(MaxPool2d { size })
    }

    /// Pools a `(c, h, w)` input (truncating ragged borders).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input is not 3-D or smaller
    /// than the window.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        let shape = input.shape();
        if shape.len() != 3 || shape[1] < self.size || shape[2] < self.size {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.size, self.size],
                actual: shape.to_vec(),
                operation: "maxpool2d",
            });
        }
        let (c, h, w) = (shape[0], shape[1], shape[2]);
        let (oh, ow) = (h / self.size, w / self.size);
        let mut out = Tensor::zeros(&[c, oh, ow]);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    for dy in 0..self.size {
                        for dx in 0..self.size {
                            best = best.max(input.at3(ch, oy * self.size + dy, ox * self.size + dx));
                        }
                    }
                    *out.at3_mut(ch, oy, ox) = best;
                }
            }
        }
        Ok(out)
    }
}

/// Any layer in a network.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Layer {
    /// Dense synapse layer.
    FullyConnected(FullyConnected),
    /// Convolution synapse layer.
    Conv2d(Conv2d),
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Elementwise activation (neuron function).
    Activation(Activation),
    /// Reshape a feature map to a flat vector.
    Flatten,
}

impl Layer {
    /// Runs the layer forward.
    ///
    /// # Errors
    ///
    /// Propagates the shape errors of the concrete layer type.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, NnError> {
        match self {
            Layer::FullyConnected(fc) => fc.forward(input),
            Layer::Conv2d(conv) => conv.forward(input),
            Layer::MaxPool2d(pool) => pool.forward(input),
            Layer::Activation(act) => Ok(input.map(|v| act.apply(v))),
            Layer::Flatten => input.reshape(&[input.len()]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        let snn = Activation::IntegrateFire { threshold: 0.5 };
        assert_eq!(snn.apply(1.3), 2.0);
        assert_eq!(snn.apply(-1.0), 0.0);
    }

    #[test]
    fn activation_derivatives() {
        let s = Activation::Sigmoid;
        assert!((s.derivative(0.0) - 0.25).abs() < 1e-12);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
    }

    #[test]
    fn fully_connected_forward() {
        let w = Tensor::from_vec(&[2, 2], vec![1.0, -1.0, 0.5, 0.5]).unwrap();
        let b = Tensor::vector(&[0.0, 1.0]);
        let fc = FullyConnected::new(w, b).unwrap();
        assert_eq!(fc.inputs(), 2);
        assert_eq!(fc.outputs(), 2);
        let y = fc.forward(&Tensor::vector(&[2.0, 4.0])).unwrap();
        assert_eq!(y.data(), &[-2.0, 4.0]);
    }

    #[test]
    fn fully_connected_validation() {
        let w = Tensor::zeros(&[2, 3]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(FullyConnected::new(w.clone(), bad_bias).is_err());
        let not_2d = Tensor::zeros(&[2]);
        assert!(FullyConnected::new(not_2d, Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn conv_identity_kernel() {
        // 1×1 kernel with weight 1 reproduces the input.
        let mut conv = Conv2d::zeros(1, 1, 1, 1, 0).unwrap();
        conv.weights.data_mut()[0] = 1.0;
        let input = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv_known_sum_kernel() {
        // 2×2 all-ones kernel, stride 1: each output is the window sum.
        let mut conv = Conv2d::zeros(1, 1, 2, 1, 0).unwrap();
        for v in conv.weights.data_mut() {
            *v = 1.0;
        }
        let input =
            Tensor::from_vec(&[1, 3, 3], (1..=9).map(|i| i as f64).collect()).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_padding_and_stride_shapes() {
        let conv = Conv2d::zeros(3, 8, 3, 2, 1).unwrap();
        // VGG-style: 224×224 with pad 1 stride 2 → 112×112
        assert_eq!(conv.output_hw(224, 224), (112, 112));
        let conv = Conv2d::zeros(3, 8, 3, 1, 1).unwrap();
        assert_eq!(conv.output_hw(224, 224), (224, 224));
    }

    #[test]
    fn conv_channel_mismatch_rejected() {
        let conv = Conv2d::zeros(2, 1, 1, 1, 0).unwrap();
        let input = Tensor::zeros(&[1, 2, 2]);
        assert!(conv.forward(&input).is_err());
    }

    #[test]
    fn maxpool_known_answer() {
        let pool = MaxPool2d::new(2).unwrap();
        let input = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                1.0, 0.0, 0.0, 0.0, //
                0.0, 9.0, 0.0, 2.0,
            ],
        )
        .unwrap();
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 8.0, 9.0, 2.0]);
    }

    #[test]
    fn maxpool_validation() {
        assert!(MaxPool2d::new(0).is_err());
        let pool = MaxPool2d::new(3).unwrap();
        assert!(pool.forward(&Tensor::zeros(&[1, 2, 2])).is_err());
    }

    #[test]
    fn flatten_and_layer_dispatch() {
        let input = Tensor::zeros(&[2, 3, 4]);
        let flat = Layer::Flatten.forward(&input).unwrap();
        assert_eq!(flat.shape(), &[24]);

        let act = Layer::Activation(Activation::Relu);
        let y = act.forward(&Tensor::vector(&[-1.0, 1.0])).unwrap();
        assert_eq!(y.data(), &[0.0, 1.0]);
    }
}
