//! # mnsim-nn — neural-network substrate for MNSIM
//!
//! The application side of the MNSIM reproduction:
//!
//! * [`tensor`] — minimal dense tensors,
//! * [`quantize`] — fixed-point quantizers (the paper's ideal-computation
//!   reference, §VI),
//! * [`layers`] / [`network`] — DNN/CNN/SNN inference layers,
//! * [`im2col`] — convolution lowered to the crossbar's matrix-vector view,
//! * [`train`] — SGD/backprop trainer producing the "well-trained networks"
//!   MNSIM maps onto hardware,
//! * [`descriptor`] / [`models`] — shape-level network descriptors (VGG-16,
//!   CaffeNet, MLPs) consumed by the performance models,
//! * [`data`] — synthetic workload generators (documented substitutions for
//!   MNIST/ImageNet/JPEG inputs),
//! * [`noise`] — digital-deviation injection for application-level accuracy
//!   validation,
//! * [`fault`] — behavior-level mirror of crossbar hard defects (stuck
//!   weights, blanked rows/columns) sharing `mnsim-tech`'s fault maps,
//! * [`snn`] — rate-coded spiking-network simulation (integrate-and-fire).
//!
//! # Examples
//!
//! ```
//! use mnsim_nn::models::vgg16;
//!
//! let net = vgg16();
//! assert_eq!(net.depth(), 16); // 13 conv + 3 fully-connected banks
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface failures as typed errors; tests may unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod data;
pub mod descriptor;
pub mod error;
pub mod fault;
pub mod im2col;
pub mod layers;
pub mod models;
pub mod network;
pub mod noise;
pub mod quantize;
pub mod snn;
pub mod tensor;
pub mod train;

pub use descriptor::{BankDescriptor, ConvShape, NetworkDescriptor};
pub use error::NnError;
pub use fault::{apply_fault_map, weight_damage_levels};
pub use layers::{Activation, Conv2d, FullyConnected, Layer, MaxPool2d};
pub use network::Network;
pub use quantize::Quantizer;
pub use snn::{SpikeTrace, SpikingNetwork};
pub use tensor::Tensor;
pub use train::Mlp;
