//! Shape-level network descriptors.
//!
//! The MNSIM performance models do not need trained weights — only the
//! *shape* of every weight-bearing layer (paper Table I: `Network_Depth`,
//! `Network_Scale`). A [`NetworkDescriptor`] lists one [`BankDescriptor`]
//! per neuromorphic layer, i.e. per MNSIM computation bank: only layers
//! carrying convolution kernels or fully-connected weights count (§III.A);
//! the ReLU / pooling / buffering that follows a Conv layer is folded into
//! the same bank as its peripheral function.

use crate::error::NnError;

/// Geometry of a convolution layer mapped onto crossbars.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (number of kernels).
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub padding: usize,
    /// Input feature-map height.
    pub input_h: usize,
    /// Input feature-map width.
    pub input_w: usize,
}

impl ConvShape {
    /// Output feature-map size `(h, w)`.
    pub fn output_hw(&self) -> (usize, usize) {
        let oh = (self.input_h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (self.input_w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

/// One computation bank's workload: a weight-bearing layer plus its
/// in-bank peripheral functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BankDescriptor {
    /// Fully-connected layer of `inputs × outputs` weights.
    FullyConnected {
        /// Input neuron count.
        inputs: usize,
        /// Output neuron count.
        outputs: usize,
    },
    /// Convolution layer; `pooling` gives the `k×k` max-pool that follows
    /// it inside the same bank (if any).
    Conv {
        /// Kernel geometry.
        shape: ConvShape,
        /// Pooling window size after the convolution, if present.
        pooling: Option<usize>,
    },
}

impl BankDescriptor {
    /// Rows of the weight matrix this bank realizes on crossbars
    /// (= input vector length of one matrix-vector multiplication).
    ///
    /// For a Conv bank the matrix-vector view is: each kernel is one matrix
    /// column of length `in_channels · k²` (paper §II.B-3).
    pub fn matrix_rows(&self) -> usize {
        match self {
            BankDescriptor::FullyConnected { inputs, .. } => *inputs,
            BankDescriptor::Conv { shape, .. } => {
                shape.in_channels * shape.kernel * shape.kernel
            }
        }
    }

    /// Columns of the weight matrix (= output vector length of one
    /// matrix-vector multiplication).
    pub fn matrix_cols(&self) -> usize {
        match self {
            BankDescriptor::FullyConnected { outputs, .. } => *outputs,
            BankDescriptor::Conv { shape, .. } => shape.out_channels,
        }
    }

    /// Matrix-vector multiplications needed per input sample: 1 for a
    /// fully-connected layer, one per output pixel for a convolution.
    pub fn ops_per_sample(&self) -> usize {
        match self {
            BankDescriptor::FullyConnected { .. } => 1,
            BankDescriptor::Conv { shape, .. } => {
                let (oh, ow) = shape.output_hw();
                oh * ow
            }
        }
    }

    /// Total weight count of the bank.
    pub fn weight_count(&self) -> usize {
        self.matrix_rows() * self.matrix_cols()
    }

    /// Output element count per sample (after pooling, if any).
    pub fn outputs_per_sample(&self) -> usize {
        match self {
            BankDescriptor::FullyConnected { outputs, .. } => *outputs,
            BankDescriptor::Conv { shape, pooling } => {
                let (mut oh, mut ow) = shape.output_hw();
                if let Some(p) = pooling {
                    oh /= p;
                    ow /= p;
                }
                shape.out_channels * oh * ow
            }
        }
    }
}

/// A complete application network at shape level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkDescriptor {
    /// Human-readable name.
    pub name: String,
    /// One entry per computation bank, input side first.
    pub banks: Vec<BankDescriptor>,
}

impl NetworkDescriptor {
    /// Creates a descriptor after validating bank chaining.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNetwork`] for an empty bank list or for
    /// consecutive fully-connected banks whose sizes do not chain.
    pub fn new(name: impl Into<String>, banks: Vec<BankDescriptor>) -> Result<Self, NnError> {
        if banks.is_empty() {
            return Err(NnError::InvalidNetwork {
                reason: "a network needs at least one computation bank".into(),
            });
        }
        for window in banks.windows(2) {
            if let (
                BankDescriptor::FullyConnected { outputs, .. },
                BankDescriptor::FullyConnected { inputs, .. },
            ) = (&window[0], &window[1])
            {
                if outputs != inputs {
                    return Err(NnError::InvalidNetwork {
                        reason: format!(
                            "fully-connected banks do not chain: {outputs} outputs feed {inputs} inputs"
                        ),
                    });
                }
            }
        }
        Ok(NetworkDescriptor {
            name: name.into(),
            banks,
        })
    }

    /// `Network_Depth` in the paper's terms: number of computation banks.
    pub fn depth(&self) -> usize {
        self.banks.len()
    }

    /// Total weight count across all banks.
    pub fn total_weights(&self) -> usize {
        self.banks.iter().map(BankDescriptor::weight_count).sum()
    }

    /// Input element count of the first bank (one sample's size).
    pub fn input_size(&self) -> usize {
        match &self.banks[0] {
            BankDescriptor::FullyConnected { inputs, .. } => *inputs,
            BankDescriptor::Conv { shape, .. } => {
                shape.in_channels * shape.input_h * shape.input_w
            }
        }
    }

    /// Output element count of the last bank.
    pub fn output_size(&self) -> usize {
        self.banks
            .last()
            .expect("descriptor has at least one bank")
            .outputs_per_sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_bank_geometry() {
        let bank = BankDescriptor::FullyConnected {
            inputs: 2048,
            outputs: 1024,
        };
        assert_eq!(bank.matrix_rows(), 2048);
        assert_eq!(bank.matrix_cols(), 1024);
        assert_eq!(bank.ops_per_sample(), 1);
        assert_eq!(bank.weight_count(), 2048 * 1024);
        assert_eq!(bank.outputs_per_sample(), 1024);
    }

    #[test]
    fn conv_bank_geometry() {
        let shape = ConvShape {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            input_h: 224,
            input_w: 224,
        };
        let bank = BankDescriptor::Conv {
            shape,
            pooling: None,
        };
        assert_eq!(bank.matrix_rows(), 27);
        assert_eq!(bank.matrix_cols(), 64);
        assert_eq!(shape.output_hw(), (224, 224));
        assert_eq!(bank.ops_per_sample(), 224 * 224);
        assert_eq!(bank.outputs_per_sample(), 64 * 224 * 224);
    }

    #[test]
    fn pooling_shrinks_outputs() {
        let shape = ConvShape {
            in_channels: 64,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            input_h: 224,
            input_w: 224,
        };
        let bank = BankDescriptor::Conv {
            shape,
            pooling: Some(2),
        };
        assert_eq!(bank.outputs_per_sample(), 64 * 112 * 112);
    }

    #[test]
    fn descriptor_validation() {
        assert!(NetworkDescriptor::new("empty", vec![]).is_err());

        let bad = NetworkDescriptor::new(
            "mismatch",
            vec![
                BankDescriptor::FullyConnected {
                    inputs: 10,
                    outputs: 20,
                },
                BankDescriptor::FullyConnected {
                    inputs: 30,
                    outputs: 5,
                },
            ],
        );
        assert!(bad.is_err());

        let good = NetworkDescriptor::new(
            "chain",
            vec![
                BankDescriptor::FullyConnected {
                    inputs: 10,
                    outputs: 20,
                },
                BankDescriptor::FullyConnected {
                    inputs: 20,
                    outputs: 5,
                },
            ],
        )
        .unwrap();
        assert_eq!(good.depth(), 2);
        assert_eq!(good.input_size(), 10);
        assert_eq!(good.output_size(), 5);
        assert_eq!(good.total_weights(), 200 + 100);
    }
}
