//! Fixed-point quantization.
//!
//! MNSIM defines computing error *relative to the fixed-point algorithm*
//! (paper §VI): data quantization error is excluded, analog-computation
//! error is what the accuracy model estimates. This module supplies the
//! fixed-point reference: uniform quantizers for signals (unsigned k-bit
//! levels, matching the read circuits' `k` quantization boundaries) and
//! weights (signed fixed-point).

use crate::error::NnError;
use crate::tensor::Tensor;

/// A uniform quantizer over a closed range.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    bits: u32,
    min: f64,
    max: f64,
}

impl Quantizer {
    /// Creates a quantizer with `bits` of precision over `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidQuantizer`] if `bits == 0`, `bits > 16`, or
    /// the range is empty/invalid.
    pub fn new(bits: u32, min: f64, max: f64) -> Result<Self, NnError> {
        if bits == 0 || bits > 16 {
            return Err(NnError::InvalidQuantizer {
                reason: format!("bits must be in 1..=16, got {bits}"),
            });
        }
        if !min.is_finite() || !max.is_finite() || max <= min {
            return Err(NnError::InvalidQuantizer {
                reason: format!("range [{min}, {max}] is empty or not finite"),
            });
        }
        Ok(Quantizer { bits, min, max })
    }

    /// Unsigned signal quantizer over `[0, 1]` — the read-circuit model of
    /// the paper (k = 2^bits levels).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Quantizer::new`].
    pub fn unsigned_unit(bits: u32) -> Result<Self, NnError> {
        Quantizer::new(bits, 0.0, 1.0)
    }

    /// Signed weight quantizer over `[-1, 1]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Quantizer::new`].
    pub fn signed_unit(bits: u32) -> Result<Self, NnError> {
        Quantizer::new(bits, -1.0, 1.0)
    }

    /// Precision in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of representable levels, `k = 2^bits`.
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// The quantization step (interval between neighbouring levels).
    pub fn step(&self) -> f64 {
        (self.max - self.min) / (self.levels() - 1) as f64
    }

    /// Quantizes one value to its level index (`0 ..= levels-1`), clamping
    /// out-of-range inputs.
    pub fn level_of(&self, value: f64) -> u32 {
        let clamped = value.clamp(self.min, self.max);
        ((clamped - self.min) / self.step()).round() as u32
    }

    /// The representative value of a level index.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn value_of(&self, level: u32) -> f64 {
        assert!(level < self.levels(), "level {level} out of range");
        self.min + level as f64 * self.step()
    }

    /// Quantizes one value to its nearest representable value.
    pub fn quantize(&self, value: f64) -> f64 {
        self.value_of(self.level_of(value))
    }

    /// Quantizes every element of a tensor.
    pub fn quantize_tensor(&self, tensor: &Tensor) -> Tensor {
        tensor.map(|v| self.quantize(v))
    }

    /// The worst-case quantization error (half a step).
    pub fn max_quantization_error(&self) -> f64 {
        self.step() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert!(Quantizer::new(0, 0.0, 1.0).is_err());
        assert!(Quantizer::new(17, 0.0, 1.0).is_err());
        assert!(Quantizer::new(8, 1.0, 1.0).is_err());
        assert!(Quantizer::new(8, 2.0, 1.0).is_err());
        assert!(Quantizer::new(8, f64::NAN, 1.0).is_err());
        assert!(Quantizer::new(8, 0.0, 1.0).is_ok());
    }

    #[test]
    fn level_count_and_step() {
        let q = Quantizer::unsigned_unit(3).unwrap();
        assert_eq!(q.levels(), 8);
        assert!((q.step() - 1.0 / 7.0).abs() < 1e-15);
    }

    #[test]
    fn roundtrip_is_idempotent() {
        let q = Quantizer::signed_unit(4).unwrap();
        for i in 0..q.levels() {
            let v = q.value_of(i);
            assert_eq!(q.level_of(v), i);
            assert_eq!(q.quantize(v), v);
        }
    }

    #[test]
    fn quantization_error_bounded() {
        let q = Quantizer::unsigned_unit(6).unwrap();
        let bound = q.max_quantization_error() + 1e-15;
        for k in 0..1000 {
            let v = k as f64 / 999.0;
            assert!((q.quantize(v) - v).abs() <= bound, "value {v}");
        }
    }

    #[test]
    fn clamping_out_of_range() {
        let q = Quantizer::unsigned_unit(4).unwrap();
        assert_eq!(q.level_of(-1.0), 0);
        assert_eq!(q.level_of(2.0), q.levels() - 1);
        assert_eq!(q.quantize(5.0), 1.0);
    }

    #[test]
    fn signed_quantizer_covers_negatives() {
        let q = Quantizer::signed_unit(4).unwrap();
        assert_eq!(q.value_of(0), -1.0);
        assert!((q.quantize(0.0)).abs() < q.step());
        assert_eq!(q.quantize(1.0), 1.0);
        assert_eq!(q.quantize(-1.0), -1.0);
    }

    #[test]
    fn tensor_quantization() {
        let q = Quantizer::unsigned_unit(1).unwrap();
        let t = Tensor::vector(&[0.1, 0.6, 0.4999]);
        let out = q.quantize_tensor(&t);
        assert_eq!(out.data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn value_of_bounds_checked() {
        let q = Quantizer::unsigned_unit(2).unwrap();
        let _ = q.value_of(4);
    }
}
