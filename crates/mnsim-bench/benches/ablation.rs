//! Design-choice ablations called out in DESIGN.md:
//!
//! 2. worst-case vs average-case accuracy estimation cost,
//! 3. dual-crossbar vs shared-crossbar signed-weight mapping
//!    (full bank evaluation under both mappings),
//!
//! plus the paper-linear vs quadratic wire-term model.

use criterion::{criterion_group, criterion_main, Criterion};
use mnsim_bench::experiments::large_bank_config;
use mnsim_core::accuracy::{AccuracyModel, Case};
use mnsim_core::config::{InputEncoding, SignedMapping};
use mnsim_core::simulate::simulate;
use mnsim_tech::units::Resistance;

fn bench_case_estimation(c: &mut Criterion) {
    let config = large_bank_config();
    let model = AccuracyModel::from_config(&config);
    let mut group = c.benchmark_group("ablation/estimation_case");
    for (name, case) in [("worst", Case::Worst), ("average", Case::Average)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(model.error_rate(
                    256,
                    256,
                    config.interconnect,
                    &config.device,
                    case,
                ))
            });
        });
    }
    group.finish();
}

fn bench_signed_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/signed_mapping");
    for (name, mapping) in [
        ("dual_crossbar", SignedMapping::DualCrossbar),
        ("shared_crossbar", SignedMapping::SharedCrossbar),
    ] {
        let mut config = large_bank_config();
        config.signed_mapping = mapping;
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(simulate(&config).unwrap()));
        });
    }
    group.finish();
}

fn bench_wire_models(c: &mut Criterion) {
    let config = large_bank_config();
    let linear = AccuracyModel::paper_linear(Resistance::from_ohms(10.0));
    let quadratic = AccuracyModel::new(Resistance::from_ohms(10.0));
    let mut group = c.benchmark_group("ablation/wire_model");
    for (name, model) in [("paper_linear", &linear), ("quadratic", &quadratic)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(model.error_rate(
                    128,
                    128,
                    config.interconnect,
                    &config.device,
                    Case::Worst,
                ))
            });
        });
    }
    group.finish();
}

fn bench_input_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/input_encoding");
    for (name, encoding) in [
        ("analog_dac", InputEncoding::AnalogDac),
        ("bit_serial", InputEncoding::BitSerial),
    ] {
        let mut config = large_bank_config();
        config.input_encoding = encoding;
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(simulate(&config).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_case_estimation,
    bench_signed_mapping,
    bench_wire_models,
    bench_input_encoding
);
criterion_main!(benches);
