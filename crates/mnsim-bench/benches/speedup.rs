//! Table III basis: circuit-level solve vs behavior-level evaluation of a
//! single crossbar, per size. The ratio of the two groups is the paper's
//! speed-up column.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_circuit::solve::{solve_dc, SolveOptions};
use mnsim_core::accuracy::{AccuracyModel, Case};
use mnsim_core::config::Config;
use mnsim_core::modules::crossbar::CrossbarModel;

fn bench_circuit_solver(c: &mut Criterion) {
    let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
    let mut group = c.benchmark_group("table3/circuit");
    group.sample_size(10);
    for &size in &[16usize, 32, 64] {
        let mut spec = CrossbarSpec::uniform(
            size,
            size,
            config.device.r_min,
            config.interconnect.segment_resistance(),
            config.sense_resistance,
            config.device.v_read,
        );
        spec.iv = config.device.iv;
        let xbar = spec.build().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &xbar, |b, xbar| {
            b.iter(|| solve_dc(xbar.circuit(), &SolveOptions::default()).unwrap());
        });
    }
    group.finish();
}

fn bench_behavior_model(c: &mut Criterion) {
    let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
    let accuracy = AccuracyModel::from_config(&config);
    let mut group = c.benchmark_group("table3/mnsim");
    for &size in &[16usize, 32, 64, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                let model = CrossbarModel::new(size, &config.device, config.interconnect);
                let mut sink = model.area().square_meters();
                sink += model.compute_power(size, size).watts();
                sink += model.settle_latency().seconds();
                sink += accuracy.error_rate(
                    size,
                    size,
                    config.interconnect,
                    &config.device,
                    Case::Worst,
                );
                std::hint::black_box(sink)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_circuit_solver, bench_behavior_model);
criterion_main!(benches);
