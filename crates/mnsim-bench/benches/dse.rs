//! Design-space-exploration throughput (the paper's "10,220 designs within
//! 4 seconds" claim) and the serial-vs-threaded ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use mnsim_bench::experiments::large_bank_config;
use mnsim_core::dse::{explore, explore_with, Constraints, DesignSpace};
use mnsim_core::exec::ExecOptions;
use mnsim_core::simulate::simulate;
use mnsim_tech::interconnect::InterconnectNode;

fn reduced_space() -> DesignSpace {
    DesignSpace {
        crossbar_sizes: vec![32, 64, 128, 256],
        parallelism_degrees: vec![1, 8, 64],
        interconnects: vec![InterconnectNode::N28, InterconnectNode::N45],
    }
}

fn bench_single_evaluation(c: &mut Criterion) {
    let config = large_bank_config();
    c.bench_function("dse/single_design_evaluation", |b| {
        b.iter(|| std::hint::black_box(simulate(&config).unwrap()));
    });
}

fn bench_explore_serial(c: &mut Criterion) {
    let base = large_bank_config();
    let space = reduced_space();
    let mut group = c.benchmark_group("dse/traversal");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| explore(&base, &space, &Constraints::default()).unwrap());
    });
    group.bench_function("parallel_4_threads", |b| {
        b.iter(|| {
            explore_with(&base, &space, &Constraints::default(), &ExecOptions::with_threads(4))
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_evaluation, bench_explore_serial);
criterion_main!(benches);
