//! Cost of the behavior-level accuracy model (Fig. 5 / Eq. 11–16 path):
//! single-crossbar error rate, quantization deviations, and the full
//! multi-layer propagation chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnsim_core::accuracy::{avg_digital_deviation, propagate, AccuracyModel, Case};
use mnsim_core::config::Config;

fn bench_crossbar_error(c: &mut Criterion) {
    let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
    let model = AccuracyModel::from_config(&config);
    let mut group = c.benchmark_group("accuracy/crossbar_error");
    for &size in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                std::hint::black_box(model.error_rate(
                    size,
                    size,
                    config.interconnect,
                    &config.device,
                    Case::Worst,
                ))
            });
        });
    }
    group.finish();
}

fn bench_quantization(c: &mut Criterion) {
    c.bench_function("accuracy/avg_digital_deviation_k256", |b| {
        b.iter(|| std::hint::black_box(avg_digital_deviation(256, 0.07)));
    });
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("accuracy/propagation");
    for &depth in &[2usize, 16, 64] {
        let epsilons = vec![0.05; depth];
        group.bench_with_input(BenchmarkId::from_parameter(depth), &epsilons, |b, eps| {
            b.iter(|| std::hint::black_box(propagate(eps, 256)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_crossbar_error,
    bench_quantization,
    bench_propagation
);
criterion_main!(benches);
