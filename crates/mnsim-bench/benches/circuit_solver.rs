//! Circuit-solver ablation: Jacobi-CG vs dense LU on the reduced crossbar
//! system, locating the crossover size (DESIGN.md ablation 1), plus the
//! Newton overhead of non-linear cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_circuit::solve::{solve_dc, Method, SolveOptions};
use mnsim_tech::memristor::IvModel;
use mnsim_tech::units::{Resistance, Voltage};

fn linear_spec(size: usize) -> CrossbarSpec {
    CrossbarSpec::uniform(
        size,
        size,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(10.0),
        Voltage::from_volts(0.5),
    )
}

fn bench_cg_vs_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/cg_vs_lu");
    group.sample_size(10);
    for &size in &[4usize, 8, 12, 16] {
        let xbar = linear_spec(size).build().unwrap();
        for (name, method) in [("cg", Method::Cg), ("lu", Method::DenseLu)] {
            let options = SolveOptions {
                method,
                ..SolveOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new(name, size),
                &(&xbar, options),
                |b, (xbar, options)| {
                    b.iter(|| solve_dc(xbar.circuit(), options).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_newton_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver/newton_overhead");
    group.sample_size(10);
    let size = 32;
    let linear = linear_spec(size).build().unwrap();
    let mut nonlinear_spec = linear_spec(size);
    nonlinear_spec.iv = IvModel::Sinh { alpha: 2.5 };
    let nonlinear = nonlinear_spec.build().unwrap();
    group.bench_function("linear", |b| {
        b.iter(|| solve_dc(linear.circuit(), &SolveOptions::default()).unwrap());
    });
    group.bench_function("nonlinear_newton", |b| {
        b.iter(|| solve_dc(nonlinear.circuit(), &SolveOptions::default()).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_cg_vs_lu, bench_newton_overhead);
criterion_main!(benches);
