//! Network-substrate throughput: fully-connected and convolution forward
//! passes, training steps, and quantization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnsim_nn::layers::{Activation, Conv2d, FullyConnected};
use mnsim_nn::quantize::Quantizer;
use mnsim_nn::tensor::Tensor;
use mnsim_nn::train::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fc_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn/fc_forward");
    for &n in &[128usize, 512, 2048] {
        let fc = FullyConnected::zeros(n, n);
        let x = Tensor::vector(&vec![0.5; n]);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&fc, &x), |b, (fc, x)| {
            b.iter(|| fc.forward(x).unwrap());
        });
    }
    group.finish();
}

fn bench_conv_forward(c: &mut Criterion) {
    let conv = Conv2d::zeros(16, 16, 3, 1, 1).unwrap();
    let input = Tensor::zeros(&[16, 28, 28]);
    c.bench_function("nn/conv3x3_16ch_28px", |b| {
        b.iter(|| conv.forward(&input).unwrap());
    });
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut mlp = Mlp::random(
        &[64, 16, 64],
        Activation::Sigmoid,
        Activation::Sigmoid,
        &mut rng,
    )
    .unwrap();
    let x = Tensor::vector(&vec![0.5; 64]);
    c.bench_function("nn/train_sample_64_16_64", |b| {
        b.iter(|| mlp.train_sample(&x, &x, 0.1).unwrap());
    });
}

fn bench_quantization(c: &mut Criterion) {
    let q = Quantizer::unsigned_unit(8).unwrap();
    let t = Tensor::vector(&(0..4096).map(|i| i as f64 / 4095.0).collect::<Vec<_>>());
    c.bench_function("nn/quantize_4096", |b| {
        b.iter(|| q.quantize_tensor(&t));
    });
}

criterion_group!(
    benches,
    bench_fc_forward,
    bench_conv_forward,
    bench_training_step,
    bench_quantization
);
criterion_main!(benches);
