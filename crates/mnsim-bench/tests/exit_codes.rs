//! The `repro` exit-code contract, asserted against the real binary:
//! 0 success, 2 configuration/usage error, 3 interrupted,
//! 4 server-protocol error. Plus a full serve/client round trip over a
//! unix socket.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn unknown_experiment_exits_2() {
    let out = repro().arg("table99").output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn bad_emit_spec_exits_2() {
    let out = repro()
        .args(["fig6", "--emit", "nonsense"])
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn expired_deadline_exits_3() {
    let out = repro()
        .args(["faultmc", "--deadline-ms", "0", "--trials", "4"])
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
}

#[test]
fn unreachable_server_exits_4() {
    let out = repro()
        .args([
            "client",
            "--socket",
            "/nonexistent/mnsim.sock",
            r#"{"type":"request","id":1,"op":"ping"}"#,
        ])
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(4), "{out:?}");
}

#[test]
fn client_without_socket_exits_2() {
    let out = repro().arg("client").output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn successful_experiment_exits_0() {
    let out = repro().arg("fig6").output().expect("repro runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
}

#[test]
fn stdio_serve_drains_a_piped_batch_before_shutdown() {
    use std::io::Write;
    // Requests queued ahead of the shutdown line must all be answered:
    // stdio mode doubles as a one-shot batch evaluator.
    let mut server = repro()
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    server
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(
            concat!(
                "{\"type\":\"hello\",\"schema_version\":1}\n",
                "{\"type\":\"request\",\"id\":1,\"op\":\"simulate\",\"mlp\":[64,32]}\n",
                "{\"type\":\"request\",\"id\":2,\"op\":\"simulate\",\"mlp\":[96,48]}\n",
                "{\"type\":\"shutdown\"}\n",
            )
            .as_bytes(),
        )
        .expect("requests pipe in");
    let out = server.wait_with_output().expect("server runs");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"hello_ok\""), "{stdout}");
    for id in [1, 2] {
        assert!(
            stdout.contains(&format!("{{\"type\":\"response\",\"id\":{id},\"ok\":true")),
            "request {id} was not answered: {stdout}"
        );
    }
    assert!(!stdout.contains("shutting_down"), "{stdout}");
}

#[test]
fn serve_client_round_trip_exits_0_and_4_for_bad_requests() {
    let socket = std::env::temp_dir()
        .join(format!("mnsim_exit_codes_{}.sock", std::process::id()))
        .to_string_lossy()
        .to_string();
    let mut server = repro()
        .args(["serve", "--socket", &socket, "--workers", "1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !std::path::Path::new(&socket).exists() {
        assert!(Instant::now() < deadline, "server socket never appeared");
        std::thread::sleep(Duration::from_millis(10));
    }

    // A well-formed request: code 0, response on stdout.
    let ok = repro()
        .args([
            "client",
            "--socket",
            &socket,
            r#"{"type":"request","id":1,"op":"ping"}"#,
        ])
        .output()
        .expect("client runs");
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("\"pong\":true"), "{stdout}");

    // A protocol-level failure (unsupported op): code 4.
    let bad = repro()
        .args([
            "client",
            "--socket",
            &socket,
            r#"{"type":"request","id":2,"op":"warp"}"#,
        ])
        .output()
        .expect("client runs");
    assert_eq!(bad.status.code(), Some(4), "{bad:?}");

    // A config-level failure rides the same contract as local runs: 2.
    let config = repro()
        .args([
            "client",
            "--socket",
            &socket,
            r#"{"type":"request","id":3,"op":"simulate","config":"Crossbar_Size = 100\n"}"#,
        ])
        .output()
        .expect("client runs");
    assert_eq!(config.status.code(), Some(2), "{config:?}");

    // `--shutdown` stops the server; both sides exit 0.
    let stop = repro()
        .args([
            "client",
            "--socket",
            &socket,
            "--shutdown",
            r#"{"type":"request","id":4,"op":"stats"}"#,
        ])
        .output()
        .expect("client runs");
    assert_eq!(stop.status.code(), Some(0), "{stop:?}");

    let deadline = Instant::now() + Duration::from_secs(20);
    let status = loop {
        if let Some(status) = server.try_wait().expect("try_wait works") {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = server.kill();
            panic!("server did not exit after shutdown request");
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(status.code(), Some(0), "server exits cleanly");
}
