//! Benchmark-trajectory harness: a fixed suite of wall-clock benchmarks
//! whose results are written to `BENCH_core.json` at the repo root and
//! diffed across commits, so performance regressions show up as data
//! instead of anecdotes.
//!
//! The suite covers the four cost centers of the codebase: circuit-level
//! DC solving (two sizes), the end-to-end behavior-level `simulate`, a
//! fault-injection Monte-Carlo campaign, and a DSE sweep. Each entry
//! records the median and p95 wall time over `runs` repetitions plus two
//! trace-derived per-level stage breakdowns from one additional traced
//! repetition: `stages` merges each level's self-time intervals across
//! worker lanes (wall seconds — comparable to the median), while
//! `stages_cpu` sums them (CPU seconds — on a parallel entry the sum
//! exceeds the wall median, and the ratio is the effective parallelism).
//!
//! [`compare`] diffs two reports and flags entries whose median slowed
//! down by more than a threshold (the CI job uses 15 %); the
//! `mnsim-bench` binary exits non-zero when any regression is flagged.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use mnsim_circuit::batch::{solve_dc_batch, BatchOptions, PreparedSystem, Rhs};
use mnsim_circuit::crossbar::{CrossbarCircuit, CrossbarSpec};
use mnsim_circuit::solve::{solve_dc, Method, SolveOptions};
use mnsim_core::config::Config;
use mnsim_core::dse::{explore, Constraints, DesignSpace};
use mnsim_core::exec::{self, ExecOptions};
use mnsim_core::fault_sim::{simulate_with_faults_with, FaultConfig};
use mnsim_core::simulate::{simulate, simulate_with};
use mnsim_obs::{parse_json, trace, JsonValue};
use mnsim_tech::fault::FaultRates;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::units::{Resistance, Voltage};

/// Schema version of `BENCH_*.json` documents.
///
/// Version 2 split the single summed stage breakdown into `stages`
/// (lane-merged wall seconds) and `stages_cpu` (summed CPU seconds).
/// Version 3 added `min_s` — the noise-robust statistic [`compare`] uses
/// for entries whose baseline p95/median spread marks them as flaky.
pub const SCHEMA_VERSION: u32 = 3;

/// Baseline entries whose `p95_s` exceeds this multiple of their
/// `median_s` are judged on `min_s` instead of `median_s` by [`compare`]:
/// such spread means scheduler interference dominates the tail (observed
/// at ~3.6× on `fault_mc`), and interference only ever *adds* time — the
/// minimum is the statistic it cannot inflate.
pub const FLAKY_P95_RATIO: f64 = 2.0;

/// One benchmark entry: repeated wall-clock timings plus a trace-derived
/// stage breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Suite-stable benchmark name.
    pub name: String,
    /// Timed repetitions.
    pub runs: usize,
    /// Minimum wall time, seconds — the noise floor; [`compare`] falls
    /// back to it for flaky entries (see [`FLAKY_P95_RATIO`]).
    pub min_s: f64,
    /// Median wall time, seconds.
    pub median_s: f64,
    /// 95th-percentile wall time, seconds.
    pub p95_s: f64,
    /// Per-hierarchy-level **wall** self time (seconds) of one traced
    /// repetition: each level's self-time intervals merged across worker
    /// lanes, so the values are comparable to `median_s`.
    pub stages: BTreeMap<String, f64>,
    /// Per-hierarchy-level **CPU** self time (seconds) of the same traced
    /// repetition: self times summed over spans. For every level
    /// `stages[level] <= stages_cpu[level]`; on a parallel entry the CPU
    /// total exceeds the wall median by the effective parallelism.
    pub stages_cpu: BTreeMap<String, f64>,
}

/// Machine metadata attached to a report.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism.
    pub cpus: usize,
}

impl Machine {
    /// Probes the current machine.
    pub fn current() -> Self {
        Machine {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// A full benchmark-trajectory report (`BENCH_core.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Document schema version.
    pub schema: u32,
    /// Creation time, seconds since the Unix epoch.
    pub created_unix: u64,
    /// Machine the suite ran on.
    pub machine: Machine,
    /// Benchmark entries in suite order.
    pub entries: Vec<BenchEntry>,
}

/// One flagged slowdown from [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline statistic, seconds — the median, or the minimum for
    /// entries the baseline spread marks flaky (see [`FLAKY_P95_RATIO`]).
    pub baseline_s: f64,
    /// Current value of the same statistic, seconds.
    pub current_s: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

/// Sorted-sample quantile with the same convention as the metric
/// histograms: nearest-rank on `ceil(q·n)`.
fn sample_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Times `work` `runs` times and derives one extra traced repetition for
/// the stage breakdown.
fn bench_entry(name: &str, runs: usize, mut work: impl FnMut()) -> BenchEntry {
    // Warm-up repetition: first-touch allocation and lazy statics.
    work();
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let started = Instant::now();
        work();
        samples.push(started.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    let session = trace::session();
    work();
    let trace = session.finish();
    let stages = trace
        .level_self_wall_ns()
        .into_iter()
        .map(|(level, wall_ns)| (level, wall_ns as f64 / 1e9))
        .collect();
    let stages_cpu = trace
        .summary()
        .levels
        .iter()
        .map(|(level, stats)| (level.clone(), stats.self_ns as f64 / 1e9))
        .collect();
    BenchEntry {
        name: name.to_string(),
        runs,
        min_s: samples.first().copied().unwrap_or(0.0),
        median_s: sample_quantile(&samples, 0.5),
        p95_s: sample_quantile(&samples, 0.95),
        stages,
        stages_cpu,
    }
}

fn dc_solve_workload(size: usize) -> impl FnMut() {
    let spec = CrossbarSpec::uniform(
        size,
        size,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(500.0),
        Voltage::from_volts(1.0),
    );
    let xbar = spec.build().expect("uniform crossbar builds");
    move || {
        let solution =
            solve_dc(xbar.circuit(), &SolveOptions::default()).expect("healthy array solves");
        assert!(solution.voltages().iter().all(|v| v.is_finite()));
    }
}

/// Worker count of the `simulate_parallel` entry (the suite's pinned
/// apples-to-apples comparison point against `simulate_serial`).
const PARALLEL_THREADS: usize = 4;
/// End-to-end simulations per repetition of the `simulate_serial` /
/// `simulate_parallel` entries — batching keeps the timed region well
/// above scheduler noise and pool-startup cost for a single
/// ~tens-of-microseconds simulate.
const SIMULATE_BATCH: usize = 64;

/// Shape of the multi-RHS workload: one `SIZE`×`SIZE` crossbar re-driven
/// by `INPUTS` correlated input vectors per repetition.
const MULTI_RHS_SIZE: usize = 10;
/// Input vectors per repetition of the multi-RHS workload.
const MULTI_RHS_INPUTS: usize = 12;

/// Smoothly varying (correlated) input batches — the regime batched
/// inference and validation sweeps live in.
fn multi_rhs_drives() -> Vec<Vec<Voltage>> {
    (0..MULTI_RHS_INPUTS)
        .map(|k| {
            (0..MULTI_RHS_SIZE)
                .map(|r| {
                    let phase = r as f64 / MULTI_RHS_SIZE as f64 + 0.1 * k as f64;
                    Voltage::from_volts(0.5 + 0.4 * phase.sin())
                })
                .collect()
        })
        .collect()
}

/// Both multi-RHS entries pin the dense-LU engine so they measure the same
/// arithmetic: the serial path factors once per input, the batched path
/// factors once per repetition and backsolves per input.
fn multi_rhs_options() -> SolveOptions {
    SolveOptions {
        method: Method::DenseLu,
        ..SolveOptions::default()
    }
}

fn multi_rhs_crossbar() -> CrossbarCircuit {
    CrossbarSpec::uniform(
        MULTI_RHS_SIZE,
        MULTI_RHS_SIZE,
        Resistance::from_kilo_ohms(10.0),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(500.0),
        Voltage::from_volts(1.0),
    )
    .build()
    .expect("uniform crossbar builds")
}

/// Serial reference: every input re-drives the circuit and solves from
/// scratch (assembly + factorization per input).
fn dc_solve_multi_serial_workload() -> impl FnMut() {
    let xbar = multi_rhs_crossbar();
    let drives = multi_rhs_drives();
    let options = multi_rhs_options();
    move || {
        for drive in &drives {
            let circuit = xbar
                .circuit()
                .with_source_voltages(drive)
                .expect("arity matches");
            let solution = solve_dc(&circuit, &options).expect("healthy array solves");
            assert!(solution.voltages().iter().all(|v| v.is_finite()));
        }
    }
}

/// Batched path: one [`PreparedSystem`] per repetition, every input a
/// cached backsolve. The setup asserts 1e-12 equivalence against the
/// serial reference once, outside the timed region.
fn dc_solve_batch_workload() -> impl FnMut() {
    let xbar = multi_rhs_crossbar();
    let drives = multi_rhs_drives();
    let options = multi_rhs_options();
    let batch: Vec<Rhs> = drives
        .iter()
        .map(|drive| xbar.input_rhs(drive).expect("arity matches"))
        .collect();

    // Equivalence gate (untimed): the batched solutions must match the
    // serial ones to 1e-12 relative, or the speedup below is meaningless.
    let batch_options = BatchOptions {
        base: options.clone(),
        ..BatchOptions::default()
    };
    let mut prepared = PreparedSystem::build(xbar.circuit(), batch_options.clone())
        .expect("linear crossbar prepares");
    let batched =
        solve_dc_batch(&mut prepared, xbar.circuit(), &batch).expect("batch solves");
    for (drive, solution) in drives.iter().zip(&batched) {
        let circuit = xbar
            .circuit()
            .with_source_voltages(drive)
            .expect("arity matches");
        let serial = solve_dc(&circuit, &options).expect("healthy array solves");
        for (&a, &b) in serial.voltages().iter().zip(solution.voltages()) {
            let scale = a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= 1e-12 * scale,
                "batched solve diverged from serial: {a} vs {b}"
            );
        }
    }

    move || {
        let mut prepared = PreparedSystem::build(xbar.circuit(), batch_options.clone())
            .expect("linear crossbar prepares");
        let solutions =
            solve_dc_batch(&mut prepared, xbar.circuit(), &batch).expect("batch solves");
        assert_eq!(solutions.len(), MULTI_RHS_INPUTS);
    }
}

/// Crossbar edge of the sparse cold-vs-refactor pair: the acceptance size
/// (256×256 → ~131k unknowns) in release, scaled down in debug so the
/// quick suite under `cargo test` stays interactive. Both sizes sit far
/// past the dense cutoff, so `Method::SparseLu` measures the same engine.
const SPARSE_BENCH_SIZE: usize = if cfg!(debug_assertions) { 32 } else { 256 };

/// A uniform crossbar for the sparse pair with every cell at
/// `state_kohms`; varying only the state keeps the sparsity pattern
/// identical across instances, which is what refactorization requires.
fn sparse_bench_crossbar(state_kohms: f64) -> CrossbarCircuit {
    CrossbarSpec::uniform(
        SPARSE_BENCH_SIZE,
        SPARSE_BENCH_SIZE,
        Resistance::from_kilo_ohms(state_kohms),
        Resistance::from_ohms(2.0),
        Resistance::from_ohms(500.0),
        Voltage::from_volts(1.0),
    )
    .build()
    .expect("uniform crossbar builds")
}

/// Cold sparse-direct path: every repetition re-assembles, re-analyzes
/// (BTF + AMD) and re-factors the reduced system from scratch.
fn dc_solve_sparse_cold_workload() -> impl FnMut() {
    let xbar = sparse_bench_crossbar(10.0);
    let options = SolveOptions {
        method: Method::SparseLu,
        ..SolveOptions::default()
    };
    move || {
        let solution = solve_dc(xbar.circuit(), &options).expect("healthy array solves");
        assert!(solution.voltages().iter().all(|v| v.is_finite()));
    }
}

/// Refactor fast path: one [`PreparedSystem`] holds the symbolic analysis
/// and pivot order; every repetition swaps in new cell conductances (same
/// pattern), replays the cached elimination program, and backsolves —
/// the per-trial regime of a fault campaign or a reprogrammed layer.
fn dc_solve_sparse_refactor_workload() -> impl FnMut() {
    let states = [sparse_bench_crossbar(10.0), sparse_bench_crossbar(12.5)];
    let drive = vec![Voltage::from_volts(1.0); SPARSE_BENCH_SIZE];
    let rhs = states[0].input_rhs(&drive).expect("arity matches");
    let options = BatchOptions {
        base: SolveOptions {
            method: Method::SparseLu,
            ..SolveOptions::default()
        },
        ..BatchOptions::default()
    };
    let mut prepared =
        PreparedSystem::build(states[0].circuit(), options).expect("linear crossbar prepares");
    let mut flip = 0usize;
    move || {
        // Alternate between the two programmed states so every repetition
        // performs a genuine value change, never an exact cache hit.
        flip ^= 1;
        let circuit = states[flip].circuit();
        let refreshed = prepared
            .try_value_refresh(circuit)
            .expect("same-pattern refresh succeeds");
        assert!(refreshed, "sparse engine must refresh in place");
        let solution = prepared.solve(circuit, &rhs).expect("healthy array solves");
        assert!(solution.voltages().iter().all(|v| v.is_finite()));
    }
}

/// Runs the fixed benchmark suite.
///
/// `quick` lowers the repetition count (used by tests and the CI smoke
/// path); the committed baselines use the full count.
///
/// # Errors
///
/// Propagates simulation errors as strings (none occur for the fixed
/// configurations unless the model itself is broken).
pub fn run_suite(quick: bool) -> Result<BenchReport, String> {
    let runs = if quick { 3 } else { 9 };
    let mut entries = vec![
        bench_entry("dc_solve_16", runs, dc_solve_workload(16)),
        bench_entry("dc_solve_64", runs, dc_solve_workload(64)),
        bench_entry(
            "dc_solve_multi_serial",
            runs,
            dc_solve_multi_serial_workload(),
        ),
        bench_entry("dc_solve_batch", runs, dc_solve_batch_workload()),
        bench_entry(
            "dc_solve_sparse_cold",
            runs,
            dc_solve_sparse_cold_workload(),
        ),
        bench_entry(
            "dc_solve_sparse_refactor",
            runs,
            dc_solve_sparse_refactor_workload(),
        ),
    ];

    let mlp = Config::fully_connected_mlp(&[512, 256, 128]).map_err(|e| e.to_string())?;
    entries.push(bench_entry("simulate_mlp", runs, || {
        simulate(&mlp).expect("reference MLP simulates");
    }));

    // Serial vs parallel execution engine on the deepest paper network.
    // Equivalence gate (untimed): the engine promises bit-identical reports
    // at every thread count, so the speedup below compares equal work.
    let vgg = Config::vgg16_cnn();
    let vgg_serial = simulate_with(&vgg, &ExecOptions::serial()).map_err(|e| e.to_string())?;
    for threads in [2usize, PARALLEL_THREADS] {
        let parallel =
            simulate_with(&vgg, &ExecOptions::with_threads(threads)).map_err(|e| e.to_string())?;
        if parallel != vgg_serial {
            return Err(format!("parallel simulate diverged at {threads} threads"));
        }
    }
    entries.push(bench_entry("simulate_serial", runs, || {
        for _ in 0..SIMULATE_BATCH {
            simulate_with(&vgg, &ExecOptions::serial()).expect("VGG-16 simulates");
        }
    }));
    // The same batch dispatched on the exec worker pool: the pool is spun
    // up once per repetition and the 32 simulations are stolen chunk by
    // chunk, so the entry measures the engine's fan-out overhead against
    // real work (a single ~33 µs simulate is far below the profitable
    // grain for intra-run bank parallelism — batching is the level the
    // engine earns its keep at on this workload).
    entries.push(bench_entry("simulate_parallel", runs, || {
        let reports = exec::try_map_n(SIMULATE_BATCH, PARALLEL_THREADS, |_| {
            simulate_with(&vgg, &ExecOptions::serial())
        })
        .expect("VGG-16 simulates");
        assert_eq!(reports.len(), SIMULATE_BATCH);
    }));

    let fault_base = Config::fully_connected_mlp(&[64, 32]).map_err(|e| e.to_string())?;
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(0.02),
        trials: if quick { 4 } else { 8 },
        ..FaultConfig::default()
    };
    entries.push(bench_entry("fault_mc", runs, || {
        simulate_with_faults_with(&fault_base, &fault_config, &ExecOptions::serial())
            .expect("campaign runs");
    }));

    let dse_base = Config::fully_connected_mlp(&[256, 128]).map_err(|e| e.to_string())?;
    let space = DesignSpace {
        crossbar_sizes: vec![32, 64, 128],
        parallelism_degrees: vec![1, 16],
        interconnects: vec![InterconnectNode::N28, InterconnectNode::N45],
    };
    entries.push(bench_entry("dse_sweep", runs, || {
        explore(&dse_base, &space, &Constraints::default()).expect("sweep is feasible");
    }));

    Ok(BenchReport {
        schema: SCHEMA_VERSION,
        created_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        machine: Machine::current(),
        entries,
    })
}

impl BenchReport {
    /// Serializes to the `BENCH_core.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"created_unix\": {},", self.created_unix);
        let _ = writeln!(
            out,
            "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},",
            self.machine.os, self.machine.arch, self.machine.cpus
        );
        out.push_str("  \"entries\": [");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"name\": \"{}\", \"runs\": {}, \"min_s\": {:?}, \"median_s\": {:?}, \"p95_s\": {:?}, ",
                entry.name, entry.runs, entry.min_s, entry.median_s, entry.p95_s
            );
            for (key, stages) in [("stages", &entry.stages), ("stages_cpu", &entry.stages_cpu)]
            {
                let _ = write!(out, "\"{key}\": {{");
                for (j, (stage, seconds)) in stages.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{stage}\": {seconds:?}");
                }
                out.push('}');
                if key == "stages" {
                    out.push_str(", ");
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn field_f64(object: &JsonValue, key: &str, context: &str) -> Result<f64, String> {
    object
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{context}: missing numeric field {key:?}"))
}

/// Parses a `BENCH_*.json` document back into a [`BenchReport`].
///
/// # Errors
///
/// Returns a message naming the first malformed field.
pub fn parse_bench_json(input: &str) -> Result<BenchReport, String> {
    let root = parse_json(input)?;
    let schema = field_f64(&root, "schema", "report")? as u32;
    let created_unix = field_f64(&root, "created_unix", "report")? as u64;
    let machine = root.get("machine").ok_or("report: missing machine")?;
    let machine = Machine {
        os: machine
            .get("os")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string(),
        arch: machine
            .get("arch")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown")
            .to_string(),
        cpus: machine.get("cpus").and_then(JsonValue::as_f64).unwrap_or(1.0) as usize,
    };
    let entries = root
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("report: missing entries array")?;
    let mut parsed = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let context = format!("entry {i}");
        let name = entry
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{context}: missing name"))?
            .to_string();
        let stage_map = |key: &str| {
            let mut stages = BTreeMap::new();
            if let Some(JsonValue::Object(pairs)) = entry.get(key) {
                for (stage, value) in pairs {
                    if let Some(seconds) = value.as_f64() {
                        stages.insert(stage.clone(), seconds);
                    }
                }
            }
            stages
        };
        let median_s = field_f64(entry, "median_s", &context)?;
        parsed.push(BenchEntry {
            runs: field_f64(entry, "runs", &context)? as usize,
            // Absent before schema 3: fall back to the median, which
            // degrades the flaky-entry gate to the historical median gate.
            min_s: entry
                .get("min_s")
                .and_then(JsonValue::as_f64)
                .unwrap_or(median_s),
            median_s,
            p95_s: field_f64(entry, "p95_s", &context)?,
            name,
            stages: stage_map("stages"),
            // Absent in schema-1 documents; compare() only reads medians,
            // so old baselines parse to an empty CPU breakdown.
            stages_cpu: stage_map("stages_cpu"),
        });
    }
    Ok(BenchReport {
        schema,
        created_unix,
        machine,
        entries: parsed,
    })
}

/// Whether a baseline entry's tail spread marks it flaky — judged on the
/// *baseline* so the verdict is stable run-to-run.
fn is_flaky(base: &BenchEntry) -> bool {
    base.p95_s > FLAKY_P95_RATIO * base.median_s
}

/// The (baseline, current) statistic pair [`compare`] gates an entry on:
/// medians normally, minima when the baseline is flaky.
fn gate_stats(base: &BenchEntry, entry: &BenchEntry) -> (f64, f64) {
    if is_flaky(base) {
        (base.min_s, entry.min_s)
    } else {
        (base.median_s, entry.median_s)
    }
}

/// Diffs two reports: entries present in both whose current statistic
/// exceeds the baseline's by more than `threshold` (e.g. `0.15` = 15 %)
/// are returned, slowest-relative first.
///
/// The statistic is the median, except for entries whose baseline p95
/// exceeds [`FLAKY_P95_RATIO`] × median: those are gated on `min_s`,
/// because a tail that wide means the median itself is dominated by
/// scheduler interference — which only ever adds time, so the minimum is
/// the one order statistic it cannot inflate.
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<Regression> {
    let baseline_by_name: BTreeMap<&str, &BenchEntry> = baseline
        .entries
        .iter()
        .map(|e| (e.name.as_str(), e))
        .collect();
    let mut regressions = Vec::new();
    for entry in &current.entries {
        let Some(base) = baseline_by_name.get(entry.name.as_str()) else {
            continue;
        };
        let (base_s, current_s) = gate_stats(base, entry);
        if base_s <= 0.0 {
            continue;
        }
        let ratio = current_s / base_s;
        if ratio > 1.0 + threshold {
            regressions.push(Regression {
                name: entry.name.clone(),
                baseline_s: base_s,
                current_s,
                ratio,
            });
        }
    }
    regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    regressions
}

/// Renders a comparison as a human-readable table (all entries, flagged
/// ones marked).
pub fn comparison_table(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold: f64,
) -> String {
    let baseline_by_name: BTreeMap<&str, &BenchEntry> = baseline
        .entries
        .iter()
        .map(|e| (e.name.as_str(), e))
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>8}",
        "benchmark", "base med s", "curr med s", "ratio"
    );
    for entry in &current.entries {
        match baseline_by_name.get(entry.name.as_str()) {
            Some(base) if base.median_s > 0.0 => {
                let (base_s, current_s) = gate_stats(base, entry);
                let ratio = current_s / base_s;
                let flaky = if is_flaky(base) { "  [flaky: min-gated]" } else { "" };
                let flag = if ratio > 1.0 + threshold { "  << REGRESSION" } else { "" };
                let _ = writeln!(
                    out,
                    "{:<16} {:>12.6} {:>12.6} {:>8.3}{}{}",
                    entry.name, base_s, current_s, ratio, flag, flaky
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{:<16} {:>12} {:>12.6} {:>8}",
                    entry.name, "-", entry.median_s, "new"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(medians: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            schema: SCHEMA_VERSION,
            created_unix: 0,
            machine: Machine {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpus: 4,
            },
            entries: medians
                .iter()
                .map(|&(name, median)| BenchEntry {
                    name: name.to_string(),
                    runs: 5,
                    // p95 at 1.2× keeps synthetic entries non-flaky, so
                    // compare() exercises the median gate by default.
                    min_s: median * 0.95,
                    median_s: median,
                    p95_s: median * 1.2,
                    stages: BTreeMap::from([("run".to_string(), median * 0.9)]),
                    stages_cpu: BTreeMap::from([("run".to_string(), median * 0.9)]),
                })
                .collect(),
        }
    }

    #[test]
    fn json_round_trips() {
        let report = report_with(&[("a", 0.5), ("b", 1.25)]);
        let parsed = parse_bench_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn compare_flags_regressions_over_threshold() {
        let base = report_with(&[("a", 1.0), ("b", 1.0), ("c", 1.0)]);
        let current = report_with(&[("a", 1.10), ("b", 1.30), ("d", 5.0)]);
        let regressions = compare(&base, &current, 0.15);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "b");
        assert!((regressions[0].ratio - 1.30).abs() < 1e-12);
        // Within threshold and unmatched entries are not flagged.
        assert!(compare(&base, &base, 0.15).is_empty());
        let table = comparison_table(&base, &current, 0.15);
        assert!(table.contains("REGRESSION"));
        assert!(table.contains("new"));
    }

    #[test]
    fn flaky_entries_are_gated_on_min_not_median() {
        // Baseline shaped like the committed fault_mc entry: p95/median
        // ≈ 3.6× marks it flaky, so the gate moves to min_s.
        let mut base = report_with(&[("fault_mc", 0.030)]);
        base.entries[0].p95_s = 0.110;
        base.entries[0].min_s = 0.020;

        // Median jumps 50 % (would trip the 15 % median gate) but the
        // minimum barely moves: scheduler noise, not a regression.
        let mut noisy = report_with(&[("fault_mc", 0.045)]);
        noisy.entries[0].min_s = 0.021;
        assert!(compare(&base, &noisy, 0.15).is_empty());

        // A genuinely slower minimum is still caught, and the flagged
        // statistic pair is the minima.
        let mut slow = report_with(&[("fault_mc", 0.045)]);
        slow.entries[0].min_s = 0.040;
        let regressions = compare(&base, &slow, 0.15);
        assert_eq!(regressions.len(), 1);
        assert!((regressions[0].baseline_s - 0.020).abs() < 1e-12);
        assert!((regressions[0].current_s - 0.040).abs() < 1e-12);
        assert!((regressions[0].ratio - 2.0).abs() < 1e-12);

        // The table marks the entry so the gate switch is visible.
        let table = comparison_table(&base, &noisy, 0.15);
        assert!(table.contains("[flaky: min-gated]"), "{table}");
        assert!(!table.contains("REGRESSION"), "{table}");

        // A schema-2 baseline (no min_s) degrades to the median gate even
        // for flaky entries: min_s parses back as the median.
        let legacy = base.to_json().replace("\"min_s\": 0.02, ", "");
        let parsed = parse_bench_json(&legacy).unwrap();
        assert_eq!(parsed.entries[0].min_s, parsed.entries[0].median_s);
    }

    #[test]
    fn sample_quantile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sample_quantile(&sorted, 0.5), 2.0);
        assert_eq!(sample_quantile(&sorted, 0.95), 4.0);
        assert_eq!(sample_quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn quick_suite_produces_entries_with_stages() {
        let report = run_suite(true).unwrap();
        assert!(report.entries.len() >= 6, "{}", report.entries.len());
        for entry in &report.entries {
            assert!(entry.median_s > 0.0, "{} has no timing", entry.name);
            assert!(entry.min_s > 0.0 && entry.min_s <= entry.median_s);
            assert!(entry.p95_s >= entry.median_s);
            assert!(!entry.stages.is_empty(), "{} has no stages", entry.name);
            // Wall (lane-merged) never exceeds CPU (summed) at any level.
            for (level, &wall) in &entry.stages {
                let cpu = entry.stages_cpu.get(level).copied().unwrap_or(0.0);
                assert!(
                    wall <= cpu + 1e-12,
                    "{}: level {level} wall {wall} > cpu {cpu}",
                    entry.name
                );
            }
        }
        // The batched multi-RHS path must beat solving the same inputs
        // serially by at least 2×: one factorization per repetition versus
        // one per input leaves a wide margin over timing noise.
        let median_of = |name: &str| {
            report
                .entries
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("missing entry {name}"))
                .median_s
        };
        let serial = median_of("dc_solve_multi_serial");
        let batch = median_of("dc_solve_batch");
        assert!(
            batch * 2.0 <= serial,
            "batched multi-RHS solve is only {:.2}x faster than serial",
            serial / batch
        );
        // Replaying the cached pivot order must beat a from-scratch
        // symbolic analysis + pivoting factorization by at least 2× —
        // that gap is the whole justification for the refactor rung.
        let sparse_cold = median_of("dc_solve_sparse_cold");
        let sparse_refactor = median_of("dc_solve_sparse_refactor");
        assert!(
            sparse_refactor * 2.0 <= sparse_cold,
            "sparse refactor is only {:.2}x faster than a cold factorization",
            sparse_cold / sparse_refactor
        );
        // The exec engine must turn hardware parallelism into wall-clock
        // speedup on the VGG-16 batch. A wall-clock multiple is only
        // attainable when the cores exist, so the bar is gated on the
        // machine (CI containers are routinely single-core); the
        // bit-identity of parallel reports is asserted unconditionally
        // inside `run_suite` itself.
        let sim_serial = median_of("simulate_serial");
        let sim_parallel = median_of("simulate_parallel");
        if report.machine.cpus >= PARALLEL_THREADS {
            assert!(
                sim_parallel * 2.0 <= sim_serial,
                "parallel VGG-16 batch is only {:.2}x faster than serial at {} threads",
                sim_serial / sim_parallel,
                PARALLEL_THREADS
            );
        } else {
            // Single-core fallback: the engine may not win, but it must
            // not collapse (worst observed pool overhead is well under 2x).
            assert!(
                sim_parallel <= sim_serial * 2.0,
                "parallel VGG-16 batch pathologically slow on {} cpu(s): {:.2}x serial",
                report.machine.cpus,
                sim_parallel / sim_serial
            );
        }
        // On a machine with the cores, the parallel entry's summed CPU
        // stage time strictly exceeds its merged wall time — overlapping
        // worker lanes are the whole point of the split breakdown.
        if report.machine.cpus >= PARALLEL_THREADS {
            let par = report
                .entries
                .iter()
                .find(|e| e.name == "simulate_parallel")
                .unwrap();
            let wall_total: f64 = par.stages.values().sum();
            let cpu_total: f64 = par.stages_cpu.values().sum();
            assert!(
                cpu_total > wall_total,
                "simulate_parallel: cpu {cpu_total} !> wall {wall_total}"
            );
        }
        // The simulate entry sees the paper hierarchy in its breakdown.
        let sim = report
            .entries
            .iter()
            .find(|e| e.name == "simulate_mlp")
            .unwrap();
        for level in ["run", "layer", "bank", "unit"] {
            assert!(sim.stages.contains_key(level), "missing level {level}");
        }
        // And the document round-trips.
        let parsed = parse_bench_json(&report.to_json()).unwrap();
        assert_eq!(parsed.entries.len(), report.entries.len());
    }
}
